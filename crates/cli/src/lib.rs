//! Implementation of the `iabc` command-line tool.
//!
//! Each subcommand is a pure function from parsed arguments to a report
//! string, so the whole surface is unit-testable without spawning
//! processes; `main.rs` only does I/O.
//!
//! ```text
//! iabc generate complete 7                      # emit an edge list
//! iabc check graph.txt --f 2                    # Theorem 1 verdict + witness
//! iabc check graph.txt --f 1 --async            # §7 asynchronous condition
//! iabc check graph.txt --f 1 --local            # f-local fault model (ext.)
//! iabc simulate graph.txt --f 2 --faulty 5,6 --adversary extremes
//! iabc baseline graph.txt --f 2 --faulty 5,6    # Algorithm 1 vs Dolev vs W-MSR
//! iabc robustness graph.txt                     # max r-robustness
//! iabc alpha graph.txt --f 2                    # alpha + Lemma 5 bound
//! iabc profile graph.txt                        # degrees/connectivity/diameter
//! iabc minimal graph.txt --f 1                  # edge-criticality probe (§6.1)
//! iabc construct 9 --f 1                        # satisfying-by-construction graph
//! iabc sweep experiments --parallel             # E1–E12 fanned across all cores
//! iabc perf --quick                             # hot-path rounds/sec + BENCH_hotpath.json
//! iabc deploy --nodes 1000000 --jobs 8          # million-node multiplexed deployment
//! iabc serve --store runs --addr 127.0.0.1:7411 # sweep-as-a-service daemon
//! iabc submit sweep --ids E1 --addr 127.0.0.1:7411   # cache-keyed job submission
//! iabc sweep monte-carlo --n 6,8 --f 1 --jobs 4 # random-graph tolerance sweep
//! iabc dot graph.txt --f 2                      # DOT, witness colour-coded
//! ```

pub mod args;
pub mod commands;

pub use args::{CliError, ParsedArgs};

/// Entry point shared by `main` and the tests: dispatches a full argv
/// (without the program name) to a subcommand.
///
/// # Errors
///
/// Returns [`CliError`] on unknown commands, malformed flags, unreadable
/// input, or graph/parameter validation failures.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(CliError::Usage(usage()));
    };
    match command.as_str() {
        "check" => commands::check(&ParsedArgs::parse(rest)?),
        "generate" => commands::generate(rest),
        "simulate" => commands::simulate(&ParsedArgs::parse(rest)?),
        "robustness" => commands::robustness_cmd(&ParsedArgs::parse(rest)?),
        "alpha" => commands::alpha_cmd(&ParsedArgs::parse(rest)?),
        "dot" => commands::dot_cmd(&ParsedArgs::parse(rest)?),
        "repair" => commands::repair_cmd(&ParsedArgs::parse(rest)?),
        "profile" => commands::profile_cmd(&ParsedArgs::parse(rest)?),
        "minimal" => commands::minimal_cmd(&ParsedArgs::parse(rest)?),
        "construct" => commands::construct_cmd(&ParsedArgs::parse(rest)?),
        "baseline" => commands::baseline_cmd(&ParsedArgs::parse(rest)?),
        "sweep" => commands::sweep_cmd(&ParsedArgs::parse(rest)?),
        "record" => commands::record_cmd(&ParsedArgs::parse(rest)?),
        "replay" => commands::replay_cmd(&ParsedArgs::parse(rest)?),
        "perf" => commands::perf_cmd(&ParsedArgs::parse(rest)?),
        "deploy" => commands::deploy_cmd(&ParsedArgs::parse(rest)?),
        "serve" => commands::serve_cmd(&ParsedArgs::parse(rest)?),
        "submit" => commands::submit_cmd(&ParsedArgs::parse(rest)?),
        "query" => commands::query_cmd(&ParsedArgs::parse(rest)?),
        "compact" => commands::compact_cmd(&ParsedArgs::parse(rest)?),
        "--help" | "-h" | "help" => Ok(usage()),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n\n{}",
            usage()
        ))),
    }
}

/// The top-level usage text.
pub fn usage() -> String {
    "iabc — iterative approximate Byzantine consensus toolkit\n\
     \n\
     usage: iabc <command> [args]\n\
     \n\
     commands:\n\
       generate <family> <params..>   emit an edge list (complete N | chord N SUCC |\n\
                                      core-network N F | hypercube D | cycle N |\n\
                                      random N P SEED | bridged-cliques K B |\n\
                                      circulant N O1,O2,.. | de-bruijn K D |\n\
                                      small-world N K BETA SEED | scale-free N M SEED |\n\
                                      tournament N SEED | tree ARITY DEPTH)\n\
       check <file> --f N             Theorem 1 condition (+ witness on failure)\n\
                                      flags: --async (§7), --local (f-local model),\n\
                                      --structure \"0,1;5,6\" (adversary structure;\n\
                                      no --f needed), --parallel T, --explain\n\
       simulate <file> --f N --faulty A,B,..   run Algorithm 1 under attack\n\
                                      flags: --adversary NAME (conforming|constant|\n\
                                      random|extremes|pull-low|pull-high|crash|\n\
                                      flip-flop|polarizing|echo|nan),\n\
                                      --jobs N (persistent worker pool, 0 = all cores;\n\
                                      bit-identical for any value),\n\
                                      --inputs V,V,.. | --seed S, --eps E, --max-rounds R,\n\
                                      --rule trimmed-mean|mean|midpoint|w-msr|\n\
                                      dolev-midpoint|dolev-select-mean|quantized\n\
                                      (quantized: --quantum Q [--rounding nearest|\n\
                                      floor|ceil]), --trace;\n\
                                      or --structure \"0,1;5,6\" to run the\n\
                                      structure-aware rule (no --f / --rule);\n\
                                      or --delay-bound B [--scheduler immediate|max|\n\
                                      random|targeted] [--sched-seed S] [--victims A,B]\n\
                                      for the §7 delay-bounded engine (--jobs fans\n\
                                      its update phase; send/deliver stay serial)\n\
       baseline <file> --f N --faulty A,B   Algorithm 1 vs Dolev vs W-MSR faceoff\n\
       robustness <file> [--r R --s S]   (r,s)-robustness / max r-robustness\n\
       alpha <file> --f N             alpha and the Lemma 5 iteration bound\n\
       profile <file>                 degrees, density, connectivity, diameter\n\
       minimal <file> --f N [--prune] [--out FILE]   edge-criticality probe (§6.1)\n\
       construct N --f F [--attachment uniform|preferential|lowest] [--seed S]\n\
                                      emit a graph satisfying Theorem 1 by construction\n\
       dot <file> [--f N]             Graphviz DOT (witness colour-coded if violated)\n\
       repair <file> --f N            add edges until Theorem 1 holds (witness-driven)\n\
       sweep experiments [--ids E1,E2,..] [--parallel] [--jobs N] [--store DIR\n\
              [--max-store-bytes B]] [--addr HOST:PORT] [--batch]\n\
                                      fan the experiment harness across cores\n\
                                      (0 = all); ids E1..E12 (paper) and X1..X13\n\
                                      (extensions); no --ids runs E1..E12;\n\
                                      bit-identical output for any job count;\n\
                                      --store memoizes cells through the serving\n\
                                      tier's result store, reporting hits/misses/\n\
                                      evictions (--max-store-bytes caps it, LRU);\n\
                                      --addr submits the whole sweep to a running\n\
                                      daemon instead (repeated runs collapse to\n\
                                      one compute + cache reads);\n\
                                      --batch is accepted on every sweep grid but\n\
                                      inert here (E-cells pin the exact tier)\n\
       sweep monte-carlo [--n 6,8 --f 1,2 --p 0.5 --trials 100] [--replicas R]\n\
              [--parallel] [--jobs N] [--batch]\n\
                                      random-digraph tolerance sweep, one cell per\n\
                                      (n,f); --replicas R also runs R FastMath\n\
                                      replicas per eligible graph in one batched\n\
                                      pass, tallying convergence (--batch inert:\n\
                                      each trial samples a fresh graph)\n\
       sweep census [--max-n 4 --f 0,1] [--replicas R] [--parallel] [--jobs N]\n\
              [--batch]               exhaustive small-n census, one cell per (n,f);\n\
                                      --replicas R appends a convergence census\n\
                                      (R seeded runs per eligible (n,f), max-pull\n\
                                      attack); --batch groups same-spec cells into\n\
                                      one replica-batched FastMath run --\n\
                                      byte-identical tables either way\n\
       record <file> --f N --faulty A,B --rounds R --out T.txt   record a transcript\n\
       replay <file> --f N --transcript T.txt   verify a recorded run\n\
       deploy --nodes N [--mode threaded|multiplexed] [--jobs J] [--degree D]\n\
              [--f F] [--rounds R]   run Algorithm 1 as a deployment on a\n\
                                      circulant digraph: threaded = one OS\n\
                                      thread per node (capped at 8192),\n\
                                      multiplexed = all nodes on a J-thread\n\
                                      pool with mailboxes (hosts 10^6 nodes);\n\
                                      both print a bitwise state checksum\n\
       serve --store DIR [--addr 127.0.0.1:PORT] [--jobs N] [--accept K]\n\
             [--max-conn C] [--max-store-bytes B]\n\
                                      run the result-serving daemon: a bounded\n\
                                      thread-per-connection accept loop answering\n\
                                      submit/query from the content-addressed\n\
                                      store (append-only journal); hits answer\n\
                                      concurrently, misses run under the shared\n\
                                      pool's compute permit with identical\n\
                                      in-flight submissions coalesced\n\
                                      (single-flight); --accept K exits after K\n\
                                      connections (CI smoke), --max-conn 1 is\n\
                                      the sequential baseline, --max-store-bytes\n\
                                      caps object bytes with LRU eviction\n\
       submit sweep [--ids E1,..] --addr HOST:PORT\n\
       submit scenario <file> --f N [--faulty A,B] [--rule R] [--adversary A]\n\
              [--seed S | --inputs V,V,..] [--eps E] [--max-rounds R]\n\
              [--delay-bound B [--scheduler immediate|max|random]\n\
              [--sched-seed S]] --addr HOST:PORT\n\
                                      submit a job; prints cache hit/miss, the\n\
                                      run key, and the payload bytes as hex;\n\
                                      --delay-bound keys the job to the §7\n\
                                      delay-bounded engine\n\
       query --addr HOST:PORT --key HEX   fetch a stored payload by run key\n\
       compact (--addr HOST:PORT | --store DIR)\n\
                                      rewrite a store's run journal to one\n\
                                      record per live object (replay-equivalent)\n\
                                      and sweep orphaned object files\n\
       perf [--quick] [--steps S] [--jobs N] [--out BENCH_hotpath.json]\n\
                                      hot-path rounds/sec (compiled vs pre-refactor\n\
                                      reference) on complete/random/kite topologies,\n\
                                      plus parallel-vs-serial, pool-vs-respawn, and\n\
                                      threaded-vs-multiplexed deploy datapoints at\n\
                                      --jobs N; writes the JSON perf trajectory artifact\n\
       perf --check [--baseline FILE] [--tolerance 0.4]\n\
                                      diff a fresh run against the committed\n\
                                      BENCH_hotpath.json and fail on speedup\n\
                                      regressions beyond the noise tolerance\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn empty_argv_prints_usage_error() {
        let err = run(&[]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv(&["--help"])).unwrap();
        assert!(out.contains("usage: iabc"));
        assert!(out.contains("generate"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }
}
