//! The `iabc` subcommand implementations.

use iabc_analysis::{batched, sweep};
use iabc_baselines::{DolevMidpoint, DolevSelectMean, Wmsr};
use iabc_core::fault_model::{check_model, AdversaryStructure, FaultModel};
use iabc_core::quantized::{QuantizedTrimmedMean, Rounding};
use iabc_core::rules::{Mean, TrimmedMean, TrimmedMidpoint, UpdateRule};
use iabc_core::{alpha, construction, local_fault, minimality, robustness, theorem1, Threshold};
use iabc_graph::dot::{to_dot, DotGroup};
use iabc_graph::{generators, metrics, parse, Digraph, NodeSet};
use iabc_sim::adversary::{
    Adversary, ConformingAdversary, ConstantAdversary, CrashAdversary, EchoAdversary,
    ExtremesAdversary, FlipFlopAdversary, NaNAdversary, PolarizingAdversary, PullAdversary,
    RandomAdversary,
};
use iabc_sim::async_engine::{
    ImmediateScheduler, MaxDelayScheduler, RandomScheduler, Scheduler, TargetedScheduler,
};
use iabc_sim::{RunConfig, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::args::{CliError, ParsedArgs};

fn load_graph(args: &ParsedArgs) -> Result<Digraph, CliError> {
    let path = args
        .positional(0)
        .ok_or_else(|| CliError::Usage("expected a graph file argument".into()))?;
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Io(e.to_string()))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?
    };
    parse::parse_edge_list(&text).map_err(|e| CliError::Graph(e.to_string()))
}

/// `iabc check <file> --f N [--async] [--local] [--structure SPEC] [--parallel T]`
pub fn check(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;

    if let Some(spec) = args.flag("structure") {
        // Generalized fault model: the condition under an explicit
        // adversary structure (f is implied by the structure, not a flag).
        let structure = parse_structure(spec, g.node_count())?;
        let model = FaultModel::Structure(structure);
        let report = check_model(&g, &model);
        let mut out = format!("{g}, model = {model}\n");
        out.push_str(&format!("generalized condition: {report}\n"));
        return Ok(out);
    }

    let f: usize = args.required("f")?;
    let mut out = format!("{g}, f = {f}\n");

    if args.has_flag("local") {
        let report = local_fault::check_local(&g, f);
        out.push_str(&format!("f-local condition: {report}\n"));
        return Ok(out);
    }
    let threshold = if args.has_flag("async") {
        out.push_str("model: asynchronous (threshold 2f+1, §7)\n");
        Threshold::asynchronous(f)
    } else {
        Threshold::synchronous(f)
    };
    let report = match args.optional::<usize>("parallel")? {
        Some(threads) => theorem1::check_parallel(&g, f, threshold, threads),
        None => theorem1::check_with(&g, f, threshold, &theorem1::CheckOptions::default())
            .map_err(|e| CliError::Run(e.to_string()))?,
    };
    out.push_str(&format!("condition: {report}\n"));
    if report.is_satisfied() {
        out.push_str(
            "iterative approximate Byzantine consensus IS possible; Algorithm 1 achieves it\n",
        );
    } else {
        out.push_str("no correct iterative algorithm exists on this graph (Theorem 1)\n");
        if args.has_flag("explain") {
            if let Some(w) = report.witness() {
                out.push('\n');
                out.push_str(&w.explain(&g, threshold));
            }
        }
    }
    Ok(out)
}

/// `iabc generate <family> <params..>`
pub fn generate(rest: &[String]) -> Result<String, CliError> {
    let mut it = rest.iter();
    let family = it
        .next()
        .ok_or_else(|| CliError::Usage("generate: expected a family name".into()))?;
    let nums: Vec<String> = it.cloned().collect();
    let num = |idx: usize, what: &str| -> Result<usize, CliError> {
        nums.get(idx)
            .ok_or_else(|| CliError::Usage(format!("generate {family}: missing {what}")))?
            .parse()
            .map_err(|_| CliError::Usage(format!("generate {family}: bad {what}")))
    };
    let g = match family.as_str() {
        "complete" => generators::complete(num(0, "N")?),
        "cycle" => generators::cycle(num(0, "N")?),
        "chord" => generators::chord(num(0, "N")?, num(1, "SUCC")?),
        "core-network" => generators::core_network(num(0, "N")?, num(1, "F")?),
        "hypercube" => generators::hypercube(num(0, "D")? as u32),
        "bridged-cliques" => generators::bridged_cliques(num(0, "K")?, num(1, "B")?),
        "random" => {
            let n = num(0, "N")?;
            let p: f64 = nums
                .get(1)
                .ok_or_else(|| CliError::Usage("generate random: missing P".into()))?
                .parse()
                .map_err(|_| CliError::Usage("generate random: bad P".into()))?;
            let seed = num(2, "SEED")? as u64;
            generators::erdos_renyi(n, p, &mut StdRng::seed_from_u64(seed))
        }
        "circulant" => {
            let n = num(0, "N")?;
            let offsets: Vec<usize> = nums
                .get(1)
                .ok_or_else(|| CliError::Usage("generate circulant: missing OFFSETS".into()))?
                .split(',')
                .map(|s| {
                    s.trim().parse().map_err(|_| {
                        CliError::Usage(format!("generate circulant: bad offset {s:?}"))
                    })
                })
                .collect::<Result<_, _>>()?;
            generators::circulant(n, offsets)
        }
        "de-bruijn" => generators::de_bruijn(num(0, "K")?, num(1, "D")? as u32),
        "small-world" => {
            let (n, k) = (num(0, "N")?, num(1, "K")?);
            let beta: f64 = nums
                .get(2)
                .ok_or_else(|| CliError::Usage("generate small-world: missing BETA".into()))?
                .parse()
                .map_err(|_| CliError::Usage("generate small-world: bad BETA".into()))?;
            let seed = num(3, "SEED")? as u64;
            generators::watts_strogatz(n, k, beta, &mut StdRng::seed_from_u64(seed))
        }
        "scale-free" => {
            let (n, m, seed) = (num(0, "N")?, num(1, "M")?, num(2, "SEED")? as u64);
            generators::barabasi_albert(n, m, &mut StdRng::seed_from_u64(seed))
        }
        "tournament" => {
            let (n, seed) = (num(0, "N")?, num(1, "SEED")? as u64);
            generators::random_tournament(n, &mut StdRng::seed_from_u64(seed))
        }
        "tree" => generators::balanced_tree(num(0, "ARITY")?, num(1, "DEPTH")? as u32),
        other => {
            return Err(CliError::Usage(format!(
                "unknown family {other:?} (try complete, chord, core-network, hypercube, cycle, \
                 random, bridged-cliques, circulant, de-bruijn, small-world, scale-free, \
                 tournament, tree)"
            )))
        }
    };
    Ok(parse::to_edge_list(&g))
}

/// Resolves an adversary name into an infallible factory (adversaries are
/// stateful, so harnesses that run several contenders need a fresh one per
/// run). Unknown names error here, once — the returned closure cannot fail.
fn adversary_factory(
    name: &str,
    seed: u64,
) -> Result<Box<dyn Fn() -> Box<dyn Adversary>>, CliError> {
    Ok(match name {
        "conforming" => Box::new(|| Box::new(ConformingAdversary::new())),
        "constant" => Box::new(|| Box::new(ConstantAdversary::new(1e9))),
        "random" => Box::new(move || Box::new(RandomAdversary::new(-1e6, 1e6, seed))),
        "extremes" => Box::new(|| Box::new(ExtremesAdversary::new(1e6))),
        "pull-low" => Box::new(|| Box::new(PullAdversary::new(false))),
        "pull-high" => Box::new(|| Box::new(PullAdversary::new(true))),
        "crash" => Box::new(|| Box::new(CrashAdversary::new(2))),
        "flip-flop" => Box::new(|| Box::new(FlipFlopAdversary::new(1e6))),
        "polarizing" => Box::new(|| Box::new(PolarizingAdversary::new())),
        "echo" => Box::new(|| Box::new(EchoAdversary::new())),
        "nan" => Box::new(|| Box::new(NaNAdversary::new())),
        other => {
            return Err(CliError::Usage(format!(
                "unknown adversary {other:?} (try conforming, constant, random, extremes, \
                 pull-low, pull-high, crash, flip-flop, polarizing, echo, nan)"
            )))
        }
    })
}

fn adversary_by_name(name: &str, seed: u64) -> Result<Box<dyn Adversary>, CliError> {
    adversary_factory(name, seed).map(|make| make())
}

fn rule_by_name(name: &str, f: usize, args: &ParsedArgs) -> Result<Box<dyn UpdateRule>, CliError> {
    Ok(match name {
        "trimmed-mean" => Box::new(TrimmedMean::new(f)),
        "mean" => Box::new(Mean::new()),
        "midpoint" => Box::new(TrimmedMidpoint::new(f)),
        "w-msr" => Box::new(Wmsr::new(f)),
        "dolev-midpoint" => Box::new(DolevMidpoint::new(f)),
        "dolev-select-mean" => Box::new(DolevSelectMean::new(f)),
        "quantized" => {
            let quantum: f64 = args.required("quantum")?;
            let rounding = match args.flag("rounding").unwrap_or("nearest") {
                "nearest" => Rounding::Nearest,
                "floor" => Rounding::Floor,
                "ceil" => Rounding::Ceil,
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown rounding {other:?} (try nearest, floor, ceil)"
                    )))
                }
            };
            Box::new(
                QuantizedTrimmedMean::new(f, quantum, rounding)
                    .map_err(|e| CliError::Usage(e.to_string()))?,
            )
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown rule {other:?} (try trimmed-mean, mean, midpoint, w-msr, \
                 dolev-midpoint, dolev-select-mean, quantized)"
            )))
        }
    })
}

/// Parses an adversary-structure spec: generator sets separated by `;`,
/// node ids inside a set separated by `,` (e.g. `"0,1;5,6"`).
fn parse_structure(spec: &str, n: usize) -> Result<AdversaryStructure, CliError> {
    let mut generators = Vec::new();
    for part in spec.split(';').filter(|p| !p.trim().is_empty()) {
        let mut ids = Vec::new();
        for tok in part.split(',').filter(|t| !t.trim().is_empty()) {
            let id: usize = tok
                .trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("--structure: bad node id {tok:?}")))?;
            if id >= n {
                return Err(CliError::Usage(format!(
                    "--structure contains node {id} >= n = {n}"
                )));
            }
            ids.push(id);
        }
        generators.push(NodeSet::from_indices(n, ids));
    }
    AdversaryStructure::new(n, generators).map_err(|e| CliError::Usage(e.to_string()))
}

fn parse_inputs(args: &ParsedArgs, n: usize) -> Result<Vec<f64>, CliError> {
    let given: Vec<f64> = args.list("inputs")?;
    if given.is_empty() {
        let seed: u64 = args.optional("seed")?.unwrap_or(0);
        let mut rng = StdRng::seed_from_u64(seed);
        Ok((0..n).map(|_| rng.random_range(0.0..100.0)).collect())
    } else if given.len() != n {
        Err(CliError::Usage(format!(
            "--inputs has {} values for {n} nodes",
            given.len()
        )))
    } else {
        Ok(given)
    }
}

/// `iabc simulate <file> --structure SPEC --faulty A,B ...`: run the
/// structure-aware rule ([`ModelTrimmedMean`]) in the identity-aware
/// engine under an explicit adversary structure.
fn simulate_with_structure(
    args: &ParsedArgs,
    g: &Digraph,
    spec: &str,
    faulty: &[usize],
) -> Result<String, CliError> {
    use iabc_core::fault_model::ModelTrimmedMean;

    let n = g.node_count();
    let structure = parse_structure(spec, n)?;
    let fault_set = NodeSet::from_indices(n, faulty.iter().copied());
    if !structure.admits(&fault_set) {
        return Err(CliError::Usage(format!(
            "--faulty {faulty:?} is not a feasible fault set of the structure {structure}"
        )));
    }
    let model = FaultModel::Structure(structure);
    let inputs = parse_inputs(args, n)?;
    let adversary = adversary_by_name(
        args.flag("adversary").unwrap_or("extremes"),
        args.optional("seed")?.unwrap_or(0),
    )?;
    let rule = ModelTrimmedMean::new(model.clone());
    let config = RunConfig {
        record_states: true,
        epsilon: args.optional("eps")?.unwrap_or(1e-6),
        max_rounds: args.optional("max-rounds")?.unwrap_or(10_000),
    };
    let mut sim = Scenario::on(g)
        .inputs(&inputs)
        .faults(fault_set.clone())
        .adversary(adversary)
        .model_aware(&rule)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let out = sim.run(&config).map_err(|e| CliError::Run(e.to_string()))?;
    let mut report =
        format!("{g}, model = {model}, rule = model-trimmed-mean, faulty = {faulty:?}\n");
    report.push_str(&format!(
        "converged: {} in {} rounds; final range {:.3e}; validity: {}\n",
        out.converged,
        out.rounds,
        out.final_range,
        if out.validity.is_valid() {
            "ok"
        } else {
            "VIOLATED"
        }
    ));
    if let Some(last) = out.trace.last() {
        if let Some((i, v)) = last
            .states
            .iter()
            .enumerate()
            .find(|(i, _)| !fault_set.contains(iabc_graph::NodeId::new(*i)))
        {
            report.push_str(&format!("agreed value (node {i}): {v:.6}\n"));
        }
    }
    Ok(report)
}

/// Resolves `--scheduler NAME` for the delay-bounded engine. `random`
/// draws from `--sched-seed` (default 0); `targeted` maximally delays the
/// receivers in `--victims A,B,..`.
fn scheduler_by_name(
    name: &str,
    args: &ParsedArgs,
    n: usize,
) -> Result<Box<dyn Scheduler>, CliError> {
    Ok(match name {
        "immediate" => Box::new(ImmediateScheduler),
        "max" => Box::new(MaxDelayScheduler),
        "random" => Box::new(RandomScheduler::new(
            args.optional("sched-seed")?.unwrap_or(0),
        )),
        "targeted" => {
            let victims: Vec<usize> = args.list("victims")?;
            if victims.is_empty() {
                return Err(CliError::Usage(
                    "--scheduler targeted needs --victims A,B,..".into(),
                ));
            }
            if victims.iter().any(|&v| v >= n) {
                return Err(CliError::Usage(format!(
                    "--victims contains a node >= n = {n}"
                )));
            }
            Box::new(TargetedScheduler::new(NodeSet::from_indices(n, victims)))
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown scheduler {other:?} (try immediate, max, random, targeted)"
            )))
        }
    })
}

/// `iabc simulate <file> --f N --faulty A,B --delay-bound B
/// [--scheduler NAME] [--jobs N] ...`: run the §7 partially-asynchronous
/// engine. `--jobs` fans each tick's update phase across the persistent
/// worker pool (the send/deliver phases stay serial so the scheduler's
/// RNG stream is identical for any job count) — results are bit-for-bit
/// identical to `--jobs 1`.
fn simulate_delay_bounded(
    args: &ParsedArgs,
    g: &Digraph,
    f: usize,
    faulty: &[usize],
    delay_bound: usize,
    jobs: usize,
) -> Result<String, CliError> {
    if delay_bound == 0 {
        return Err(CliError::Usage("--delay-bound must be >= 1".into()));
    }
    let n = g.node_count();
    let fault_set = NodeSet::from_indices(n, faulty.iter().copied());
    let inputs = parse_inputs(args, n)?;
    let adversary = adversary_by_name(
        args.flag("adversary").unwrap_or("extremes"),
        args.optional("seed")?.unwrap_or(0),
    )?;
    let rule = rule_by_name(args.flag("rule").unwrap_or("trimmed-mean"), f, args)?;
    let scheduler_name = args.flag("scheduler").unwrap_or("immediate").to_string();
    let scheduler = scheduler_by_name(&scheduler_name, args, n)?;
    let config = RunConfig {
        record_states: true,
        epsilon: args.optional("eps")?.unwrap_or(1e-6),
        max_rounds: args.optional("max-rounds")?.unwrap_or(10_000),
    };
    let mut sim = Scenario::on(g)
        .inputs(&inputs)
        .faults(fault_set.clone())
        .rule(rule.as_ref())
        .adversary(adversary)
        .parallel(jobs)
        .delay_bounded(scheduler, delay_bound)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let jobs_used = sim.jobs();
    let out = sim.run(&config).map_err(|e| CliError::Run(e.to_string()))?;
    let mut report = format!(
        "{g}, f = {f}, rule = {}, faulty = {faulty:?}, delay bound B = {delay_bound}, \
         scheduler = {scheduler_name}, jobs = {jobs_used}\n",
        rule.name(),
    );
    report.push_str(&format!(
        "converged: {} in {} ticks; final range {:.3e}; per-round validity audit: {}\n",
        out.converged,
        out.rounds,
        out.final_range,
        // With stale deliveries U[t] may transiently exceed U[t-1]; only
        // containment in the initial hull is guaranteed by the model, so a
        // per-round "violated" here is a staleness artifact, not an attack.
        if out.validity.is_valid() {
            "ok"
        } else {
            "violated (per-round audit; async model only guarantees the initial hull)"
        }
    ));
    if let Some(last) = out.trace.last() {
        if let Some((i, v)) = last
            .states
            .iter()
            .enumerate()
            .find(|(i, _)| !fault_set.contains(iabc_graph::NodeId::new(*i)))
        {
            report.push_str(&format!("agreed value (node {i}): {v:.6}\n"));
        }
    }
    if args.has_flag("trace") {
        report.push_str("tick   U[t]        mu[t]       range\n");
        for r in out.trace.records() {
            report.push_str(&format!(
                "{:<6} {:<11.5} {:<11.5} {:.3e}\n",
                r.round,
                r.max,
                r.min,
                r.range()
            ));
        }
    }
    Ok(report)
}

/// `iabc simulate <file> --f N --faulty A,B [--adversary NAME] [--inputs ..]
/// [--seed S] [--eps E] [--max-rounds R] [--rule NAME] [--jobs N] [--trace]`;
/// `iabc simulate <file> --structure SPEC --faulty A,B ...` for the
/// structure-aware engine; `--delay-bound B [--scheduler NAME]` for the §7
/// delay-bounded engine (`--jobs` reaches its update phase too).
pub fn simulate(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;
    let n = g.node_count();
    let faulty: Vec<usize> = args.list("faulty")?;
    if faulty.iter().any(|&v| v >= n) {
        return Err(CliError::Usage(format!(
            "--faulty contains a node >= n = {n}"
        )));
    }
    if let Some(spec) = args.flag("structure") {
        return simulate_with_structure(args, &g, spec, &faulty);
    }
    let f: usize = args.required("f")?;
    if let Some(delay_bound) = args.optional::<usize>("delay-bound")? {
        let jobs: usize = args.optional("jobs")?.unwrap_or(1);
        return simulate_delay_bounded(args, &g, f, &faulty, delay_bound, jobs);
    }
    let fault_set = NodeSet::from_indices(n, faulty.iter().copied());
    let inputs = parse_inputs(args, n)?;
    let adversary = adversary_by_name(
        args.flag("adversary").unwrap_or("extremes"),
        args.optional("seed")?.unwrap_or(0),
    )?;
    let rule = rule_by_name(args.flag("rule").unwrap_or("trimmed-mean"), f, args)?;
    let config = RunConfig {
        record_states: true,
        epsilon: args.optional("eps")?.unwrap_or(1e-6),
        max_rounds: args.optional("max-rounds")?.unwrap_or(10_000),
    };
    let jobs: usize = args.optional("jobs")?.unwrap_or(1);
    let mut sim = Scenario::on(&g)
        .inputs(&inputs)
        .faults(fault_set)
        .rule(rule.as_ref())
        .adversary(adversary)
        .parallel(jobs)
        .synchronous()
        .map_err(|e| CliError::Run(e.to_string()))?;
    let out = sim.run(&config).map_err(|e| CliError::Run(e.to_string()))?;

    let mut report = format!(
        "{g}, f = {f}, rule = {}, faulty = {:?}\n",
        rule.name(),
        faulty
    );
    report.push_str(&format!(
        "converged: {} in {} rounds; final range {:.3e}; validity: {}\n",
        out.converged,
        out.rounds,
        out.final_range,
        if out.validity.is_valid() {
            "ok"
        } else {
            "VIOLATED"
        }
    ));
    if let Some(last) = out.trace.last() {
        if let Some((i, v)) = last
            .states
            .iter()
            .enumerate()
            .find(|(i, _)| !sim.fault_set().contains(iabc_graph::NodeId::new(*i)))
        {
            report.push_str(&format!("agreed value (node {i}): {v:.6}\n"));
        }
    }
    if args.has_flag("trace") {
        report.push_str("round  U[t]        mu[t]       range\n");
        for r in out.trace.records() {
            report.push_str(&format!(
                "{:<6} {:<11.5} {:<11.5} {:.3e}\n",
                r.round,
                r.max,
                r.min,
                r.range()
            ));
        }
    }
    Ok(report)
}

/// `iabc robustness <file> [--r R --s S]`
pub fn robustness_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;
    let mut out = format!("{g}\n");
    match (args.optional::<usize>("r")?, args.optional::<usize>("s")?) {
        (Some(r), s) => {
            let s = s.unwrap_or(1);
            let verdict = robustness::is_robust(&g, r, s);
            out.push_str(&format!("({r}, {s})-robust: {verdict}\n"));
        }
        (None, _) => {
            let rmax = robustness::max_r_robustness(&g);
            out.push_str(&format!("max r-robustness: {rmax}\n"));
            out.push_str(&format!(
                "=> sufficient for W-MSR with f <= {} (via (2f+1)-robustness)\n",
                rmax.saturating_sub(1) / 2
            ));
        }
    }
    Ok(out)
}

/// `iabc alpha <file> --f N`
pub fn alpha_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;
    let f: usize = args.required("f")?;
    let a = alpha::algorithm1_alpha(&g, f).map_err(|e| CliError::Run(e.to_string()))?;
    let n = g.node_count();
    let mut out = format!("{g}, f = {f}\nalpha = {a:.6}\n");
    if n >= f + 2 {
        let l = alpha::worst_case_propagation_length(n, f);
        out.push_str(&format!(
            "worst-case propagation length l = {l}; per-phase factor (1 - alpha^l/2) = {:.6}\n",
            alpha::contraction_factor(a, l)
        ));
        let bound = alpha::phases_to_epsilon(a, l, 1.0, 1e-6) * l;
        out.push_str(&format!(
            "Lemma 5 bound: range 1.0 -> 1e-6 within {bound} iterations (very conservative)\n"
        ));
    }
    Ok(out)
}

/// `iabc dot <file> [--f N]` — DOT render; with `--f`, colour a violating
/// witness partition if one exists.
pub fn dot_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;
    let groups = match args.optional::<usize>("f")? {
        Some(f) => match theorem1::find_violation(&g, f) {
            Some(w) => vec![
                DotGroup::new("F", "lightcoral", w.fault_set.clone()),
                DotGroup::new("L", "lightblue", w.left.clone()),
                DotGroup::new("C", "lightgray", w.center.clone()),
                DotGroup::new("R", "lightgreen", w.right.clone()),
            ],
            None => Vec::new(),
        },
        None => Vec::new(),
    };
    Ok(to_dot(&g, "iabc", &groups))
}

/// `iabc repair <file> --f N [--out FILE]` — add edges until the Theorem 1
/// condition holds; print the patch (and optionally write the repaired
/// edge list).
pub fn repair_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;
    let f: usize = args.required("f")?;
    let repair =
        iabc_core::repair::suggest_edges(&g, f).map_err(|e| CliError::Run(e.to_string()))?;
    let mut out = format!("{g}, f = {f}\n");
    if repair.added.is_empty() {
        out.push_str("already satisfies the condition; no edges needed\n");
    } else {
        out.push_str(&format!("added {} edge(s):\n", repair.added.len()));
        for (u, v) in &repair.added {
            out.push_str(&format!("  {u} -> {v}\n"));
        }
        out.push_str(&format!(
            "repaired graph: {} (condition now satisfied)\n",
            repair.graph
        ));
    }
    if let Some(path) = args.flag("out") {
        std::fs::write(path, parse::to_edge_list(&repair.graph))
            .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        out.push_str(&format!("wrote repaired edge list to {path}\n"));
    }
    Ok(out)
}

/// `iabc profile <file>` — structural summary: degrees, density,
/// reciprocity, connectivity, diameter.
pub fn profile_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;
    let p = metrics::profile(&g);
    let mut out = format!("{g}\n");
    out.push_str(&format!(
        "in-degree: min {} / max {} (mean {:.2}); out-degree: min {} / max {}\n",
        p.degrees.min_in, p.degrees.max_in, p.degrees.mean, p.degrees.min_out, p.degrees.max_out
    ));
    out.push_str(&format!(
        "density {:.3}; reciprocity {:.3}\n",
        p.density, p.reciprocity
    ));
    match p.vertex_connectivity {
        Some(k) => out.push_str(&format!(
            "vertex connectivity {k} (supports f <= {} for *non-iterative* consensus)\n",
            k.saturating_sub(1) / 2
        )),
        None => out.push_str("vertex connectivity: n/a (fewer than 2 nodes)\n"),
    }
    match p.diameter {
        Some(d) => out.push_str(&format!("diameter {d}\n")),
        None => out.push_str("diameter: infinite (not strongly connected)\n"),
    }
    if g.node_count() <= 12 {
        match theorem1::max_tolerable_f(&g) {
            Some(cap) => out.push_str(&format!(
                "Theorem 1 capacity: tolerates up to f = {cap} Byzantine node(s) iteratively\n"
            )),
            None => out.push_str(
                "Theorem 1 capacity: none — fails even at f = 0 (multiple source components)\n",
            ),
        }
    } else {
        out.push_str("Theorem 1 capacity: skipped (n > 12; use `iabc check --f N`)\n");
    }
    Ok(out)
}

/// `iabc minimal <file> --f N [--prune] [--out FILE]` — edge-criticality
/// probe (§6.1 minimality conjecture tooling).
pub fn minimal_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;
    let f: usize = args.required("f")?;
    let mut out = format!("{g}, f = {f}\n");
    let Some(report) = minimality::probe(&g, f) else {
        out.push_str("graph violates Theorem 1; minimality is moot (try `iabc repair`)\n");
        return Ok(out);
    };
    out.push_str(&format!(
        "critical directed edges: {}/{}; critical undirected pairs: {}\n",
        report.critical, report.edges, report.critical_pairs
    ));
    out.push_str(&format!(
        "greedy pruning keeps {}/{} edges{}\n",
        report.pruned_edges,
        report.edges,
        if report.pruned_edges == report.edges {
            " — already edge-minimal"
        } else {
            ""
        }
    ));
    if args.has_flag("prune") {
        let Some(pruned) = minimality::prune_to_minimal(&g, f) else {
            return Err(CliError::Run(
                "pruning failed: the graph no longer satisfies the condition".into(),
            ));
        };
        if let Some(path) = args.flag("out") {
            if !path.is_empty() {
                std::fs::write(path, parse::to_edge_list(&pruned))
                    .map_err(|e| CliError::Io(format!("{path}: {e}")))?;
                out.push_str(&format!("wrote pruned edge list to {path}\n"));
            }
        } else {
            out.push_str(&parse::to_edge_list(&pruned));
        }
    }
    Ok(out)
}

/// `iabc construct N --f F [--attachment uniform|preferential|lowest]
/// [--seed S]` — emit a graph that satisfies Theorem 1 by construction.
pub fn construct_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let n: usize = args
        .positional(0)
        .ok_or_else(|| CliError::Usage("construct: expected node count N".into()))?
        .parse()
        .map_err(|_| CliError::Usage("construct: bad node count".into()))?;
    let f: usize = args.required("f")?;
    if n < 3 * f + 1 {
        return Err(CliError::Usage(format!(
            "construct: need N >= 3f + 1 = {} (got {n})",
            3 * f + 1
        )));
    }
    let attachment = match args.flag("attachment").unwrap_or("uniform") {
        "uniform" => construction::Attachment::Uniform,
        "preferential" => construction::Attachment::Preferential,
        "lowest" => construction::Attachment::Lowest,
        other => {
            return Err(CliError::Usage(format!(
                "construct: unknown attachment {other:?} (try uniform, preferential, lowest)"
            )))
        }
    };
    let seed: u64 = args.optional("seed")?.unwrap_or(0);
    let g = construction::grow_satisfying(n, f, attachment, &mut StdRng::seed_from_u64(seed));
    debug_assert!(theorem1::check(&g, f).is_satisfied());
    Ok(parse::to_edge_list(&g))
}

/// `iabc baseline <file> --f N --faulty A,B [--adversary NAME] [--seed S]
/// [--eps E] [--max-rounds R]` — run Algorithm 1 against the Dolev rules
/// and W-MSR on one workload.
pub fn baseline_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;
    let n = g.node_count();
    let f: usize = args.required("f")?;
    let faulty: Vec<usize> = args.list("faulty")?;
    if faulty.iter().any(|&v| v >= n) {
        return Err(CliError::Usage(format!(
            "--faulty contains a node >= n = {n}"
        )));
    }
    let fault_set = NodeSet::from_indices(n, faulty.iter().copied());
    let seed: u64 = args.optional("seed")?.unwrap_or(0);
    let adversary_name = args.flag("adversary").unwrap_or("extremes").to_string();
    // Resolve the name once; the factory itself cannot fail afterwards.
    let make_adversary = adversary_factory(&adversary_name, seed)?;
    let inputs: Vec<f64> = {
        let given: Vec<f64> = args.list("inputs")?;
        if given.is_empty() {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n).map(|_| rng.random_range(0.0..100.0)).collect()
        } else if given.len() != n {
            return Err(CliError::Usage(format!(
                "--inputs has {} values for {n} nodes",
                given.len()
            )));
        } else {
            given
        }
    };
    let config = RunConfig {
        record_states: false,
        epsilon: args.optional("eps")?.unwrap_or(1e-6),
        max_rounds: args.optional("max-rounds")?.unwrap_or(20_000),
    };
    let faceoff = iabc_baselines::comparison::Faceoff {
        graph: &g,
        inputs: &inputs,
        fault_set,
        adversary_factory: &*make_adversary,
        config,
    };
    let a1 = TrimmedMean::new(f);
    let mid = DolevMidpoint::new(f);
    let sel = DolevSelectMean::new(f);
    let wmsr = Wmsr::new(f);
    let rules: Vec<&dyn UpdateRule> = vec![&a1, &mid, &sel, &wmsr];

    let mut out = format!("{g}, f = {f}, adversary = {adversary_name}, faulty = {faulty:?}\n");
    out.push_str(&format!(
        "{:<18} {:<10} {:<8} {:<12} {}\n",
        "rule", "converged", "rounds", "final range", "valid"
    ));
    for r in faceoff.run_all(&rules) {
        out.push_str(&format!(
            "{:<18} {:<10} {:<8} {:<12.3e} {}\n",
            r.rule, r.converged, r.rounds, r.final_range, r.valid
        ));
    }
    out.push_str("note: only trimmed-mean (Algorithm 1) is guaranteed off complete graphs\n");
    Ok(out)
}

/// `iabc record <file> --f N --faulty A,B --rounds R --out T.txt
/// [--adversary NAME] [--inputs ..|--seed S]` — record a message-level
/// transcript of a run.
pub fn record_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;
    let n = g.node_count();
    let f: usize = args.required("f")?;
    let rounds: usize = args.optional("rounds")?.unwrap_or(50);
    let faulty: Vec<usize> = args.list("faulty")?;
    if faulty.iter().any(|&v| v >= n) {
        return Err(CliError::Usage(format!(
            "--faulty contains a node >= n = {n}"
        )));
    }
    let fault_set = NodeSet::from_indices(n, faulty.iter().copied());
    let inputs: Vec<f64> = {
        let given: Vec<f64> = args.list("inputs")?;
        if given.is_empty() {
            let seed: u64 = args.optional("seed")?.unwrap_or(0);
            let mut rng = StdRng::seed_from_u64(seed);
            (0..n).map(|_| rng.random_range(0.0..100.0)).collect()
        } else if given.len() != n {
            return Err(CliError::Usage(format!(
                "--inputs has {} values for {n} nodes",
                given.len()
            )));
        } else {
            given
        }
    };
    let mut adversary = adversary_by_name(
        args.flag("adversary").unwrap_or("extremes"),
        args.optional("seed")?.unwrap_or(0),
    )?;
    let rule = TrimmedMean::new(f);
    let transcript =
        iabc_sim::transcript::record(&g, &inputs, fault_set, &rule, adversary.as_mut(), rounds)
            .map_err(|e| CliError::Run(e.to_string()))?;
    let text = transcript.to_text();
    match args.flag("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, &text).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            Ok(format!(
                "recorded {} rounds ({} Byzantine messages) to {path}\n",
                transcript.rounds.len(),
                transcript
                    .rounds
                    .iter()
                    .map(|r| r.messages.len())
                    .sum::<usize>()
            ))
        }
        _ => Ok(text),
    }
}

/// `iabc replay <file> --f N --transcript T.txt` — deterministically replay
/// and verify a recorded run.
pub fn replay_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let g = load_graph(args)?;
    let f: usize = args.required("f")?;
    let path = args
        .flag("transcript")
        .ok_or_else(|| CliError::Usage("missing required flag --transcript".into()))?;
    let text = std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
    let transcript = iabc_sim::transcript::Transcript::from_text(&text)
        .map_err(|e| CliError::Graph(format!("transcript: {e}")))?;
    let rule = TrimmedMean::new(f);
    match iabc_sim::transcript::replay(&g, &rule, &transcript) {
        Ok(final_states) => {
            let honest: Vec<f64> = final_states
                .iter()
                .enumerate()
                .filter(|(i, _)| !transcript.fault_set.contains(iabc_graph::NodeId::new(*i)))
                .map(|(_, &v)| v)
                .collect();
            let lo = honest.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = honest.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            Ok(format!(
                "replay VERIFIED: {} rounds, final honest range {:.3e}\n",
                transcript.rounds.len(),
                hi - lo
            ))
        }
        Err(e) => Ok(format!("replay FAILED: {e}\n")),
    }
}

/// `iabc sweep <experiments|monte-carlo|census> [--parallel] [--jobs N] ...`
///
/// Fans the chosen grid across cores via the `iabc-analysis` sweep runner.
/// Per-cell seeds derive from grid coordinates, so output is bit-identical
/// for any `--jobs` value (and with/without `--parallel`).
pub fn sweep_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let jobs = sweep_jobs(args)?;
    let batch = args.has_flag("batch");
    let grid = args.positional(0).ok_or_else(|| {
        CliError::Usage("expected a sweep grid: experiments | monte-carlo | census".into())
    })?;
    match grid {
        "experiments" => {
            let ids: Vec<String> = args.list("ids")?;
            let unknown: Vec<&str> = ids
                .iter()
                .map(String::as_str)
                .filter(|id| !sweep::is_known_experiment_id(id))
                .collect();
            if !unknown.is_empty() {
                return Err(CliError::Usage(format!(
                    "unknown experiment id(s) {}; expected E1..E12, X1..X13",
                    unknown.join(", ")
                )));
            }
            // Thin-client mode: ship the sweep to a running daemon as a
            // single content-addressed job, so repeated regeneration runs
            // (CI, `make experiments`) collapse to one compute and
            // N - 1 cache reads.
            if let Some(addr) = args.flag("addr").filter(|a| !a.is_empty()) {
                let job = iabc_serve::JobSpec::Sweep { ids: ids.clone() };
                let outcome =
                    iabc_serve::submit(addr, &job).map_err(|e| CliError::Run(e.to_string()))?;
                let results = iabc_serve::decode_sweep_payload(&outcome.payload)
                    .map_err(|e| CliError::Run(e.to_string()))?;
                let mut table = iabc_analysis::table::Table::new(["id", "title", "rows", "pass"]);
                for r in &results {
                    table.row([
                        r.id.to_string(),
                        r.title.to_string(),
                        r.table.len().to_string(),
                        r.pass.to_string(),
                    ]);
                }
                let failed: Vec<&str> = results
                    .iter()
                    .filter(|r| !r.pass)
                    .map(|r| r.id.as_str())
                    .collect();
                return Ok(format!(
                    "experiment sweep via {addr} ({} cells, cache: {}, key {})\n\n{table}\n{}\n",
                    results.len(),
                    if outcome.cache_hit { "hit" } else { "miss" },
                    outcome.key.hex(),
                    if failed.is_empty() {
                        "all experiments PASS".to_string()
                    } else {
                        format!("FAILED: {}", failed.join(", "))
                    }
                ));
            }
            let store_dir = args.flag("store").filter(|s| !s.is_empty());
            let max_store_bytes: Option<u64> = args.optional("max-store-bytes")?;
            let (summary, outcomes, memo_counts) = match store_dir {
                Some(dir) => {
                    let store = iabc_serve::Store::open_with_budget(
                        std::path::Path::new(dir),
                        max_store_bytes,
                    )
                    .map_err(|e| CliError::Io(format!("store {dir}: {e}")))?;
                    let mut memo = iabc_serve::StoreMemo::new(&store, jobs);
                    let (summary, outcomes, hits, misses) =
                        batched::run_experiment_sweep_batched_memo(&ids, jobs, batch, &mut memo);
                    (summary, outcomes, Some((hits, misses, store.evictions())))
                }
                None => {
                    let (summary, outcomes) =
                        batched::run_experiment_sweep_batched(&ids, jobs, batch);
                    (summary, outcomes, None)
                }
            };
            let mut out = format!(
                "experiment sweep ({} cells, {jobs} jobs)\n\n{summary}\n",
                outcomes.len()
            );
            if let Some((hits, misses, evictions)) = memo_counts {
                out.push_str(&format!(
                    "store: {hits} cell hit(s), {misses} miss(es), {evictions} evicted ({})\n",
                    store_dir.unwrap_or_default()
                ));
            }
            let failed: Vec<&str> = outcomes
                .iter()
                .filter(|o| !o.value.pass)
                .map(|o| o.value.id.as_str())
                .collect();
            if failed.is_empty() {
                out.push_str("all experiments PASS\n");
            } else {
                out.push_str(&format!("FAILED: {}\n", failed.join(", ")));
            }
            Ok(out)
        }
        "monte-carlo" => {
            let ns: Vec<usize> = args.list("n")?;
            let fs: Vec<usize> = args.list("f")?;
            let spec = sweep::MonteCarloSpec {
                ns: if ns.is_empty() { vec![6, 8, 10] } else { ns },
                fs: if fs.is_empty() { vec![1] } else { fs },
                edge_prob: args.optional("p")?.unwrap_or(0.5),
                trials: args.optional("trials")?.unwrap_or(100),
                replicas: args.optional("replicas")?.unwrap_or(0),
            };
            if !(0.0..=1.0).contains(&spec.edge_prob) {
                return Err(CliError::Usage("--p must be in [0, 1]".into()));
            }
            let table = sweep::run_monte_carlo_sweep(&spec, jobs);
            let batch_note = if spec.replicas > 0 {
                format!(", {} FastMath replicas/graph", spec.replicas)
            } else {
                String::new()
            };
            Ok(format!(
                "Monte-Carlo tolerance sweep (p = {}, {} trials/cell{batch_note}, \
                 {jobs} jobs)\n\n{table}",
                spec.edge_prob, spec.trials
            ))
        }
        "census" => {
            let max_n: usize = args.optional("max-n")?.unwrap_or(4);
            let fs: Vec<usize> = args.list("f")?;
            let fs = if fs.is_empty() { vec![0, 1] } else { fs };
            if max_n < 2 {
                return Err(CliError::Usage("--max-n must be at least 2".into()));
            }
            if max_n > sweep::CENSUS_MAX_N {
                return Err(CliError::Usage(format!(
                    "--max-n {max_n} exceeds the exhaustive-census limit of {} \
                     (2^(n(n-1)) graphs; use `sweep monte-carlo` for larger n)",
                    sweep::CENSUS_MAX_N
                )));
            }
            let table = sweep::run_census_sweep(max_n, &fs, jobs);
            let mut out =
                format!("exhaustive tolerance census (n = 2..={max_n}, {jobs} jobs)\n\n{table}");
            let replicas: usize = args.optional("replicas")?.unwrap_or(0);
            if replicas > 0 {
                let conv = batched::run_census_conv_sweep(max_n, &fs, replicas, jobs, batch);
                out.push_str(&format!(
                    "\nconvergence census ({replicas} replicas/cell, max-pull attack, \
                     trimmed-mean)\n\n{conv}"
                ));
            }
            Ok(out)
        }
        other => Err(CliError::Usage(format!(
            "unknown sweep grid {other:?}; expected experiments | monte-carlo | census"
        ))),
    }
}

/// Resolves `--jobs N` / `--parallel` into a worker count (default: serial).
fn sweep_jobs(args: &ParsedArgs) -> Result<usize, CliError> {
    let jobs: Option<usize> = match args.flag("jobs") {
        None => None,
        Some("") => {
            return Err(CliError::Usage(
                "flag --jobs needs a value (0 = all cores)".into(),
            ))
        }
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| CliError::Usage(format!("flag --jobs: cannot parse {raw:?}")))?,
        ),
    };
    Ok(sweep::effective_jobs(jobs, args.has_flag("parallel")))
}

/// `iabc deploy --nodes N [--mode threaded|multiplexed] [--jobs J]
/// [--degree D] [--f F] [--rounds R]` — runs Algorithm 1 as a real
/// deployment on a circulant digraph (every node hears its `D`
/// predecessors; nodes `0..F` are Byzantine `ConstantLiar`s).
///
/// `--mode threaded` is the fidelity reference: one OS thread per node,
/// one channel per edge, capped at 8192 nodes. `--mode multiplexed` (the
/// default) runs every node on a shared `--jobs`-thread pool with
/// CSR-indexed mailboxes — memory is bounded by edges + states, so a
/// million nodes fit on one host. Both modes print a bitwise state
/// checksum; for the same workload it is identical across modes and job
/// counts.
pub fn deploy_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    use iabc_graph::CompiledTopology;
    use iabc_runtime::{
        run_threaded, ConstantLiar, LocalTransport, MultiplexConfig, MultiplexedDeployment,
    };
    use std::time::Instant;

    /// One OS thread per node stops being viable long before the
    /// multiplexed tier breaks a sweat; past this the command refuses
    /// rather than letting thread exhaustion fail mid-run.
    const THREADED_CAP: usize = 8192;

    let n: usize = args.required("nodes")?;
    let mode = args.flag("mode").unwrap_or("multiplexed");
    let jobs: usize = args.optional("jobs")?.unwrap_or(1);
    let f: usize = args.optional("f")?.unwrap_or(1);
    let degree: usize = args.optional("degree")?.unwrap_or((3 * f + 1).max(4));
    let rounds: usize = args.optional("rounds")?.unwrap_or(30);
    if f >= n {
        return Err(CliError::Usage(format!(
            "need --f < --nodes (got f = {f}, nodes = {n})"
        )));
    }
    if n < 2 || degree >= n {
        return Err(CliError::Usage(format!(
            "need --nodes > degree (got nodes = {n}, degree = {degree})"
        )));
    }

    // Deterministic workload: the first f nodes are Byzantine, inputs
    // spread over [0, 1000).
    let faults = NodeSet::from_indices(n, 0..f);
    let inputs: Vec<f64> = (0..n).map(|i| ((i * 37) % 1000) as f64).collect();

    let (report, threads_line, elapsed) = match mode {
        "threaded" => {
            if n > THREADED_CAP {
                return Err(CliError::Usage(format!(
                    "--mode threaded spawns one OS thread per node; {n} nodes exceeds the \
                     {THREADED_CAP}-node cap — use --mode multiplexed"
                )));
            }
            let g = generators::circulant(n, 1..=degree);
            let start = Instant::now();
            let report = run_threaded(&g, &inputs, &faults, f, rounds, |_| {
                Box::new(ConstantLiar { value: 1e6 })
            })
            .map_err(|e| CliError::Run(e.to_string()))?;
            let elapsed = start.elapsed().as_secs_f64();
            (report, format!("os threads: {n} (one per node)"), elapsed)
        }
        "multiplexed" => {
            // CSR built directly — no n^2 adjacency bitset anywhere, so
            // n = 10^6 is a few hundred MB of edges + states.
            let topology = CompiledTopology::circulant(n, degree, &faults);
            let mut deployment = MultiplexedDeployment::new(
                &topology,
                &inputs,
                f,
                rounds,
                |_| Box::new(ConstantLiar { value: 1e6 }),
                LocalTransport,
                MultiplexConfig {
                    jobs,
                    shared_pool: true,
                    ..MultiplexConfig::default()
                },
            )
            .map_err(|e| CliError::Run(e.to_string()))?;
            let start = Instant::now();
            let report = deployment.run().map_err(|e| CliError::Run(e.to_string()))?;
            let elapsed = start.elapsed().as_secs_f64();
            let spawned = deployment.pool_threads_spawned();
            (
                report,
                // The process-level pool is sized by its first user, so the
                // spawned count is reported rather than derived from
                // --jobs (a daemon that already warmed the pool keeps it).
                format!(
                    "os threads: 1 caller + {spawned} pooled workers \
                     (shared process pool; --jobs {jobs})"
                ),
                elapsed,
            )
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown --mode {other:?}: expected threaded or multiplexed"
            )));
        }
    };

    let rate = rounds as f64 / elapsed.max(1e-12);
    // Order-sensitive bitwise digest: equal across modes and job counts
    // iff the trajectories are identical float for float.
    let checksum = report
        .final_states
        .iter()
        .fold(0u64, |acc, v| acc.rotate_left(7) ^ v.to_bits());
    Ok(format!(
        "deploy: circulant/n{n} degree={degree} f={f} rounds={rounds} mode={mode}\n\
         {threads_line}\n\
         {rate:.1} rounds/s ({elapsed:.3}s total)\n\
         honest range: {:.6e}\n\
         state checksum: {checksum:016x}\n",
        report.honest_range()
    ))
}

/// `iabc serve --store DIR [--addr 127.0.0.1:PORT] [--jobs N]
/// [--accept K] [--max-conn C] [--max-store-bytes B]` — runs the
/// sweep-as-a-service daemon: a bounded thread-per-connection TCP accept
/// loop answering `iabc submit` / `iabc query` from the content-addressed
/// result store at `DIR`. Hits answer concurrently from the store's read
/// lock; misses execute under the process-level shared pool's compute
/// permit, with identical in-flight submissions coalesced onto one
/// computation (single-flight). The bound address is printed to stderr
/// before the loop starts (port 0 picks an ephemeral port), so scripts
/// can wait for readiness. `--accept K` exits cleanly after `K`
/// connections (CI smoke runs); otherwise the daemon runs until an
/// `iabc`-protocol shutdown request arrives. `--max-conn C` bounds
/// concurrent handler threads (`1` = sequential; default 8);
/// `--max-store-bytes B` caps total object bytes, evicting
/// least-recently-used results when an insert would exceed the budget.
pub fn serve_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let store_dir: String = args.required("store")?;
    let config = iabc_serve::ServerConfig {
        addr: args
            .flag("addr")
            .filter(|a| !a.is_empty())
            .unwrap_or("127.0.0.1:0")
            .to_string(),
        jobs: args.optional("jobs")?.unwrap_or(0),
        store_dir: std::path::PathBuf::from(store_dir),
        accept_limit: args.optional("accept")?,
        max_connections: args.optional("max-conn")?.unwrap_or(0),
        max_store_bytes: args.optional("max-store-bytes")?,
    };
    let mut server = iabc_serve::Server::bind(&config).map_err(|e| CliError::Run(e.to_string()))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Run(e.to_string()))?;
    // Announce readiness on stderr immediately: the report string only
    // reaches stdout after the accept loop exits, far too late for a
    // script polling for the daemon.
    eprintln!(
        "iabc serve: listening on {addr} (store: {})",
        config.store_dir.display()
    );
    let stats = server.run().map_err(|e| CliError::Run(e.to_string()))?;
    Ok(format!(
        "serve: {addr} handled {} connection(s) — {} job hit(s), {} job miss(es), \
         {} coalesced; store holds {} object(s), {} evicted\n",
        stats.connections,
        stats.job_hits,
        stats.job_misses,
        stats.job_coalesced,
        server.store().len(),
        server.store().evictions()
    ))
}

/// `iabc compact (--addr HOST:PORT | --store DIR)` — rewrites a result
/// store's run journal down to one record per live object (replay-
/// equivalent by construction) and sweeps orphaned object files. With
/// `--addr` the request goes to a running daemon; with `--store` the
/// journal is compacted offline, directly on disk.
pub fn compact_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let stats = match (args.flag("addr"), args.flag("store")) {
        (Some(addr), None) => {
            iabc_serve::compact(addr).map_err(|e| CliError::Run(e.to_string()))?
        }
        (None, Some(dir)) => {
            let store = iabc_serve::Store::open(std::path::Path::new(dir))
                .map_err(|e| CliError::Io(format!("store {dir}: {e}")))?;
            store.compact().map_err(|e| CliError::Run(e.to_string()))?
        }
        _ => {
            return Err(CliError::Usage(
                "compact needs exactly one of --addr HOST:PORT or --store DIR".into(),
            ))
        }
    };
    Ok(format!(
        "compacted: {} -> {} record(s), {} -> {} journal byte(s), {} orphan object(s) removed\n",
        stats.records_before,
        stats.records_after,
        stats.bytes_before,
        stats.bytes_after,
        stats.orphans_removed
    ))
}

/// Builds the [`iabc_serve::JobSpec`] shared by `iabc submit` (sent over
/// TCP) from the subcommand's arguments: `submit sweep [--ids E1,..]` or
/// `submit scenario <graph-file> --f N [--faulty A,B] [--rule R]
/// [--adversary A] [--seed S | --inputs V,V,..] [--quantum Q] [--eps E]
/// [--max-rounds R] [--delay-bound B [--scheduler NAME]
/// [--sched-seed S]]`. A `--delay-bound` turns the job into a
/// delay-bounded asynchronous run (schedulers: immediate | max | random);
/// the engine choice is part of the run key, so synchronous and
/// delay-bounded runs of the same scenario never collide in the store.
fn submit_job_from_args(args: &ParsedArgs) -> Result<iabc_serve::JobSpec, CliError> {
    let kind = args.positional(0).ok_or_else(|| {
        CliError::Usage("expected a job kind: sweep | scenario <graph-file>".into())
    })?;
    match kind {
        "sweep" => Ok(iabc_serve::JobSpec::Sweep {
            ids: args.list("ids")?,
        }),
        "scenario" => {
            let path = args.positional(1).ok_or_else(|| {
                CliError::Usage("scenario jobs need a graph file: submit scenario <file>".into())
            })?;
            let graph =
                std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("{path}: {e}")))?;
            let seed: u64 = args.optional("seed")?.unwrap_or(0);
            let explicit: Vec<f64> = args.list("inputs")?;
            let inputs = if explicit.is_empty() {
                iabc_serve::InputSpec::Seeded(seed)
            } else {
                iabc_serve::InputSpec::Explicit(explicit)
            };
            let engine = match args.optional::<usize>("delay-bound")? {
                Some(bound) => iabc_serve::EngineSpec::DelayBounded {
                    bound,
                    scheduler: args.flag("scheduler").unwrap_or("max").to_string(),
                    sched_seed: args.optional("sched-seed")?.unwrap_or(0),
                },
                None => iabc_serve::EngineSpec::Synchronous,
            };
            Ok(iabc_serve::JobSpec::Scenario(iabc_serve::ScenarioSpec {
                graph,
                faulty: args.list("faulty")?,
                f: args.required("f")?,
                rule: args.flag("rule").unwrap_or("trimmed-mean").to_string(),
                quantum: args.optional("quantum")?,
                adversary: args.flag("adversary").unwrap_or("constant").to_string(),
                seed,
                inputs,
                epsilon: args.optional("eps")?.unwrap_or(1e-6),
                max_rounds: args.optional("max-rounds")?.unwrap_or(10_000),
                engine,
            }))
        }
        other => Err(CliError::Usage(format!(
            "unknown job kind {other:?}; expected sweep | scenario"
        ))),
    }
}

/// `iabc submit <sweep|scenario ..> --addr HOST:PORT` — submits a job to a
/// running daemon and prints cache verdict, run key, and the payload as
/// hex (so CI can byte-diff a hit against the original miss).
pub fn submit_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let addr: String = args.required("addr")?;
    let job = submit_job_from_args(args)?;
    let outcome = iabc_serve::submit(&addr, &job).map_err(|e| CliError::Run(e.to_string()))?;
    let mut out = String::new();
    for label in &outcome.progress {
        out.push_str(&format!("progress: {label}\n"));
    }
    out.push_str(&format!(
        "cache: {}\nkey: {}\ncells: {} hit(s), {} miss(es)\npayload ({} bytes): {}\n",
        if outcome.cache_hit { "hit" } else { "miss" },
        outcome.key.hex(),
        outcome.hits,
        outcome.misses,
        outcome.payload.len(),
        iabc_serve::protocol::to_hex(&outcome.payload)
    ));
    Ok(out)
}

/// `iabc query --addr HOST:PORT --key HEX` — fetches a stored payload by
/// run key without executing anything; absent keys are reported (exit
/// stays zero — absence is an answer, not an error).
pub fn query_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    let addr: String = args.required("addr")?;
    let key_hex: String = args.required("key")?;
    let key = iabc_serve::RunKey::from_hex(&key_hex)
        .ok_or_else(|| CliError::Usage(format!("--key: not a 16-digit hex key: {key_hex:?}")))?;
    match iabc_serve::query(&addr, key).map_err(|e| CliError::Run(e.to_string()))? {
        Some(payload) => Ok(format!(
            "key: {}\npayload ({} bytes): {}\n",
            key.hex(),
            payload.len(),
            iabc_serve::protocol::to_hex(&payload)
        )),
        None => Ok(format!("key: {}\nabsent\n", key.hex())),
    }
}

/// `iabc perf [--quick] [--steps S] [--jobs N] [--out FILE]` — measures
/// the compiled synchronous engine's step throughput (rounds/sec) against
/// the retained pre-refactor reference stepper on the
/// [`iabc_bench::hotpath_grid`] workloads, adds a **parallel-vs-serial**
/// datapoint (the same compiled engine at `--jobs N` vs one worker) and a
/// **pool-vs-per-step-spawn** datapoint (the retained executor vs
/// respawning its workers before every step, at small n / large round
/// counts where the spawn cost dominates), a **deploy** datapoint (the
/// runtime's threaded vs multiplexed tiers on the same circulant
/// workload, plus a multiplexed-only scale measurement at an n no
/// threaded deployment could host), a **serve-cache** datapoint (the same
/// scenario batch submitted cold then warm against a scratch result
/// store, asserting the warm payloads are byte-identical), a
/// **serve-concurrent** datapoint (the real daemon over loopback: four
/// hit clients measured while one expensive miss holds the compute
/// permit, concurrent `--max-conn` vs the sequential `--max-conn 1`
/// baseline, all hit payloads asserted byte-identical to the store;
/// plus an informational journal compaction-ratio line), a **fastmath**
/// datapoint (the columnar merge-network sort across 32 lanes vs per-lane
/// exact sorting, with the scalar one-row kernel faceoff kept as an
/// informational line), a **replica-batch** datapoint (R batched SoA
/// replicas vs R dispatched engines), a **batched-sweep** datapoint (a
/// same-topology census slice grouped into one width-32 batch vs per-cell
/// dispatch, results asserted identical), and writes the machine-readable
/// `BENCH_hotpath.json` so the repo accumulates a perf trajectory across
/// commits. The parallel datapoint is demoted to informational when the
/// host has fewer cores than `--jobs` (pure scheduler noise there).
///
/// `iabc perf --check [--baseline FILE] [--tolerance T]` additionally
/// diffs the fresh run against the committed baseline JSON and **fails**
/// (non-zero exit) if any workload's compiled-vs-reference speedup — or
/// the parallel, pool, deploy, serve-cache, or serve-concurrent
/// datapoint's speedup —
/// regressed by more than the noise tolerance (default 0.4, i.e. a 40% drop). Workloads missing
/// from either side (e.g. quick-mode runs checked against a full-mode
/// baseline) are skipped, so CI smoke runs can check against the
/// committed full grid.
pub fn perf_cmd(args: &ParsedArgs) -> Result<String, CliError> {
    use iabc_sim::reference::{ReferenceStepper, ReferenceTrimmedMean};
    use std::time::Instant;

    let quick = args.has_flag("quick");
    let out_path = args.flag("out").unwrap_or("BENCH_hotpath.json").to_string();
    let steps_override = args.optional::<usize>("steps")?;
    let jobs: usize = args.optional("jobs")?.unwrap_or(4);
    let check = args.has_flag("check");
    let baseline_path = args.flag("baseline").unwrap_or("BENCH_hotpath.json");
    let tolerance: f64 = args.optional("tolerance")?.unwrap_or(0.4);
    let baseline = if check {
        let text = std::fs::read_to_string(baseline_path)
            .map_err(|e| CliError::Io(format!("{baseline_path}: {e}")))?;
        Some(parse_bench_json(&text))
    } else {
        None
    };

    let mut report = format!(
        "hotpath throughput ({} grid): compiled engine vs pre-refactor reference\n\
         {:<16} {:>4} {:>6} {:>14} {:>14} {:>8}\n",
        if quick { "quick" } else { "full" },
        "workload",
        "f",
        "steps",
        "compiled/s",
        "reference/s",
        "speedup"
    );
    let mut entries = Vec::new();
    let mut fresh: Vec<BenchEntry> = Vec::new();
    for w in iabc_bench::hotpath_grid(quick) {
        let n = w.graph.node_count();
        let steps = steps_override
            .unwrap_or(if n >= 5000 { 4 } else { 40 })
            .max(1);
        // Same inputs and fault placement as benches/hotpath.rs — both
        // consumers share the iabc_bench helpers so they provably time the
        // same workload.
        let inputs = iabc_bench::hotpath_inputs(n);
        let faults = NodeSet::from_indices(n, iabc_bench::hotpath_fault_nodes(n, w.f));

        let rule = TrimmedMean::new(w.f);
        let mut compiled_sim = iabc_sim::Simulation::new(
            &w.graph,
            &inputs,
            faults.clone(),
            &rule,
            Box::new(ConstantAdversary::new(1e9)),
        )
        .map_err(|e| CliError::Run(e.to_string()))?;
        let time_steps = |step: &mut dyn FnMut() -> Result<(), CliError>| -> Result<f64, CliError> {
            for _ in 0..2 {
                step()?; // warmup
            }
            let start = Instant::now();
            for _ in 0..steps {
                step()?;
            }
            Ok(steps as f64 / start.elapsed().as_secs_f64().max(1e-12))
        };
        let compiled = time_steps(&mut || {
            compiled_sim
                .step()
                .map(|_| ())
                .map_err(|e| CliError::Run(e.to_string()))
        })?;

        let slow_rule = ReferenceTrimmedMean::new(w.f);
        let mut reference_sim = ReferenceStepper::new(
            &w.graph,
            &inputs,
            faults,
            &slow_rule,
            Box::new(ConstantAdversary::new(1e9)),
        )
        .map_err(|e| CliError::Run(e.to_string()))?;
        let reference = time_steps(&mut || {
            reference_sim
                .step()
                .map_err(|e| CliError::Run(e.to_string()))
        })?;

        let speedup = compiled / reference;
        report.push_str(&format!(
            "{:<16} {:>4} {:>6} {:>14.1} {:>14.1} {:>7.2}x\n",
            w.name, w.f, steps, compiled, reference, speedup
        ));
        let topology = w.name.split('/').next().unwrap_or(&w.name).to_string();
        fresh.push(BenchEntry {
            topology: topology.clone(),
            n,
            f: w.f,
            speedup,
        });
        entries.push(format!(
            "    {{\"topology\": \"{}\", \"n\": {}, \"f\": {}, \"steps\": {}, \
             \"compiled_steps_per_sec\": {:.3}, \"reference_steps_per_sec\": {:.3}, \
             \"speedup\": {:.3}}}",
            topology, n, w.f, steps, compiled, reference, speedup
        ));
    }

    // Parallel-vs-serial datapoint: the acceptance workload is the dense
    // synchronous engine at n = 10^4 (complete, f = n/30); quick mode
    // scales it down to n = 10^3 for CI smoke runs. Both sides are the
    // SAME compiled engine — only the phase 2 worker count differs — and
    // the trajectories are bit-identical by construction.
    let par_n = if quick { 1_000 } else { 10_000 };
    let par_f = (par_n - 1) / 30;
    let par_steps = steps_override.unwrap_or(if quick { 10 } else { 3 }).max(1);
    let par_graph = iabc_graph::generators::complete(par_n);
    let par_inputs = iabc_bench::hotpath_inputs(par_n);
    let par_faults = NodeSet::from_indices(par_n, iabc_bench::hotpath_fault_nodes(par_n, par_f));
    let rule = TrimmedMean::new(par_f);
    let time_engine = |engine_jobs: usize| -> Result<f64, CliError> {
        let mut sim = iabc_sim::Simulation::new(
            &par_graph,
            &par_inputs,
            par_faults.clone(),
            &rule,
            Box::new(ConstantAdversary::new(1e9)),
        )
        .map_err(|e| CliError::Run(e.to_string()))?
        .with_jobs(engine_jobs);
        sim.step().map_err(|e| CliError::Run(e.to_string()))?; // warmup
        let start = Instant::now();
        for _ in 0..par_steps {
            sim.step().map_err(|e| CliError::Run(e.to_string()))?;
        }
        Ok(par_steps as f64 / start.elapsed().as_secs_f64().max(1e-12))
    };
    let serial_rate = time_engine(1)?;
    let parallel_rate = time_engine(jobs)?;
    let par_speedup = parallel_rate / serial_rate;
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let par_informational = parallel_speedup_is_informational(host_cores, jobs);
    report.push_str(&format!(
        "parallel: complete/n{par_n} f={par_f} — {serial_rate:.1} steps/s serial vs \
         {parallel_rate:.1} steps/s at --jobs {jobs} ({par_speedup:.2}x){}\n",
        if par_informational {
            format!(" [informational: host has {host_cores} core(s) < --jobs {jobs}]")
        } else {
            String::new()
        }
    ));
    let parallel_json = format!(
        "  \"parallel\": {{\"topology\": \"complete\", \"n\": {par_n}, \"f\": {par_f}, \
         \"steps\": {par_steps}, \"jobs\": {jobs},{} \"serial_steps_per_sec\": {serial_rate:.3}, \
         \"parallel_steps_per_sec\": {parallel_rate:.3}, \"speedup\": {par_speedup:.3}}},",
        if par_informational {
            " \"informational\": true,"
        } else {
            ""
        }
    );

    // Pool-vs-per-step-spawn datapoint: at small n / large round counts
    // the old design's per-step scoped-thread spawn dominated the round
    // arithmetic — exactly the regime the persistent executor exists for.
    // Both sides run the SAME engine at the SAME job count; the "respawn"
    // side replaces the pool before every step (`set_jobs` drops and
    // respawns the workers), reproducing the per-step spawn cost.
    // Trajectories are bit-identical by construction, only wall-clock
    // differs.
    // Small n on purpose: at n = 128 one round is tens of microseconds of
    // arithmetic, so the old per-step spawn cost (3 threads at --jobs 4)
    // dominates — the regime the persistent pool exists for.
    let pool_n = if quick { 64 } else { 128 };
    let pool_f = pool_n / 30;
    // Deliberately NOT governed by --steps: the override exists to shrink
    // the heavy grid for smoke runs, but this datapoint's signal IS the
    // per-step cost amortized over a large round count — at 5–20 steps the
    // ~1 ms timing window would be scheduler-noise-dominated and --check
    // would flake. 300 steps at n = 64 still cost only milliseconds.
    let pool_steps = if quick { 300 } else { 1_000 };
    let pool_graph = iabc_graph::generators::complete(pool_n);
    let pool_inputs = iabc_bench::hotpath_inputs(pool_n);
    let pool_faults =
        NodeSet::from_indices(pool_n, iabc_bench::hotpath_fault_nodes(pool_n, pool_f));
    let pool_rule = TrimmedMean::new(pool_f);
    let mut pooled_sim = iabc_sim::Simulation::new(
        &pool_graph,
        &pool_inputs,
        pool_faults.clone(),
        &pool_rule,
        Box::new(ConstantAdversary::new(1e9)),
    )
    .map_err(|e| CliError::Run(e.to_string()))?
    .with_jobs(jobs);
    pooled_sim
        .step()
        .map_err(|e| CliError::Run(e.to_string()))?; // warmup
    let start = Instant::now();
    for _ in 0..pool_steps {
        pooled_sim
            .step()
            .map_err(|e| CliError::Run(e.to_string()))?;
    }
    let pooled_rate = pool_steps as f64 / start.elapsed().as_secs_f64().max(1e-12);
    let mut respawn_sim = iabc_sim::Simulation::new(
        &pool_graph,
        &pool_inputs,
        pool_faults.clone(),
        &pool_rule,
        Box::new(ConstantAdversary::new(1e9)),
    )
    .map_err(|e| CliError::Run(e.to_string()))?
    .with_jobs(jobs);
    respawn_sim
        .step()
        .map_err(|e| CliError::Run(e.to_string()))?; // warmup
    let start = Instant::now();
    for _ in 0..pool_steps {
        respawn_sim.set_jobs(jobs); // drop + respawn the pool: per-step cost
        respawn_sim
            .step()
            .map_err(|e| CliError::Run(e.to_string()))?;
    }
    let respawn_rate = pool_steps as f64 / start.elapsed().as_secs_f64().max(1e-12);
    let pool_speedup = pooled_rate / respawn_rate;
    report.push_str(&format!(
        "pool: complete/n{pool_n} f={pool_f} at --jobs {jobs} — {pooled_rate:.1} steps/s \
         retained pool vs {respawn_rate:.1} steps/s respawning per step ({pool_speedup:.2}x)\n"
    ));
    let pool_json = format!(
        "  \"pool\": {{\"topology\": \"complete\", \"n\": {pool_n}, \"f\": {pool_f}, \
         \"steps\": {pool_steps}, \"jobs\": {jobs}, \"pooled_steps_per_sec\": {pooled_rate:.3}, \
         \"respawn_steps_per_sec\": {respawn_rate:.3}, \"speedup\": {pool_speedup:.3}}},"
    );

    // Deploy datapoint: the runtime's two deployment tiers on the SAME
    // circulant workload at the largest n the threaded tier comfortably
    // hosts. Both sides produce bit-identical trajectories (pinned by the
    // runtime test suite); only the execution substrate differs — n OS
    // threads + channels vs a `--jobs`-thread pool + mailboxes — so the
    // speedup isolates the multiplexing win. Whole-deployment time is
    // measured (construction included): thread spawn IS the threaded
    // tier's cost model.
    let dep_n = if quick { 512 } else { 4_096 };
    let dep_f = 2usize;
    let dep_degree = 8usize;
    let dep_rounds = if quick { 10 } else { 20 };
    let dep_inputs: Vec<f64> = (0..dep_n).map(|i| ((i * 37) % 1000) as f64).collect();
    let dep_faults = NodeSet::from_indices(dep_n, 0..dep_f);
    let dep_graph = generators::circulant(dep_n, 1..=dep_degree);
    let start = Instant::now();
    iabc_runtime::run_threaded(
        &dep_graph,
        &dep_inputs,
        &dep_faults,
        dep_f,
        dep_rounds,
        |_| Box::new(iabc_runtime::ConstantLiar { value: 1e6 }),
    )
    .map_err(|e| CliError::Run(e.to_string()))?;
    let dep_threaded = dep_rounds as f64 / start.elapsed().as_secs_f64().max(1e-12);
    let dep_topology = iabc_graph::CompiledTopology::circulant(dep_n, dep_degree, &dep_faults);
    let time_multiplexed = |topology: &iabc_graph::CompiledTopology,
                            inputs: &[f64],
                            f: usize,
                            rounds: usize|
     -> Result<f64, CliError> {
        let start = Instant::now();
        let mut deployment = iabc_runtime::MultiplexedDeployment::new(
            topology,
            inputs,
            f,
            rounds,
            |_| Box::new(iabc_runtime::ConstantLiar { value: 1e6 }),
            iabc_runtime::LocalTransport,
            iabc_runtime::MultiplexConfig {
                jobs,
                shared_pool: true,
                ..Default::default()
            },
        )
        .map_err(|e| CliError::Run(e.to_string()))?;
        deployment.run().map_err(|e| CliError::Run(e.to_string()))?;
        Ok(rounds as f64 / start.elapsed().as_secs_f64().max(1e-12))
    };
    let dep_multiplexed = time_multiplexed(&dep_topology, &dep_inputs, dep_f, dep_rounds)?;
    let dep_speedup = dep_multiplexed / dep_threaded;
    report.push_str(&format!(
        "deploy: circulant/n{dep_n} degree={dep_degree} f={dep_f} — {dep_threaded:.1} rounds/s \
         threaded ({dep_n} OS threads) vs {dep_multiplexed:.1} rounds/s multiplexed at \
         --jobs {jobs} ({dep_speedup:.2}x)\n"
    ));
    let deploy_json = format!(
        "  \"deploy\": {{\"topology\": \"circulant\", \"n\": {dep_n}, \"f\": {dep_f}, \
         \"degree\": {dep_degree}, \"rounds\": {dep_rounds}, \"jobs\": {jobs}, \
         \"threaded_steps_per_sec\": {dep_threaded:.3}, \
         \"multiplexed_steps_per_sec\": {dep_multiplexed:.3}, \"speedup\": {dep_speedup:.3}}},"
    );

    // Scale datapoint: multiplexed-only, at an n no threaded deployment
    // could host. Marked `"informational": true` so `perf --check`
    // explicitly skips it — an absolute rate is not machine-portable,
    // but the recorded trajectory shows the tier working at scale.
    let scale_n = if quick { 20_000 } else { 100_000 };
    let scale_rounds = 10;
    let scale_inputs: Vec<f64> = (0..scale_n).map(|i| ((i * 37) % 1000) as f64).collect();
    let scale_faults = NodeSet::from_indices(scale_n, 0..dep_f);
    let scale_topology =
        iabc_graph::CompiledTopology::circulant(scale_n, dep_degree, &scale_faults);
    let scale_rate = time_multiplexed(&scale_topology, &scale_inputs, dep_f, scale_rounds)?;
    report.push_str(&format!(
        "deploy scale: circulant/n{scale_n} degree={dep_degree} f={dep_f} multiplexed-only — \
         {scale_rate:.1} rounds/s at --jobs {jobs}\n"
    ));
    let deploy_scale_json = format!(
        "  \"deploy_scale\": {{\"topology\": \"circulant\", \"n\": {scale_n}, \"f\": {dep_f}, \
         \"degree\": {dep_degree}, \"rounds\": {scale_rounds}, \"jobs\": {jobs}, \
         \"informational\": true, \"multiplexed_steps_per_sec\": {scale_rate:.3}}},"
    );

    // Serve-cache datapoint: the serving tier's whole value proposition is
    // that a warm store answers in file-read time what a cold store pays
    // engine time for. Submit the SAME batch of scenario jobs twice
    // against a scratch store via the daemon's own `answer_submit` path
    // (no socket — the store and executor are what's measured): the first
    // pass is all misses, the second all hits, and determinism guarantees
    // the hit payloads are byte-identical to the miss payloads (asserted
    // here, not just trusted).
    // Same n in quick and full mode ON PURPOSE: the warm/cold ratio grows
    // with the cold job's engine time, so comparing a quick-mode run
    // against a full-grid baseline is only meaningful if both measured
    // the same workload. The batch costs a few ms either way.
    let cache_n = 128;
    let cache_f = (cache_n / 30).max(1);
    let cache_batch = 6usize;
    let cache_graph = generators::complete(cache_n);
    let cache_edges = iabc_graph::parse::to_edge_list(&cache_graph);
    let cache_dir = std::env::temp_dir().join(format!("iabc-perf-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache_store = iabc_serve::Store::open(&cache_dir)
        .map_err(|e| CliError::Io(format!("{}: {e}", cache_dir.display())))?;
    let cache_flights = iabc_serve::SingleFlight::new();
    let cache_jobs: Vec<iabc_serve::JobSpec> = (0..cache_batch as u64)
        .map(|seed| {
            iabc_serve::JobSpec::Scenario(iabc_serve::ScenarioSpec {
                graph: cache_edges.clone(),
                faulty: (0..cache_f).collect(),
                f: cache_f,
                rule: "trimmed-mean".into(),
                quantum: None,
                adversary: "constant".into(),
                seed,
                inputs: iabc_serve::InputSpec::Seeded(seed),
                epsilon: 1e-9,
                max_rounds: 400,
                engine: iabc_serve::EngineSpec::Synchronous,
            })
        })
        .collect();
    let submit_batch = |store: &iabc_serve::Store| -> Result<(f64, Vec<Vec<u8>>), CliError> {
        let start = Instant::now();
        let mut payloads = Vec::with_capacity(cache_jobs.len());
        for job in &cache_jobs {
            let (response, _) =
                iabc_serve::server::answer_submit(store, &cache_flights, job, jobs, |_, _, _| {})
                    .map_err(|e| CliError::Run(e.to_string()))?;
            let iabc_serve::protocol::Response::Result { payload, .. } = response else {
                return Err(CliError::Run("submit did not return a result".into()));
            };
            payloads.push(payload);
        }
        Ok((
            cache_jobs.len() as f64 / start.elapsed().as_secs_f64().max(1e-12),
            payloads,
        ))
    };
    let (cold_rate, cold_payloads) = submit_batch(&cache_store)?;
    let (warm_rate, warm_payloads) = submit_batch(&cache_store)?;
    if cold_payloads != warm_payloads {
        return Err(CliError::Run(
            "serve cache datapoint: warm payloads differ from cold payloads".into(),
        ));
    }
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache_speedup = warm_rate / cold_rate;
    report.push_str(&format!(
        "serve cache: complete/n{cache_n} f={cache_f} × {cache_batch} scenario jobs — \
         {cold_rate:.1} jobs/s cold (all misses) vs {warm_rate:.1} jobs/s warm (all hits, \
         byte-identical) ({cache_speedup:.2}x)\n"
    ));
    let serve_cache_json = format!(
        "  \"serve_cache\": {{\"topology\": \"complete\", \"n\": {cache_n}, \"f\": {cache_f}, \
         \"batch\": {cache_batch}, \"jobs\": {jobs}, \"cold_jobs_per_sec\": {cold_rate:.3}, \
         \"warm_hits_per_sec\": {warm_rate:.3}, \"speedup\": {cache_speedup:.3}}},"
    );

    // Serve-concurrent datapoint (enforced): the concurrent daemon's
    // defining property — hit clients keep being answered from the
    // store's read lock while one expensive miss occupies the compute
    // permit. Both sides run the REAL daemon over loopback sockets with
    // identical workloads; the only difference is `--max-conn` (1 = the
    // old sequential accept loop, where every hit queues behind the
    // in-flight miss connection). Every hit payload is asserted
    // byte-identical to the store's object (fetched via `query`), not
    // just trusted.
    let sc_clients = 4usize;
    let sc_hits_per_client = 10usize;
    // Epsilon 0 keeps the miss stepping to the round cap: a fixed, slow
    // workload that reliably outlasts the hit barrage (the barrage is
    // ~0.1 s of small frames; the cap is sized so the miss runs for
    // seconds even on a fast multicore host).
    let sc_miss_rounds = 40_000usize;
    let sc_hit_job = iabc_serve::JobSpec::Scenario(iabc_serve::ScenarioSpec {
        graph: cache_edges.clone(),
        faulty: (0..cache_f).collect(),
        f: cache_f,
        rule: "trimmed-mean".into(),
        quantum: None,
        adversary: "constant".into(),
        seed: 101,
        inputs: iabc_serve::InputSpec::Seeded(101),
        epsilon: 1e-9,
        max_rounds: 400,
        engine: iabc_serve::EngineSpec::Synchronous,
    });
    // The miss must genuinely run for seconds: on a complete graph every
    // adversary converges to exact equality in ~a dozen rounds, so the
    // slow job is a sparse chord graph (information travels one hop per
    // round) under the seeded random adversary (keeps perturbing values,
    // so epsilon 0 steps to the round cap).
    let sc_miss_n = 512usize;
    let sc_miss_job = iabc_serve::JobSpec::Scenario(iabc_serve::ScenarioSpec {
        graph: iabc_graph::parse::to_edge_list(&generators::chord(sc_miss_n, 4)),
        faulty: vec![0],
        f: 1,
        rule: "trimmed-mean".into(),
        quantum: None,
        adversary: "random".into(),
        seed: 102,
        inputs: iabc_serve::InputSpec::Seeded(102),
        epsilon: 0.0,
        max_rounds: sc_miss_rounds,
        engine: iabc_serve::EngineSpec::Synchronous,
    });
    let run_tier = |max_conn: usize,
                    compact: bool|
     -> Result<(f64, Option<iabc_serve::CompactionStats>), CliError> {
        let dir = std::env::temp_dir().join(format!(
            "iabc-perf-serve-conc{max_conn}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = iabc_serve::ServerConfig {
            addr: "127.0.0.1:0".into(),
            jobs,
            store_dir: dir.clone(),
            accept_limit: None,
            max_connections: max_conn,
            max_store_bytes: None,
        };
        let mut server =
            iabc_serve::Server::bind(&config).map_err(|e| CliError::Run(e.to_string()))?;
        let addr = server
            .local_addr()
            .map_err(|e| CliError::Run(e.to_string()))?
            .to_string();
        let daemon = std::thread::spawn(move || server.run());
        let err = |e: iabc_serve::ServeError| CliError::Run(e.to_string());
        // Warm the hit job (one journaled miss) and pin its payload.
        let warm = iabc_serve::submit(&addr, &sc_hit_job).map_err(err)?;
        // The expensive miss starts first; the sleep lets it take the
        // compute permit before the hit clients arrive.
        let miss_addr = addr.clone();
        let miss_job = sc_miss_job.clone();
        let miss = std::thread::spawn(move || iabc_serve::submit(&miss_addr, &miss_job));
        std::thread::sleep(std::time::Duration::from_millis(30));
        let start = Instant::now();
        let clients: Vec<_> = (0..sc_clients)
            .map(|_| {
                let addr = addr.clone();
                let job = sc_hit_job.clone();
                std::thread::spawn(move || -> Result<Vec<Vec<u8>>, iabc_serve::ServeError> {
                    (0..sc_hits_per_client)
                        .map(|_| iabc_serve::submit(&addr, &job).map(|o| o.payload))
                        .collect()
                })
            })
            .collect();
        let mut hit_payloads = Vec::new();
        for c in clients {
            hit_payloads.extend(c.join().expect("hit client panicked").map_err(err)?);
        }
        let elapsed = start.elapsed().as_secs_f64();
        miss.join().expect("miss client panicked").map_err(err)?;
        let stored = iabc_serve::query(&addr, warm.key)
            .map_err(err)?
            .ok_or_else(|| CliError::Run("serve concurrent: warmed key absent".into()))?;
        if stored != warm.payload || hit_payloads.iter().any(|p| *p != stored) {
            return Err(CliError::Run(
                "serve concurrent datapoint: hit payloads are not byte-identical to the store"
                    .into(),
            ));
        }
        let stats = if compact {
            Some(iabc_serve::compact(&addr).map_err(err)?)
        } else {
            None
        };
        iabc_serve::shutdown(&addr).map_err(err)?;
        let _ = daemon.join();
        let _ = std::fs::remove_dir_all(&dir);
        Ok((
            (sc_clients * sc_hits_per_client) as f64 / elapsed.max(1e-12),
            stats,
        ))
    };
    let (sc_seq_rate, _) = run_tier(1, false)?;
    let (sc_conc_rate, sc_compaction) = run_tier(sc_clients + 1, true)?;
    let sc_speedup = sc_conc_rate / sc_seq_rate;
    let sc_total_hits = sc_clients * sc_hits_per_client;
    report.push_str(&format!(
        "serve concurrent: {sc_clients} hit clients x {sc_hits_per_client} \
         (complete/n{cache_n}) behind 1 slow miss (chord/n{sc_miss_n}) — \
         {sc_seq_rate:.0} hits/s sequential (--max-conn 1) vs {sc_conc_rate:.0} hits/s \
         concurrent, byte-identical payloads ({sc_speedup:.2}x)\n"
    ));
    let serve_concurrent_json = format!(
        "  \"serve_concurrent\": {{\"topology\": \"complete\", \"n\": {cache_n}, \
         \"f\": {cache_f}, \"clients\": {sc_clients}, \"hits\": {sc_total_hits}, \
         \"jobs\": {jobs}, \"sequential_hits_per_sec\": {sc_seq_rate:.3}, \
         \"concurrent_hits_per_sec\": {sc_conc_rate:.3}, \"speedup\": {sc_speedup:.3}}},"
    );

    // Compaction-ratio line (informational): the concurrent run's
    // journal — two misses plus every journaled hit — rewritten down to
    // one record per live object. The ratio tracks how much replay work
    // a daemon restart saves; it is recorded, never regression-checked
    // (it measures workload shape, not implementation speed).
    let sc_stats = sc_compaction
        .ok_or_else(|| CliError::Run("serve concurrent: compaction stats missing".into()))?;
    let sc_ratio = sc_stats.records_before as f64 / (sc_stats.records_after as f64).max(1.0);
    report.push_str(&format!(
        "serve compaction (informational): {} -> {} journal record(s), {} -> {} byte(s) \
         ({sc_ratio:.1}x smaller)\n",
        sc_stats.records_before,
        sc_stats.records_after,
        sc_stats.bytes_before,
        sc_stats.bytes_after
    ));
    let serve_compaction_json = format!(
        "  \"serve_compaction\": {{\"topology\": \"complete\", \"n\": {cache_n}, \
         \"f\": {cache_f}, \"jobs\": {jobs}, \"informational\": true, \
         \"records_before\": {}, \"records_after\": {}, \"journal_bytes_before\": {}, \
         \"journal_bytes_after\": {}, \"compaction_ratio\": {sc_ratio:.3}}},",
        sc_stats.records_before,
        sc_stats.records_after,
        sc_stats.bytes_before,
        sc_stats.bytes_after
    );

    // FastMath datapoint (enforced): the **columnar** sort — the vertical
    // compare-exchange network across replica lanes, running the merge
    // networks at in-degree 64 — against per-lane exact sorting
    // (`sort_unstable_by(total_cmp)`, what the exact tier's trim kernel
    // does) on the same slot-major data. Sorting dominates the trim
    // kernel's cost, and the lane batching is where the tier actually
    // wins; the scalar one-row faceoff below is recorded informationally.
    let fm_lanes = 32usize;
    let fm_len = 64usize; // in-degree per row: on the merge-network path
    let fm_f = 2usize;
    let fm_blocks = if quick { 200 } else { 800 };
    let fm_reps = if quick { 10 } else { 25 };
    let fm_columns: Vec<f64> = (0..fm_blocks * fm_len * fm_lanes)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 * 1e-12)
        .collect();
    let col_updates = (fm_reps * fm_blocks * fm_lanes) as f64;
    let time_columnar = || -> f64 {
        let mut block = vec![0.0f64; fm_len * fm_lanes];
        // One untimed pass warms caches and the CPU feature detection.
        for src in fm_columns.chunks_exact(fm_len * fm_lanes) {
            block.copy_from_slice(src);
            iabc_core::fastmath::sort_columns_total_fast(&mut block, fm_lanes);
            std::hint::black_box(&block);
        }
        let start = Instant::now();
        for _ in 0..fm_reps {
            for src in fm_columns.chunks_exact(fm_len * fm_lanes) {
                block.copy_from_slice(src);
                iabc_core::fastmath::sort_columns_total_fast(&mut block, fm_lanes);
                std::hint::black_box(&block);
            }
        }
        col_updates / start.elapsed().as_secs_f64().max(1e-12)
    };
    let time_exact_lanes = || -> f64 {
        let mut rowbuf = vec![0.0f64; fm_len];
        let gather = |src: &[f64], lane: usize, rowbuf: &mut [f64]| {
            for (s, slot) in rowbuf.iter_mut().enumerate() {
                *slot = src[s * fm_lanes + lane];
            }
        };
        for src in fm_columns.chunks_exact(fm_len * fm_lanes) {
            for lane in 0..fm_lanes {
                gather(src, lane, &mut rowbuf);
                rowbuf.sort_unstable_by(f64::total_cmp);
                std::hint::black_box(&rowbuf);
            }
        }
        let start = Instant::now();
        for _ in 0..fm_reps {
            for src in fm_columns.chunks_exact(fm_len * fm_lanes) {
                for lane in 0..fm_lanes {
                    gather(src, lane, &mut rowbuf);
                    rowbuf.sort_unstable_by(f64::total_cmp);
                    std::hint::black_box(&rowbuf);
                }
            }
        }
        col_updates / start.elapsed().as_secs_f64().max(1e-12)
    };
    let exact_rate = time_exact_lanes();
    let fast_rate = time_columnar();
    let fm_speedup = fast_rate / exact_rate;
    report.push_str(&format!(
        "fastmath: {fm_blocks} blocks x len {fm_len} x {fm_lanes} lanes — {exact_rate:.0} \
         sorts/s exact per-lane vs {fast_rate:.0} sorts/s columnar merge network \
         ({fm_speedup:.2}x)\n"
    ));
    let fastmath_json = format!(
        "  \"fastmath\": {{\"topology\": \"columns\", \"n\": {fm_len}, \"f\": {fm_f}, \
         \"lanes\": {fm_lanes}, \"blocks\": {fm_blocks}, \"jobs\": {jobs}, \
         \"exact_updates_per_sec\": {exact_rate:.3}, \
         \"fast_updates_per_sec\": {fast_rate:.3}, \"speedup\": {fm_speedup:.3}}},"
    );

    // Scalar kernel faceoff (informational): `trim_kernel_fast` vs the
    // exact `rules::trim_kernel` one row at a time — the honest ~1x
    // number from before the columnar tier existed. It records the
    // trajectory but is never regression-checked: a one-row scalar sort
    // is not where this tier claims a win.
    let fms_rows = if quick { 2_000 } else { 8_000 };
    let fms_len = 16usize;
    let fms_reps = if quick { 20 } else { 50 };
    let fms_values: Vec<f64> = (0..fms_rows * fms_len)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 * 1e-12)
        .collect();
    let time_kernel = |kernel: &dyn Fn(f64, &mut [f64], usize) -> f64| -> f64 {
        let mut rowbuf = vec![0.0f64; fms_len];
        let mut sink = 0.0f64;
        for row in fms_values.chunks_exact(fms_len) {
            rowbuf.copy_from_slice(row);
            sink += kernel(rowbuf[0], &mut rowbuf, fm_f);
        }
        let start = Instant::now();
        for _ in 0..fms_reps {
            for row in fms_values.chunks_exact(fms_len) {
                rowbuf.copy_from_slice(row);
                sink += kernel(rowbuf[0], &mut rowbuf, fm_f);
            }
        }
        std::hint::black_box(sink);
        (fms_reps * fms_rows) as f64 / start.elapsed().as_secs_f64().max(1e-12)
    };
    let fms_exact_rate = time_kernel(&iabc_core::rules::trim_kernel);
    let fms_fast_rate = time_kernel(&iabc_core::fastmath::trim_kernel_fast);
    let fms_speedup = fms_fast_rate / fms_exact_rate;
    report.push_str(&format!(
        "fastmath scalar (informational): {fms_rows} rows x len {fms_len} f={fm_f} — \
         {fms_exact_rate:.0} updates/s exact kernel vs {fms_fast_rate:.0} updates/s scalar \
         FastMath ({fms_speedup:.2}x)\n"
    ));
    let fastmath_scalar_json = format!(
        "  \"fastmath_scalar\": {{\"topology\": \"rows\", \"n\": {fms_len}, \"f\": {fm_f}, \
         \"rows\": {fms_rows}, \"jobs\": {jobs}, \"informational\": true, \
         \"exact_updates_per_sec\": {fms_exact_rate:.3}, \
         \"fast_updates_per_sec\": {fms_fast_rate:.3}, \"speedup\": {fms_speedup:.3}}},"
    );

    // Replica-batch datapoint: R same-topology Monte-Carlo replicas
    // advanced by ONE replica-major SoA engine (a single CSR row walk
    // feeds all R lanes) versus R independently dispatched exact engines
    // — construction included on both sides, because amortizing per-run
    // setup across the batch is half the point. Both tiers run serially;
    // the speedup isolates batching, not threading.
    // Circulant with in-degree 16: rows fit the vertical sorting
    // network (in-degree <= 32), which is where batching pays — a
    // deployment-shaped sparse topology, not a clique.
    let rb_replicas = 32usize;
    let rb_n = if quick { 256 } else { 512 };
    let rb_f = 2usize;
    let rb_rounds = if quick { 20 } else { 40 };
    let rb_graph = generators::circulant(rb_n, 1..=16);
    let rb_faults = NodeSet::from_indices(rb_n, iabc_bench::hotpath_fault_nodes(rb_n, rb_f));
    let rb_inputs: Vec<f64> = (0..rb_n * rb_replicas)
        .map(|i| ((i * 37) % 1000) as f64)
        .collect();
    // Best-of-reps on both sides: each side's window is a handful of
    // milliseconds, and single-shot timings on a shared single-core box
    // are too noisy for a checked ratio.
    let rb_reps = 3;
    let mut batched_secs = f64::INFINITY;
    for _ in 0..rb_reps {
        let start = Instant::now();
        let mut batch = iabc_sim::fastmath::BatchedSimulation::new(
            &rb_graph,
            &rb_inputs,
            rb_faults.clone(),
            iabc_core::fastmath::FastRule::TrimmedMean(rb_f),
            rb_replicas,
            |_| Box::new(ConstantAdversary::new(1e9)),
        )
        .map_err(|e| CliError::Run(e.to_string()))?;
        for _ in 0..rb_rounds {
            batch.step().map_err(|e| CliError::Run(e.to_string()))?;
        }
        batched_secs = batched_secs.min(start.elapsed().as_secs_f64());
    }
    let batched_rate = (rb_rounds * rb_replicas) as f64 / batched_secs.max(1e-12);
    let mut dispatch_secs = f64::INFINITY;
    for _ in 0..rb_reps {
        let start = Instant::now();
        for r in 0..rb_replicas {
            let rule = TrimmedMean::new(rb_f);
            let replica_inputs: Vec<f64> =
                (0..rb_n).map(|i| rb_inputs[i * rb_replicas + r]).collect();
            let mut sim = iabc_sim::Simulation::new(
                &rb_graph,
                &replica_inputs,
                rb_faults.clone(),
                &rule,
                Box::new(ConstantAdversary::new(1e9)),
            )
            .map_err(|e| CliError::Run(e.to_string()))?;
            for _ in 0..rb_rounds {
                sim.step().map_err(|e| CliError::Run(e.to_string()))?;
            }
        }
        dispatch_secs = dispatch_secs.min(start.elapsed().as_secs_f64());
    }
    let dispatch_rate = (rb_rounds * rb_replicas) as f64 / dispatch_secs.max(1e-12);
    let rb_speedup = batched_rate / dispatch_rate;
    report.push_str(&format!(
        "replica batch: circulant/n{rb_n} f={rb_f} x {rb_replicas} replicas, {rb_rounds} rounds — \
         {dispatch_rate:.0} replica-steps/s dispatched per replica vs {batched_rate:.0} \
         replica-steps/s batched SoA ({rb_speedup:.2}x)\n"
    ));
    let replica_batch_json = format!(
        "  \"replica_batch\": {{\"topology\": \"circulant\", \"n\": {rb_n}, \"f\": {rb_f}, \
         \"replicas\": {rb_replicas}, \"rounds\": {rb_rounds}, \"jobs\": {jobs}, \
         \"dispatch_replica_steps_per_sec\": {dispatch_rate:.3}, \
         \"batched_replica_steps_per_sec\": {batched_rate:.3}, \"speedup\": {rb_speedup:.3}}},"
    );

    // Batched-sweep datapoint: a same-topology census slice of 32 cells
    // (one dense complete graph, differing only in their coordinate
    // seeds) executed per-cell-dispatched vs grouped into ONE width-32
    // replica batch (`sweep … --batch`), both on one worker. The results
    // are asserted identical — the ratio times the grouping alone. The
    // in-degree puts every row on the merge-network columnar path, and
    // the constant adversary family activates the shared-plan fast path,
    // exactly as a real `--batch` census run would.
    let bs_cells_count = 32usize;
    let bs_n = if quick { 48 } else { 96 };
    let bs_f = bs_n / 30;
    let bs_rounds = if quick { 8 } else { 15 };
    let bs_spec = iabc_analysis::batched::SimCellSpec {
        topology: iabc_analysis::batched::Topology::Complete(bs_n),
        f: bs_f,
        rule: iabc_core::fastmath::FastRule::TrimmedMean(bs_f),
        adversary: iabc_analysis::batched::AdversarySpec::Constant(1e9),
        // Epsilon 0 keeps every cell stepping to the round cap, so both
        // sides execute the same fixed amount of work and the timing
        // window is stable.
        epsilon: 0.0,
        max_rounds: bs_rounds,
    };
    let bs_cells: Vec<iabc_analysis::batched::SimCell> = (0..bs_cells_count)
        .map(|i| iabc_analysis::batched::SimCell {
            coords: sweep::CellCoords::new("bench-batched-sweep").with("i", i),
            spec: bs_spec.clone(),
        })
        .collect();
    let bs_reps = 3;
    let mut bs_dispatch_secs = f64::INFINITY;
    let mut bs_batched_secs = f64::INFINITY;
    let mut bs_reference = None;
    for _ in 0..bs_reps {
        let start = Instant::now();
        let dispatched = iabc_analysis::batched::run_sim_cells(&bs_cells, 1, false);
        bs_dispatch_secs = bs_dispatch_secs.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let grouped = iabc_analysis::batched::run_sim_cells(&bs_cells, 1, true);
        bs_batched_secs = bs_batched_secs.min(start.elapsed().as_secs_f64());
        let dispatched: Vec<_> = dispatched.into_iter().map(|o| o.value).collect();
        let grouped: Vec<_> = grouped.into_iter().map(|o| o.value).collect();
        if dispatched != grouped {
            return Err(CliError::Run(
                "batched sweep datapoint: grouped results differ from dispatched".into(),
            ));
        }
        bs_reference = Some(dispatched);
    }
    std::hint::black_box(bs_reference);
    let bs_dispatch_rate = bs_cells_count as f64 / bs_dispatch_secs.max(1e-12);
    let bs_batched_rate = bs_cells_count as f64 / bs_batched_secs.max(1e-12);
    let bs_speedup = bs_batched_rate / bs_dispatch_rate;
    report.push_str(&format!(
        "batched sweep: complete/n{bs_n} f={bs_f} x {bs_cells_count} census cells, \
         {bs_rounds} rounds — {bs_dispatch_rate:.1} cells/s dispatched per cell vs \
         {bs_batched_rate:.1} cells/s grouped --batch, identical tables ({bs_speedup:.2}x)\n"
    ));
    let batched_sweep_json = format!(
        "  \"batched_sweep\": {{\"topology\": \"complete\", \"n\": {bs_n}, \"f\": {bs_f}, \
         \"cells\": {bs_cells_count}, \"rounds\": {bs_rounds}, \"jobs\": {jobs}, \
         \"dispatch_cells_per_sec\": {bs_dispatch_rate:.3}, \
         \"batched_cells_per_sec\": {bs_batched_rate:.3}, \"speedup\": {bs_speedup:.3}}},"
    );

    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"mode\": \"{}\",\n  \"unit\": \"steps_per_sec\",\n  \
         \"adversary\": \"constant\",\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        parallel_json,
        pool_json,
        deploy_json,
        deploy_scale_json,
        serve_cache_json,
        serve_concurrent_json,
        serve_compaction_json,
        fastmath_json,
        fastmath_scalar_json,
        replica_batch_json,
        batched_sweep_json,
        entries.join(",\n")
    );

    if let Some(baseline) = baseline {
        let mut regressions = Vec::new();
        let mut compared = 0usize;
        for e in &fresh {
            let Some(base) = baseline
                .results
                .iter()
                .find(|b| b.topology == e.topology && b.n == e.n && b.f == e.f)
            else {
                continue;
            };
            compared += 1;
            if e.speedup < base.speedup * (1.0 - tolerance) {
                regressions.push(format!(
                    "{}/n{} f={}: speedup {:.2}x vs baseline {:.2}x (tolerance {:.0}%)",
                    e.topology,
                    e.n,
                    e.f,
                    e.speedup,
                    base.speedup,
                    tolerance * 100.0
                ));
            }
        }
        // The parallel datapoint is compared on the job count alone: the
        // committed baseline records the full-grid n = 10^4 workload while
        // CI's quick mode measures n = 10^3, and requiring equal n would
        // silently skip the one trajectory this guard exists for. Speedup
        // (parallel/serial on the SAME engine and machine) is the
        // scale-portable quantity; the generous tolerance absorbs the
        // residual n-dependence of scheduling overhead.
        // On a host with fewer cores than --jobs the fresh measurement is
        // scheduler noise (see `parallel_speedup_is_informational`), so
        // no comparison is made even if the baseline recorded one.
        if let Some((base_n, base_jobs, base_speedup)) = baseline.parallel {
            if base_jobs == jobs && !par_informational {
                compared += 1;
                if par_speedup < base_speedup * (1.0 - tolerance) {
                    regressions.push(format!(
                        "parallel complete/n{par_n} --jobs {jobs}: speedup {par_speedup:.2}x \
                         vs baseline {base_speedup:.2}x at n={base_n} (tolerance {:.0}%)",
                        tolerance * 100.0
                    ));
                }
            }
        }
        // The pool datapoint is compared like the parallel one — on the
        // job count alone (quick mode measures a smaller n than the
        // committed full grid), speedup being the scale-portable quantity.
        if let Some((base_n, base_jobs, base_speedup)) = baseline.pool {
            if base_jobs == jobs {
                compared += 1;
                if pool_speedup < base_speedup * (1.0 - tolerance) {
                    regressions.push(format!(
                        "pool complete/n{pool_n} --jobs {jobs}: pool-vs-respawn speedup \
                         {pool_speedup:.2}x vs baseline {base_speedup:.2}x at n={base_n} \
                         (tolerance {:.0}%)",
                        tolerance * 100.0
                    ));
                }
            }
        }
        // The deploy datapoint: multiplexed-vs-threaded speedup on the
        // circulant workload, again compared on the job count alone. The
        // scale datapoint carries no speedup and is never checked.
        if let Some((base_n, base_jobs, base_speedup)) = baseline.deploy {
            if base_jobs == jobs {
                compared += 1;
                if dep_speedup < base_speedup * (1.0 - tolerance) {
                    regressions.push(format!(
                        "deploy circulant/n{dep_n} --jobs {jobs}: multiplexed-vs-threaded \
                         speedup {dep_speedup:.2}x vs baseline {base_speedup:.2}x at \
                         n={base_n} (tolerance {:.0}%)",
                        tolerance * 100.0
                    ));
                }
            }
        }
        // The serve-cache datapoint: warm-vs-cold submission speedup on
        // the scratch store, compared on the job count alone like the
        // other pool-dependent datapoints. The expected margin is an
        // order of magnitude (file read vs engine run), so the default
        // tolerance has plenty of headroom.
        if let Some((base_n, base_jobs, base_speedup)) = baseline.serve_cache {
            if base_jobs == jobs {
                compared += 1;
                if cache_speedup < base_speedup * (1.0 - tolerance) {
                    regressions.push(format!(
                        "serve_cache complete/n{cache_n} --jobs {jobs}: warm-vs-cold speedup \
                         {cache_speedup:.2}x vs baseline {base_speedup:.2}x at n={base_n} \
                         (tolerance {:.0}%)",
                        tolerance * 100.0
                    ));
                }
            }
        }
        // The serve-concurrent datapoint: concurrent-vs-sequential hit
        // throughput behind one in-flight miss, compared on the job count
        // alone. The expected margin is large (hits answer from the read
        // lock while the sequential tier queues them all behind the
        // miss), so the default tolerance has plenty of headroom.
        if let Some((base_n, base_jobs, base_speedup)) = baseline.serve_concurrent {
            if base_jobs == jobs {
                compared += 1;
                if sc_speedup < base_speedup * (1.0 - tolerance) {
                    regressions.push(format!(
                        "serve_concurrent complete/n{cache_n} --jobs {jobs}: \
                         concurrent-vs-sequential speedup {sc_speedup:.2}x vs baseline \
                         {base_speedup:.2}x at n={base_n} (tolerance {:.0}%)",
                        tolerance * 100.0
                    ));
                }
            }
        }
        // The FastMath kernel datapoint: fast-vs-exact kernel speedup on
        // the same row set — same workload in quick and full mode, so it
        // is compared whenever the baseline recorded it.
        if let Some((base_len, base_jobs, base_speedup)) = baseline.fastmath {
            if base_jobs == jobs {
                compared += 1;
                if fm_speedup < base_speedup * (1.0 - tolerance) {
                    regressions.push(format!(
                        "fastmath rows/len{fm_len}: kernel speedup {fm_speedup:.2}x vs \
                         baseline {base_speedup:.2}x at len={base_len} (tolerance {:.0}%)",
                        tolerance * 100.0
                    ));
                }
            }
        }
        // The replica-batch datapoint: batched-SoA-vs-dispatched speedup,
        // compared on the job count alone like the other engine-level
        // datapoints (quick mode runs a smaller n).
        if let Some((base_n, base_jobs, base_speedup)) = baseline.replica_batch {
            if base_jobs == jobs {
                compared += 1;
                if rb_speedup < base_speedup * (1.0 - tolerance) {
                    regressions.push(format!(
                        "replica_batch circulant/n{rb_n} x{rb_replicas}: batched-vs-dispatch \
                         speedup {rb_speedup:.2}x vs baseline {base_speedup:.2}x at \
                         n={base_n} (tolerance {:.0}%)",
                        tolerance * 100.0
                    ));
                }
            }
        }
        // The batched-sweep datapoint: grouped-vs-dispatched census-slice
        // speedup (both sides on one worker, so it is compared regardless
        // of --jobs; quick mode runs a smaller n).
        if let Some((base_n, _base_jobs, base_speedup)) = baseline.batched_sweep {
            compared += 1;
            if bs_speedup < base_speedup * (1.0 - tolerance) {
                regressions.push(format!(
                    "batched_sweep complete/n{bs_n} x{bs_cells_count}: grouped-vs-dispatch \
                     speedup {bs_speedup:.2}x vs baseline {base_speedup:.2}x at \
                     n={base_n} (tolerance {:.0}%)",
                    tolerance * 100.0
                ));
            }
        }
        if !regressions.is_empty() {
            return Err(CliError::Run(format!(
                "perf regression against {baseline_path} ({compared} workloads compared):\n  {}",
                regressions.join("\n  ")
            )));
        }
        report.push_str(&format!(
            "perf check PASSED: {compared} workload(s) within {:.0}% of {baseline_path}\n",
            tolerance * 100.0
        ));
    }

    std::fs::write(&out_path, &json).map_err(|e| CliError::Io(format!("{out_path}: {e}")))?;
    report.push_str(&format!("wrote {out_path}\n"));
    Ok(report)
}

/// One parsed baseline workload (the fields `perf --check` compares).
struct BenchEntry {
    topology: String,
    n: usize,
    f: usize,
    speedup: f64,
}

/// A parsed `BENCH_hotpath.json` baseline.
struct BenchBaseline {
    results: Vec<BenchEntry>,
    /// `(n, jobs, speedup)` of the parallel datapoint, if recorded.
    parallel: Option<(usize, usize, f64)>,
    /// `(n, jobs, speedup)` of the pool-vs-respawn datapoint, if recorded.
    pool: Option<(usize, usize, f64)>,
    /// `(n, jobs, speedup)` of the multiplexed-vs-threaded deploy
    /// datapoint, if recorded.
    deploy: Option<(usize, usize, f64)>,
    /// `(n, jobs, speedup)` of the serve-cache warm-vs-cold datapoint, if
    /// recorded.
    serve_cache: Option<(usize, usize, f64)>,
    /// `(n, jobs, speedup)` of the serve concurrent-vs-sequential hit
    /// throughput datapoint, if recorded.
    serve_concurrent: Option<(usize, usize, f64)>,
    /// `(n, jobs, speedup)` of the FastMath-vs-exact kernel datapoint, if
    /// recorded (`n` here is the row length).
    fastmath: Option<(usize, usize, f64)>,
    /// `(n, jobs, speedup)` of the batched-vs-dispatched replica
    /// datapoint, if recorded.
    replica_batch: Option<(usize, usize, f64)>,
    /// `(n, jobs, speedup)` of the grouped-vs-dispatched sweep-slice
    /// datapoint, if recorded.
    batched_sweep: Option<(usize, usize, f64)>,
}

/// True when the host cannot actually run `jobs` workers concurrently:
/// the parallel-vs-serial datapoint then measures scheduler timeslicing,
/// not parallelism (≈1.00x of pure noise on a single-core container), so
/// `perf` records it as `"informational": true` and `--check` neither
/// emits nor compares it as an enforced datapoint.
fn parallel_speedup_is_informational(host_cores: usize, jobs: usize) -> bool {
    host_cores < jobs
}

/// Extracts the value of `"key": value` from a single JSON object line
/// (the self-emitted `BENCH_hotpath.json` is line-oriented; this avoids a
/// JSON dependency the container does not have).
fn json_field<'s>(line: &'s str, key: &str) -> Option<&'s str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses the entries of a self-emitted `BENCH_hotpath.json`. Unparsable
/// lines are skipped — the checker then simply has fewer workloads to
/// compare, which it reports.
fn parse_bench_json(text: &str) -> BenchBaseline {
    let mut results = Vec::new();
    let mut parallel = None;
    let mut pool = None;
    let mut deploy = None;
    let mut serve_cache = None;
    let mut serve_concurrent = None;
    let mut fastmath = None;
    let mut replica_batch = None;
    let mut batched_sweep = None;
    for line in text.lines() {
        // Datapoints marked `"informational": true` record a trajectory
        // (e.g. an absolute rate at scale) but are never regression-checked
        // — the explicit opt-out, rather than relying on a line happening
        // to lack some checked field.
        if json_field(line, "informational") == Some("true") {
            continue;
        }
        let (Some(topology), Some(n), Some(f), Some(speedup)) = (
            json_field(line, "topology"),
            json_field(line, "n").and_then(|v| v.parse::<usize>().ok()),
            json_field(line, "f").and_then(|v| v.parse::<usize>().ok()),
            json_field(line, "speedup").and_then(|v| v.parse::<f64>().ok()),
        ) else {
            continue;
        };
        if let Some(jobs) = json_field(line, "jobs").and_then(|v| v.parse::<usize>().ok()) {
            // The special datapoints all record a job count; each is
            // recognized by a field only it emits.
            if json_field(line, "pooled_steps_per_sec").is_some() {
                pool = Some((n, jobs, speedup));
            } else if json_field(line, "threaded_steps_per_sec").is_some() {
                deploy = Some((n, jobs, speedup));
            } else if json_field(line, "warm_hits_per_sec").is_some() {
                serve_cache = Some((n, jobs, speedup));
            } else if json_field(line, "concurrent_hits_per_sec").is_some() {
                serve_concurrent = Some((n, jobs, speedup));
            } else if json_field(line, "fast_updates_per_sec").is_some() {
                fastmath = Some((n, jobs, speedup));
            } else if json_field(line, "batched_replica_steps_per_sec").is_some() {
                replica_batch = Some((n, jobs, speedup));
            } else if json_field(line, "batched_cells_per_sec").is_some() {
                batched_sweep = Some((n, jobs, speedup));
            } else {
                parallel = Some((n, jobs, speedup));
            }
        } else {
            results.push(BenchEntry {
                topology: topology.to_string(),
                n,
                f,
                speedup,
            });
        }
    }
    BenchBaseline {
        results,
        parallel,
        pool,
        deploy,
        serve_cache,
        serve_concurrent,
        fastmath,
        replica_batch,
        batched_sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    fn write_graph(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("iabc-cli-test-{name}.txt"));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn deploy_reports_both_modes_and_identical_checksums() {
        let threaded = run(&argv(&[
            "deploy", "--nodes", "48", "--mode", "threaded", "--f", "2", "--degree", "8",
            "--rounds", "15",
        ]))
        .unwrap();
        let multiplexed = run(&argv(&[
            "deploy",
            "--nodes",
            "48",
            "--mode",
            "multiplexed",
            "--jobs",
            "3",
            "--f",
            "2",
            "--degree",
            "8",
            "--rounds",
            "15",
        ]))
        .unwrap();
        assert!(threaded.contains("mode=threaded"), "{threaded}");
        assert!(
            threaded.contains("os threads: 48 (one per node)"),
            "{threaded}"
        );
        assert!(multiplexed.contains("mode=multiplexed"), "{multiplexed}");
        // The worker count belongs to the process-level shared pool, whose
        // size is set by whichever test (or daemon) touched it first — so
        // assert the shape of the line, not an exact count.
        assert!(
            multiplexed.contains("pooled workers (shared process pool; --jobs 3)"),
            "{multiplexed}"
        );
        let checksum = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("state checksum:"))
                .map(str::to_owned)
                .unwrap()
        };
        assert_eq!(checksum(&threaded), checksum(&multiplexed));
    }

    #[test]
    fn deploy_multiplexed_is_checksum_stable_across_job_counts() {
        let checksum_at = |jobs: &str| {
            let out = run(&argv(&[
                "deploy", "--nodes", "96", "--jobs", jobs, "--f", "3", "--degree", "12",
                "--rounds", "10",
            ]))
            .unwrap();
            out.lines()
                .find(|l| l.starts_with("state checksum:"))
                .map(str::to_owned)
                .unwrap()
        };
        let serial = checksum_at("1");
        assert_eq!(serial, checksum_at("4"));
        assert_eq!(serial, checksum_at("7"));
    }

    #[test]
    fn deploy_threaded_refuses_past_the_thread_cap() {
        let err = run(&argv(&[
            "deploy", "--nodes", "9000", "--mode", "threaded", "--f", "1",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("8192"), "{err}");
        assert!(err.to_string().contains("--mode multiplexed"), "{err}");
    }

    #[test]
    fn deploy_rejects_bad_mode_and_bad_shape() {
        let err = run(&argv(&[
            "deploy",
            "--nodes",
            "32",
            "--mode",
            "carrier-pigeon",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("unknown --mode"), "{err}");
        let err = run(&argv(&["deploy", "--nodes", "6", "--degree", "9"])).unwrap_err();
        assert!(err.to_string().contains("--nodes > degree"), "{err}");
        let err = run(&argv(&["deploy", "--nodes", "8", "--f", "8"])).unwrap_err();
        assert!(err.to_string().contains("--f < --nodes"), "{err}");
    }

    #[test]
    fn simulate_delay_bounded_end_to_end() {
        let edge_list = run(&argv(&["generate", "complete", "7"])).unwrap();
        let path = write_graph("delay-k7", &edge_list);
        let out = run(&argv(&[
            "simulate",
            &path,
            "--f",
            "2",
            "--faulty",
            "5,6",
            "--delay-bound",
            "3",
            "--scheduler",
            "max",
            "--inputs",
            "0,1,2,3,4,2,2",
        ]))
        .unwrap();
        assert!(out.contains("delay bound B = 3"), "{out}");
        assert!(out.contains("scheduler = max"), "{out}");
        assert!(out.contains("converged: true"), "{out}");
    }

    #[test]
    fn simulate_delay_bounded_jobs_are_bit_identical() {
        let edge_list = run(&argv(&["generate", "complete", "8"])).unwrap();
        let path = write_graph("delay-jobs-k8", &edge_list);
        let base = &[
            "simulate",
            &path,
            "--f",
            "2",
            "--faulty",
            "6,7",
            "--delay-bound",
            "4",
            "--scheduler",
            "random",
            "--sched-seed",
            "7",
            "--adversary",
            "random",
            "--inputs",
            "0,1,2,3,4,5,2,2",
        ];
        let with_jobs = |jobs: &str| {
            let mut a = base.to_vec();
            a.extend(["--jobs", jobs]);
            run(&argv(&a)).unwrap()
        };
        let serial = with_jobs("1");
        for jobs in ["2", "4", "7"] {
            let parallel = with_jobs(jobs);
            // Everything but the header line (which reports the job
            // count) must match bit-for-bit — same rounds, same agreed
            // value digits, same scheduler stream.
            let body = |s: &str| s.split_once('\n').map(|(_, b)| b.to_string()).unwrap();
            assert_eq!(body(&serial), body(&parallel), "--jobs {jobs} diverged");
        }
    }

    #[test]
    fn simulate_delay_bounded_validates_flags() {
        let edge_list = run(&argv(&["generate", "complete", "5"])).unwrap();
        let path = write_graph("delay-flags-k5", &edge_list);
        let base = ["simulate", &path, "--f", "1", "--faulty", "4"];
        let with = |extra: &[&str]| {
            let mut a = base.to_vec();
            a.extend_from_slice(extra);
            run(&argv(&a))
        };
        assert!(with(&["--delay-bound", "0"]).is_err());
        assert!(with(&["--delay-bound", "2", "--scheduler", "bogus"]).is_err());
        assert!(with(&["--delay-bound", "2", "--scheduler", "targeted"]).is_err());
        assert!(with(&[
            "--delay-bound",
            "2",
            "--scheduler",
            "targeted",
            "--victims",
            "9"
        ])
        .is_err());
        assert!(with(&[
            "--delay-bound",
            "2",
            "--scheduler",
            "targeted",
            "--victims",
            "0,1"
        ])
        .is_ok());
    }

    #[test]
    fn sweep_census_is_deterministic_across_job_counts() {
        let serial = run(&argv(&["sweep", "census", "--max-n", "4", "--jobs", "1"])).unwrap();
        let parallel = run(&argv(&["sweep", "census", "--max-n", "4", "--jobs", "4"])).unwrap();
        // Everything after the header line (which names the job count)
        // must match bit-for-bit.
        let body = |s: &str| s.split_once('\n').map(|(_, b)| b.to_string()).unwrap();
        assert_eq!(body(&serial), body(&parallel));
        assert!(
            serial.contains("4096"),
            "n=4 census should enumerate 2^12 graphs"
        );
    }

    #[test]
    fn sweep_experiments_subset_runs_and_passes() {
        let out = run(&argv(&[
            "sweep",
            "experiments",
            "--ids",
            "E4,E5",
            "--parallel",
        ]))
        .unwrap();
        assert!(out.contains("E4"));
        assert!(out.contains("E5"));
        assert!(out.contains("all experiments PASS"));
    }

    #[test]
    fn sweep_rejects_unknown_grid_and_bad_flags() {
        assert!(run(&argv(&["sweep", "frobnicate"])).is_err());
        assert!(run(&argv(&["sweep"])).is_err());
        assert!(run(&argv(&["sweep", "monte-carlo", "--p", "1.5"])).is_err());
        assert!(run(&argv(&["sweep", "census", "--jobs"])).is_err());
        // A typo'd experiment id must error, not silently run the rest.
        let err = run(&argv(&["sweep", "experiments", "--ids", "E4,E13"])).unwrap_err();
        assert!(err.to_string().contains("E13"));
        // A census beyond the enumerable limit must error, not silently cap.
        let err = run(&argv(&["sweep", "census", "--max-n", "8"])).unwrap_err();
        assert!(err.to_string().contains("monte-carlo"));
    }

    #[test]
    fn generate_then_check_roundtrip() {
        let edge_list = run(&argv(&["generate", "core-network", "7", "2"])).unwrap();
        let path = write_graph("core", &edge_list);
        let report = run(&argv(&["check", &path, "--f", "2"])).unwrap();
        assert!(report.contains("condition: satisfied"));
        assert!(report.contains("IS possible"));
    }

    #[test]
    fn check_reports_witness_on_violation() {
        let edge_list = run(&argv(&["generate", "chord", "7", "5"])).unwrap();
        let path = write_graph("chord", &edge_list);
        let report = run(&argv(&["check", &path, "--f", "2"])).unwrap();
        assert!(report.contains("violated by F="));
        assert!(report.contains("no correct iterative algorithm"));
    }

    #[test]
    fn check_async_and_local_flags() {
        let edge_list = run(&argv(&["generate", "complete", "11"])).unwrap();
        let path = write_graph("k11", &edge_list);
        let sync = run(&argv(&["check", &path, "--f", "2"])).unwrap();
        assert!(sync.contains("satisfied"));
        let asyn = run(&argv(&["check", &path, "--f", "2", "--async"])).unwrap();
        assert!(asyn.contains("asynchronous"));
        assert!(asyn.contains("satisfied"));
        let local = run(&argv(&["check", &path, "--f", "2", "--local"])).unwrap();
        assert!(local.contains("f-local condition: satisfied"));
    }

    #[test]
    fn check_structure_flag() {
        let edge_list = run(&argv(&["generate", "chord", "7", "5"])).unwrap();
        let path = write_graph("chord7-structure", &edge_list);
        // Known rack {5,6}: the generalized condition is satisfied (fault-
        // location knowledge restores possibility on the §6.3 graph).
        let rack = run(&argv(&["check", &path, "--structure", "5,6"])).unwrap();
        assert!(rack.contains("generalized condition: satisfied"), "{rack}");
        // Two possible racks {5,6} / {0,1}: still more knowledge than
        // f-total(2); report whatever the checker decides, but it must parse.
        let racks = run(&argv(&["check", &path, "--structure", "5,6;0,1"])).unwrap();
        assert!(racks.contains("generalized condition:"), "{racks}");
        // Bad ids are usage errors.
        assert!(run(&argv(&["check", &path, "--structure", "5,99"])).is_err());
        assert!(run(&argv(&["check", &path, "--structure", "5,x"])).is_err());
    }

    #[test]
    fn simulate_structure_aware_rule() {
        let edge_list = run(&argv(&["generate", "chord", "7", "5"])).unwrap();
        let path = write_graph("chord7-model-sim", &edge_list);
        // The rack scenario: structure {5,6}, faults {5,6} — converges with
        // the structure-aware rule even though the f-total condition fails.
        let report = run(&argv(&[
            "simulate",
            &path,
            "--structure",
            "5,6",
            "--faulty",
            "5,6",
            "--seed",
            "11",
        ]))
        .unwrap();
        assert!(report.contains("rule = model-trimmed-mean"), "{report}");
        assert!(report.contains("converged: true"), "{report}");
        assert!(report.contains("validity: ok"), "{report}");
        // Infeasible fault set under the structure is a usage error.
        assert!(run(&argv(&[
            "simulate",
            &path,
            "--structure",
            "5,6",
            "--faulty",
            "0,1",
        ]))
        .is_err());
    }

    #[test]
    fn simulate_quantized_rule() {
        let edge_list = run(&argv(&["generate", "complete", "7"])).unwrap();
        let path = write_graph("k7-quantized", &edge_list);
        let report = run(&argv(&[
            "simulate",
            &path,
            "--f",
            "2",
            "--faulty",
            "5,6",
            "--rule",
            "quantized",
            "--quantum",
            "0.25",
            "--eps",
            "0.25",
            "--seed",
            "9",
        ]))
        .unwrap();
        assert!(report.contains("rule = quantized-trimmed-mean"), "{report}");
        assert!(report.contains("converged: true"), "{report}");
        // Quantized rule without --quantum is a usage error.
        assert!(run(&argv(&[
            "simulate",
            &path,
            "--f",
            "2",
            "--faulty",
            "5,6",
            "--rule",
            "quantized",
        ]))
        .is_err());
        // Unknown rounding mode is a usage error.
        assert!(run(&argv(&[
            "simulate",
            &path,
            "--f",
            "2",
            "--faulty",
            "5,6",
            "--rule",
            "quantized",
            "--quantum",
            "0.25",
            "--rounding",
            "stochastic",
        ]))
        .is_err());
    }

    #[test]
    fn check_parallel_flag() {
        let edge_list = run(&argv(&["generate", "complete", "9"])).unwrap();
        let path = write_graph("k9", &edge_list);
        let report = run(&argv(&["check", &path, "--f", "2", "--parallel", "4"])).unwrap();
        assert!(report.contains("satisfied"));
    }

    #[test]
    fn generate_families_have_expected_headers() {
        for (fam, expected_n) in [
            (vec!["generate", "complete", "5"], 5usize),
            (vec!["generate", "hypercube", "3"], 8),
            (vec!["generate", "cycle", "6"], 6),
            (vec!["generate", "bridged-cliques", "3", "1"], 6),
            (vec!["generate", "random", "6", "0.5", "42"], 6),
        ] {
            let out = run(&argv(&fam)).unwrap();
            let g = parse::parse_edge_list(&out).unwrap();
            assert_eq!(g.node_count(), expected_n, "{fam:?}");
        }
    }

    #[test]
    fn generate_unknown_family_errors() {
        assert!(run(&argv(&["generate", "petersen", "10"])).is_err());
        assert!(run(&argv(&["generate", "complete"])).is_err());
    }

    #[test]
    fn simulate_end_to_end() {
        let edge_list = run(&argv(&["generate", "complete", "7"])).unwrap();
        let path = write_graph("simk7", &edge_list);
        let report = run(&argv(&[
            "simulate",
            &path,
            "--f",
            "2",
            "--faulty",
            "5,6",
            "--adversary",
            "constant",
            "--seed",
            "3",
            "--trace",
        ]))
        .unwrap();
        assert!(report.contains("converged: true"), "{report}");
        assert!(report.contains("validity: ok"));
        assert!(report.contains("round  U[t]"));
    }

    #[test]
    fn simulate_validates_inputs() {
        let edge_list = run(&argv(&["generate", "complete", "4"])).unwrap();
        let path = write_graph("simk4", &edge_list);
        // Faulty node out of range.
        assert!(run(&argv(&["simulate", &path, "--f", "1", "--faulty", "9"])).is_err());
        // Wrong input count.
        assert!(run(&argv(&[
            "simulate", &path, "--f", "1", "--faulty", "3", "--inputs", "1,2"
        ]))
        .is_err());
        // Unknown adversary / rule.
        assert!(run(&argv(&[
            "simulate",
            &path,
            "--f",
            "1",
            "--faulty",
            "3",
            "--adversary",
            "nope"
        ]))
        .is_err());
        assert!(run(&argv(&[
            "simulate", &path, "--f", "1", "--faulty", "3", "--rule", "nope"
        ]))
        .is_err());
    }

    #[test]
    fn simulate_mean_rule_shows_hijack() {
        let edge_list = run(&argv(&["generate", "complete", "7"])).unwrap();
        let path = write_graph("simk7mean", &edge_list);
        let report = run(&argv(&[
            "simulate",
            &path,
            "--f",
            "2",
            "--faulty",
            "5,6",
            "--adversary",
            "constant",
            "--rule",
            "mean",
        ]))
        .unwrap();
        assert!(report.contains("validity: VIOLATED"), "{report}");
    }

    #[test]
    fn robustness_reports() {
        let edge_list = run(&argv(&["generate", "complete", "6"])).unwrap();
        let path = write_graph("robk6", &edge_list);
        let out = run(&argv(&["robustness", &path])).unwrap();
        assert!(out.contains("max r-robustness: 3"));
        let out = run(&argv(&["robustness", &path, "--r", "2", "--s", "1"])).unwrap();
        assert!(out.contains("(2, 1)-robust: true"));
    }

    #[test]
    fn alpha_reports_bounds() {
        let edge_list = run(&argv(&["generate", "complete", "7"])).unwrap();
        let path = write_graph("alphak7", &edge_list);
        let out = run(&argv(&["alpha", &path, "--f", "2"])).unwrap();
        assert!(out.contains("alpha = 0.333333"));
        assert!(out.contains("Lemma 5 bound"));
    }

    #[test]
    fn dot_renders_with_witness_colors() {
        let edge_list = run(&argv(&["generate", "chord", "7", "5"])).unwrap();
        let path = write_graph("dotchord", &edge_list);
        let plain = run(&argv(&["dot", &path])).unwrap();
        assert!(plain.starts_with("digraph"));
        assert!(!plain.contains("lightblue"));
        let colored = run(&argv(&["dot", &path, "--f", "2"])).unwrap();
        assert!(colored.contains("lightblue"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = run(&argv(&["check", "/nonexistent/file.txt", "--f", "1"])).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }

    #[test]
    fn repair_patches_failing_graph() {
        let edge_list = run(&argv(&["generate", "chord", "7", "5"])).unwrap();
        let path = write_graph("repairchord", &edge_list);
        let out_path = write_graph("repairchord-out", "");
        let report = run(&argv(&["repair", &path, "--f", "2", "--out", &out_path])).unwrap();
        assert!(report.contains("added"), "{report}");
        assert!(report.contains("condition now satisfied"));
        // The written graph checks clean.
        let verify = run(&argv(&["check", &out_path, "--f", "2"])).unwrap();
        assert!(verify.contains("satisfied"));
    }

    #[test]
    fn repair_noop_on_satisfying_graph() {
        let edge_list = run(&argv(&["generate", "core-network", "7", "2"])).unwrap();
        let path = write_graph("repaircore", &edge_list);
        let report = run(&argv(&["repair", &path, "--f", "2"])).unwrap();
        assert!(report.contains("no edges needed"));
    }

    #[test]
    fn record_then_replay_roundtrip() {
        let edge_list = run(&argv(&["generate", "complete", "7"])).unwrap();
        let gpath = write_graph("reck7", &edge_list);
        let tpath = write_graph("reck7-transcript", "");
        let rec = run(&argv(&[
            "record",
            &gpath,
            "--f",
            "2",
            "--faulty",
            "5,6",
            "--rounds",
            "15",
            "--adversary",
            "constant",
            "--out",
            &tpath,
        ]))
        .unwrap();
        assert!(rec.contains("recorded 15 rounds"), "{rec}");
        let rep = run(&argv(&[
            "replay",
            &gpath,
            "--f",
            "2",
            "--transcript",
            &tpath,
        ]))
        .unwrap();
        assert!(rep.contains("replay VERIFIED"), "{rep}");
    }

    #[test]
    fn replay_detects_tampering() {
        let edge_list = run(&argv(&["generate", "complete", "7"])).unwrap();
        let gpath = write_graph("tampk7", &edge_list);
        let tpath = write_graph("tampk7-transcript", "");
        run(&argv(&[
            "record",
            &gpath,
            "--f",
            "2",
            "--faulty",
            "5,6",
            "--rounds",
            "10",
            "--adversary",
            "extremes",
            "--out",
            &tpath,
        ]))
        .unwrap();
        // Corrupt one recorded state.
        let text = std::fs::read_to_string(&tpath).unwrap();
        let tampered = text.replacen("states ", "states 99999 ", 1);
        // Only tamper if the replacement changed a states line arity; write
        // a cleanly corrupted version by perturbing the first msg value.
        let tampered = if tampered == text {
            text.replacen("msg 5 0 ", "msg 5 0 123456789", 1)
        } else {
            tampered
        };
        std::fs::write(&tpath, tampered).unwrap();
        let rep = run(&argv(&[
            "replay",
            &gpath,
            "--f",
            "2",
            "--transcript",
            &tpath,
        ]))
        .unwrap();
        assert!(rep.contains("replay FAILED"), "{rep}");
    }

    #[test]
    fn record_without_out_prints_transcript() {
        let edge_list = run(&argv(&["generate", "complete", "4"])).unwrap();
        let gpath = write_graph("reck4", &edge_list);
        let out = run(&argv(&[
            "record", &gpath, "--f", "1", "--faulty", "3", "--rounds", "3",
        ]))
        .unwrap();
        assert!(out.starts_with("# iabc transcript"));
        assert!(out.contains("round 3"));
    }

    #[test]
    fn generate_new_families() {
        let circ = run(&argv(&["generate", "circulant", "7", "1,2,3,4,5"])).unwrap();
        let chord = run(&argv(&["generate", "chord", "7", "5"])).unwrap();
        assert_eq!(circ, chord, "circulant(1..=5) must equal chord(7,5)");
        for cmd in [
            vec!["generate", "de-bruijn", "2", "3"],
            vec!["generate", "small-world", "12", "2", "0.3", "7"],
            vec!["generate", "scale-free", "12", "3", "7"],
            vec!["generate", "tournament", "6", "7"],
            vec!["generate", "tree", "2", "2"],
        ] {
            let out = run(&argv(&cmd)).unwrap();
            assert!(out.lines().count() > 1, "{cmd:?} produced {out}");
        }
    }

    #[test]
    fn profile_reports_connectivity() {
        let edge_list = run(&argv(&["generate", "hypercube", "3"])).unwrap();
        let path = write_graph("prof-cube", &edge_list);
        let out = run(&argv(&["profile", &path])).unwrap();
        assert!(out.contains("vertex connectivity 3"), "{out}");
        assert!(out.contains("diameter 3"), "{out}");
        assert!(out.contains("reciprocity 1.000"), "{out}");
        // The §6.2 punchline in one line: connectivity 3 but capacity f = 0.
        assert!(out.contains("tolerates up to f = 0"), "{out}");
    }

    #[test]
    fn profile_reports_capacity_for_core_network() {
        let edge_list = run(&argv(&["generate", "core-network", "7", "2"])).unwrap();
        let path = write_graph("prof-core", &edge_list);
        let out = run(&argv(&["profile", &path])).unwrap();
        assert!(out.contains("tolerates up to f = 2"), "{out}");
    }

    #[test]
    fn minimal_probe_on_k4() {
        let edge_list = run(&argv(&["generate", "complete", "4"])).unwrap();
        let path = write_graph("min-k4", &edge_list);
        let out = run(&argv(&["minimal", &path, "--f", "1"])).unwrap();
        assert!(out.contains("critical directed edges: 12/12"), "{out}");
        assert!(out.contains("already edge-minimal"), "{out}");
    }

    #[test]
    fn minimal_on_violating_graph_is_moot() {
        let edge_list = run(&argv(&["generate", "chord", "7", "5"])).unwrap();
        let path = write_graph("min-chord", &edge_list);
        let out = run(&argv(&["minimal", &path, "--f", "2"])).unwrap();
        assert!(out.contains("violates Theorem 1"), "{out}");
    }

    #[test]
    fn construct_emits_satisfying_graph() {
        let out = run(&argv(&["construct", "9", "--f", "1", "--seed", "3"])).unwrap();
        let path = write_graph("constructed", &out);
        let report = run(&argv(&["check", &path, "--f", "1"])).unwrap();
        assert!(report.contains("condition: satisfied"), "{report}");
        // Attachment variants parse.
        for mode in ["uniform", "preferential", "lowest"] {
            run(&argv(&["construct", "8", "--f", "1", "--attachment", mode])).unwrap();
        }
        let err = run(&argv(&["construct", "3", "--f", "1"])).unwrap_err();
        assert!(err.to_string().contains("3f + 1"), "{err}");
    }

    #[test]
    fn baseline_faceoff_runs_all_rules() {
        let edge_list = run(&argv(&["generate", "complete", "7"])).unwrap();
        let path = write_graph("base-k7", &edge_list);
        let out = run(&argv(&[
            "baseline",
            &path,
            "--f",
            "2",
            "--faulty",
            "5,6",
            "--adversary",
            "polarizing",
        ]))
        .unwrap();
        for rule in [
            "trimmed-mean",
            "dolev-midpoint",
            "dolev-select-mean",
            "w-msr",
        ] {
            assert!(out.contains(rule), "missing {rule} in {out}");
        }
        assert!(out.contains("true"), "{out}");
    }

    #[test]
    fn check_explain_flag_details_the_witness() {
        let edge_list = run(&argv(&["generate", "chord", "7", "5"])).unwrap();
        let path = write_graph("explain-chord", &edge_list);
        let out = run(&argv(&["check", &path, "--f", "2", "--explain"])).unwrap();
        assert!(out.contains("Violating partition"), "{out}");
        assert!(out.contains("Theorem 1 proof"), "{out}");
        // Without the flag, the prose is absent.
        let short = run(&argv(&["check", &path, "--f", "2"])).unwrap();
        assert!(!short.contains("Violating partition"));
    }

    #[test]
    fn simulate_with_baseline_rules_and_new_adversaries() {
        let edge_list = run(&argv(&["generate", "complete", "7"])).unwrap();
        let path = write_graph("sim-wmsr", &edge_list);
        let out = run(&argv(&[
            "simulate",
            &path,
            "--f",
            "2",
            "--faulty",
            "5,6",
            "--rule",
            "w-msr",
            "--adversary",
            "echo",
        ]))
        .unwrap();
        assert!(out.contains("rule = w-msr"), "{out}");
        assert!(out.contains("converged: true"), "{out}");
    }

    #[test]
    fn perf_writes_well_formed_hotpath_json() {
        let out_path = std::env::temp_dir().join("iabc-cli-test-BENCH_hotpath.json");
        let out_path = out_path.to_string_lossy().into_owned();
        // --steps 1 keeps the smoke test fast; the quick grid still covers
        // all three topology families at n in {100, 1000}.
        let report = run(&argv(&[
            "perf", "--quick", "--steps", "1", "--out", &out_path,
        ]))
        .unwrap();
        assert!(report.contains("speedup"), "{report}");
        assert!(report.contains("complete/n1000"), "{report}");
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"bench\": \"hotpath\""), "{json}");
        assert!(json.contains("\"mode\": \"quick\""), "{json}");
        assert!(json.contains("\"compiled_steps_per_sec\""), "{json}");
        // 6 grid entries + parallel, pool, deploy, deploy_scale,
        // serve_cache, fastmath, fastmath_scalar, replica_batch, and
        // batched_sweep datapoints.
        assert_eq!(json.matches("\"topology\"").count(), 15, "{json}");
        assert!(json.contains("\"parallel\""), "{json}");
        assert!(json.contains("\"serial_steps_per_sec\""), "{json}");
        assert!(json.contains("\"pool\""), "{json}");
        assert!(json.contains("\"pooled_steps_per_sec\""), "{json}");
        assert!(json.contains("\"respawn_steps_per_sec\""), "{json}");
        assert!(json.contains("\"deploy\""), "{json}");
        assert!(json.contains("\"threaded_steps_per_sec\""), "{json}");
        assert!(json.contains("\"deploy_scale\""), "{json}");
        assert!(json.contains("\"multiplexed_steps_per_sec\""), "{json}");
        assert!(json.contains("\"serve_cache\""), "{json}");
        assert!(json.contains("\"cold_jobs_per_sec\""), "{json}");
        assert!(json.contains("\"warm_hits_per_sec\""), "{json}");
        assert!(json.contains("\"fastmath\""), "{json}");
        assert!(json.contains("\"fast_updates_per_sec\""), "{json}");
        assert!(json.contains("\"replica_batch\""), "{json}");
        assert!(json.contains("\"batched_replica_steps_per_sec\""), "{json}");
        assert!(json.contains("\"batched_sweep\""), "{json}");
        assert!(json.contains("\"batched_cells_per_sec\""), "{json}");
        // The scale line must stay check-exempt via the explicit marker.
        let scale_line = json
            .lines()
            .find(|l| l.contains("\"deploy_scale\""))
            .unwrap();
        assert!(
            scale_line.contains("\"informational\": true",),
            "{scale_line}"
        );
        // The scalar kernel faceoff is recorded but check-exempt; the
        // enforced fastmath line measures the columnar merge-network path.
        let scalar_line = json
            .lines()
            .find(|l| l.contains("\"fastmath_scalar\""))
            .unwrap();
        assert!(
            scalar_line.contains("\"informational\": true"),
            "{scalar_line}"
        );
        let columnar_line = json.lines().find(|l| l.contains("\"fastmath\":")).unwrap();
        assert!(
            columnar_line.contains("\"lanes\": 32") && columnar_line.contains("\"n\": 64"),
            "{columnar_line}"
        );
        assert!(
            !columnar_line.contains("\"informational\""),
            "{columnar_line}"
        );
        // On a host with fewer cores than --jobs (this CI container has
        // one), the parallel line carries the informational marker; on a
        // big host it must not.
        let parallel_line = json.lines().find(|l| l.contains("\"parallel\":")).unwrap();
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(
            parallel_line.contains("\"informational\": true"),
            cores < 4,
            "{parallel_line}"
        );
        // Structurally sound: balanced braces/brackets, no trailing comma.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"), "trailing comma: {json}");
        std::fs::remove_file(&out_path).ok();
    }

    #[test]
    fn sweep_experiments_store_reports_misses_then_hits() {
        let dir = std::env::temp_dir().join("iabc-cli-test-sweep-store");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_string_lossy().into_owned();
        let cold = run(&argv(&[
            "sweep",
            "experiments",
            "--ids",
            "E1",
            "--store",
            &dir_s,
        ]))
        .unwrap();
        assert!(
            cold.contains("store: 0 cell hit(s), 1 miss(es), 0 evicted"),
            "{cold}"
        );
        let warm = run(&argv(&[
            "sweep",
            "experiments",
            "--ids",
            "E1",
            "--store",
            &dir_s,
        ]))
        .unwrap();
        assert!(
            warm.contains("store: 1 cell hit(s), 0 miss(es), 0 evicted"),
            "{warm}"
        );
        // The memoized table is identical to the direct one.
        let direct = run(&argv(&["sweep", "experiments", "--ids", "E1"])).unwrap();
        let table_of = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("id"))
                .take_while(|l| !l.starts_with("store:") && !l.starts_with("all experiments"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(table_of(&warm), table_of(&direct));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submit_and_query_reject_bad_invocations() {
        let err = run(&argv(&["submit", "sweep"])).unwrap_err();
        assert!(err.to_string().contains("--addr"), "{err}");
        let err = run(&argv(&["submit", "frob", "--addr", "127.0.0.1:1"])).unwrap_err();
        assert!(err.to_string().contains("unknown job kind"), "{err}");
        let err = run(&argv(&["query", "--addr", "127.0.0.1:1", "--key", "xyz"])).unwrap_err();
        assert!(err.to_string().contains("hex"), "{err}");
        // A dead address is a run error, not a hang.
        let err = run(&argv(&[
            "submit",
            "sweep",
            "--ids",
            "E1",
            "--addr",
            "127.0.0.1:1",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("connect"), "{err}");
    }

    #[test]
    fn serve_requires_a_store() {
        let err = run(&argv(&["serve"])).unwrap_err();
        assert!(err.to_string().contains("--store"), "{err}");
    }

    #[test]
    fn parallel_informational_detection_compares_cores_to_jobs() {
        // Under-provisioned hosts: the datapoint is scheduler noise.
        assert!(parallel_speedup_is_informational(1, 4));
        assert!(parallel_speedup_is_informational(3, 4));
        // Exactly enough or more cores: the datapoint is enforced.
        assert!(!parallel_speedup_is_informational(4, 4));
        assert!(!parallel_speedup_is_informational(16, 4));
        assert!(!parallel_speedup_is_informational(1, 1));
    }

    #[test]
    fn bench_baseline_parser_obeys_the_informational_marker() {
        // An informational line is skipped even if it DOES carry every
        // checked field — the marker, not a missing field, is the rule.
        let text = concat!(
            "  \"deploy_scale\": {\"topology\": \"circulant\", \"n\": 9, \"f\": 1, ",
            "\"jobs\": 4, \"informational\": true, \"speedup\": 99.0},\n",
            "  \"fastmath\": {\"topology\": \"rows\", \"n\": 16, \"f\": 2, \"jobs\": 4, ",
            "\"exact_updates_per_sec\": 1.0, \"fast_updates_per_sec\": 2.0, ",
            "\"speedup\": 2.0},\n",
            "  \"replica_batch\": {\"topology\": \"complete\", \"n\": 96, \"f\": 3, ",
            "\"jobs\": 4, \"dispatch_replica_steps_per_sec\": 1.0, ",
            "\"batched_replica_steps_per_sec\": 3.0, \"speedup\": 3.0},\n",
        );
        let baseline = parse_bench_json(text);
        assert!(
            baseline.parallel.is_none(),
            "informational line must not fall through"
        );
        assert_eq!(baseline.fastmath, Some((16, 4, 2.0)));
        assert_eq!(baseline.replica_batch, Some((96, 4, 3.0)));
    }

    #[test]
    fn perf_check_passes_against_own_baseline_and_catches_regressions() {
        let base = std::env::temp_dir().join("iabc-cli-test-perf-baseline.json");
        let base = base.to_string_lossy().into_owned();
        let out = std::env::temp_dir().join("iabc-cli-test-perf-fresh.json");
        let out = out.to_string_lossy().into_owned();
        // Emit a baseline, then re-run with --check against it: two runs
        // of the same binary on the same machine sit well inside the
        // default tolerance.
        run(&argv(&["perf", "--quick", "--steps", "1", "--out", &base])).unwrap();
        let report = run(&argv(&[
            "perf",
            "--quick",
            "--steps",
            "1",
            "--check",
            "--baseline",
            &base,
            "--out",
            &out,
            "--tolerance",
            "0.9",
        ]))
        .unwrap();
        assert!(report.contains("perf check PASSED"), "{report}");
        // Doctor the baseline to claim an impossible 1000x speedup on a
        // datapoint the check always enforces: the check must fail and
        // name it. (The file's first speedup belongs to the "parallel"
        // line, which self-demotes to informational on hosts with fewer
        // cores than --jobs — doctoring it would be silently skipped.)
        let doctored = std::fs::read_to_string(&base)
            .unwrap()
            .lines()
            .map(|line| {
                if line.contains("\"batched_cells_per_sec\"") {
                    line.replacen("\"speedup\":", "\"speedup\": 1000.0, \"old\":", 1)
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        std::fs::write(&base, doctored).unwrap();
        let err = run(&argv(&[
            "perf",
            "--quick",
            "--steps",
            "1",
            "--check",
            "--baseline",
            &base,
            "--out",
            &out,
            "--tolerance",
            "0.9",
        ]))
        .unwrap_err();
        assert!(
            err.to_string().contains("perf regression"),
            "doctored baseline must fail the check: {err}"
        );
        // A missing baseline is an I/O error, not a silent pass.
        assert!(run(&argv(&[
            "perf",
            "--quick",
            "--check",
            "--baseline",
            "/nonexistent/bench.json"
        ]))
        .is_err());
        std::fs::remove_file(&base).ok();
        std::fs::remove_file(&out).ok();
    }
}
