//! `iabc` — command-line entry point. All logic lives in the library
//! (`iabc_cli::run`) so it can be tested without process spawning.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match iabc_cli::run(&argv) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::FAILURE
        }
    }
}
