//! Tiny flag parser (no external dependency): positionals plus
//! `--flag [value]` pairs, with typed accessors.

use std::error::Error;
use std::fmt;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation; the message includes usage guidance.
    Usage(String),
    /// Input file could not be read.
    Io(String),
    /// Graph parsing or validation failed.
    Graph(String),
    /// Simulation or analysis failed.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(m) => write!(f, "io error: {m}"),
            CliError::Graph(m) => write!(f, "graph error: {m}"),
            CliError::Run(m) => write!(f, "run error: {m}"),
        }
    }
}

impl Error for CliError {}

/// Parsed command arguments: positionals in order, flags as key/value
/// (value-less flags store an empty string).
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    positionals: Vec<String>,
    flags: Vec<(String, String)>,
}

impl ParsedArgs {
    /// Splits `rest` into positionals and `--key [value]` flags. A flag's
    /// value is the next token unless that token itself starts with `--`.
    ///
    /// # Errors
    ///
    /// Never fails currently; returns `Result` for future validations.
    pub fn parse(rest: &[String]) -> Result<Self, CliError> {
        let mut out = ParsedArgs::default();
        let mut i = 0;
        while i < rest.len() {
            let tok = &rest[i];
            if let Some(key) = tok.strip_prefix("--") {
                let value = match rest.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        i += 1;
                        v.clone()
                    }
                    _ => String::new(),
                };
                out.flags.push((key.to_string(), value));
            } else {
                out.positionals.push(tok.clone());
            }
            i += 1;
        }
        Ok(out)
    }

    /// The `idx`-th positional argument.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positionals.get(idx).map(String::as_str)
    }

    /// All positionals.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The raw value of `--key`, if present.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// `true` if `--key` was passed (with or without a value).
    pub fn has_flag(&self, key: &str) -> bool {
        self.flag(key).is_some()
    }

    /// Parses `--key` as `T`, with a domain-specific error message.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when missing or unparsable.
    pub fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, CliError> {
        let raw = self
            .flag(key)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))?;
        raw.parse()
            .map_err(|_| CliError::Usage(format!("flag --{key}: cannot parse {raw:?}")))
    }

    /// Parses `--key` as `T` if present.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when present but unparsable.
    pub fn optional<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, CliError> {
        match self.flag(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| CliError::Usage(format!("flag --{key}: cannot parse {raw:?}"))),
        }
    }

    /// Parses `--key` as a comma-separated list of `T`.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when any element fails to parse.
    pub fn list<T: std::str::FromStr>(&self, key: &str) -> Result<Vec<T>, CliError> {
        let Some(raw) = self.flag(key) else {
            return Ok(Vec::new());
        };
        if raw.is_empty() {
            return Ok(Vec::new());
        }
        raw.split(',')
            .map(|part| {
                part.trim().parse().map_err(|_| {
                    CliError::Usage(format!("flag --{key}: cannot parse element {part:?}"))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> ParsedArgs {
        let v: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&v).unwrap()
    }

    #[test]
    fn positionals_and_flags_separate() {
        let a = parse(&["file.txt", "--f", "2", "--async", "--eps", "0.001"]);
        assert_eq!(a.positional(0), Some("file.txt"));
        assert_eq!(a.flag("f"), Some("2"));
        assert!(a.has_flag("async"));
        assert_eq!(a.flag("async"), Some(""));
        assert_eq!(a.flag("eps"), Some("0.001"));
        assert_eq!(a.positionals().len(), 1);
    }

    #[test]
    fn typed_accessors() {
        let a = parse(&["--f", "2", "--eps", "1e-6", "--faulty", "1,2,3"]);
        assert_eq!(a.required::<usize>("f").unwrap(), 2);
        assert_eq!(a.optional::<f64>("eps").unwrap(), Some(1e-6));
        assert_eq!(a.optional::<f64>("nope").unwrap(), None);
        assert_eq!(a.list::<usize>("faulty").unwrap(), vec![1, 2, 3]);
        assert!(a.list::<usize>("absent").unwrap().is_empty());
    }

    #[test]
    fn missing_required_flag_is_usage_error() {
        let a = parse(&["file.txt"]);
        let err = a.required::<usize>("f").unwrap_err();
        assert!(err.to_string().contains("--f"));
    }

    #[test]
    fn unparsable_values_are_usage_errors() {
        let a = parse(&["--f", "two"]);
        assert!(a.required::<usize>("f").is_err());
        let a = parse(&["--faulty", "1,x"]);
        assert!(a.list::<usize>("faulty").is_err());
    }

    #[test]
    fn flag_followed_by_flag_has_empty_value() {
        let a = parse(&["--local", "--f", "1"]);
        assert!(a.has_flag("local"));
        assert_eq!(a.required::<usize>("f").unwrap(), 1);
    }
}
