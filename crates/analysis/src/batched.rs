//! Batched sweep execution: groups same-spec simulation cells into one
//! [`BatchedSimulation`] run instead of dispatching one engine per cell.
//!
//! The sweep grids of this workspace decompose into independent cells,
//! and [`crate::sweep`] already fans those across cores. But many grids
//! contain *simulation* cells that share everything except their RNG
//! seed — same topology, same fault set, same rule, same (deterministic)
//! adversary family. Dispatching one `Simulation` per such cell leaves
//! the FastMath tier's replica-major SoA batching (PR 8) on the table:
//! `R` same-spec cells are exactly an `R`-replica batch.
//!
//! This module closes that gap:
//!
//! * [`SimCellSpec`] names the shareable part of a simulation cell —
//!   topology, fault set, rule, adversary family, run bounds. Two cells
//!   with equal specs are groupable; their coordinate-hashed seeds stay
//!   per-cell.
//! * [`run_sim_cells`] runs a grid of spec'd cells either **dispatched**
//!   (one width-1 batch per cell — the reference path) or **batched**
//!   (same-spec cells grouped, first-appearance order, one width-`G`
//!   batch per group, results scattered back to grid order).
//!
//! # Why batching is unobservable in the tables
//!
//! Byte-identity of the two paths is *by construction*, not by luck:
//!
//! 1. the dispatch path is literally a width-1 instance of the same group
//!    runner ([`run_spec_group`]), so the only difference is batch width;
//! 2. replicas of a [`BatchedSimulation`] never interact — each lane's
//!    trajectory is a pure function of its own inputs and the
//!    deterministic adversary plan (`tests` in `iabc_sim::fastmath` pin
//!    batch-width-unobservability, and the shared-plan equivalence test
//!    pins that plan sharing is itself bit-identical);
//! 3. a cell's inputs are drawn from its own coordinate seed *inside* the
//!    group runner, in node order, regardless of which lane it lands in;
//! 4. [`SimCellResult`] carries only lane-invariant fields: `converged`
//!    and `rounds` (first-convergence round). The final range is **not**
//!    reported — a converged lane keeps stepping in lockstep inside a
//!    group, so its final range depends on the slowest group member,
//!    which *is* batch-width-observable.
//!
//! # Which grids group
//!
//! Only grids whose cells pin a FastMath simulation spec benefit:
//!
//! * `sweep census --replicas R` — the convergence census
//!   ([`census_conv_cells`]): `R` cells per `(n, f)` differing only in
//!   seed, so `--batch` collapses them into width-`R` runs.
//! * `sweep experiments` — E-series cells pin the **exact** tier
//!   (bit-exact single runs, per DESIGN.md §4); the tiering policy is
//!   that no path silently switches a cell's tier, so `--batch` is
//!   accepted and verified inert ([`run_experiment_sweep_batched`]).
//! * `sweep monte-carlo` — every trial samples a *fresh* random digraph,
//!   so no two sim runs share a topology and there is nothing to group;
//!   its `replicas > 0` mode already batches *within* each trial.
//!
//! The `--store` memo path routes through the same batch-aware entry
//! point with the cell key schema unchanged (keys are coordinate labels,
//! which never mention batch width), so warm hits stay byte-identical.

use iabc_core::fastmath::FastRule;
use iabc_graph::{generators, Digraph, NodeSet};
use iabc_sim::adversary::{Adversary, ConformingAdversary, ConstantAdversary, PullAdversary};
use iabc_sim::fastmath::BatchedSimulation;
use iabc_sim::RunConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sweep::{run_cells, run_cells_memo, CellCoords, CellMemo, SweepCell, SweepOutcome};
use crate::table::Table;

/// A topology family a sweep cell can name without holding a graph —
/// specs must be `Clone + Eq` so equal cells can be grouped, and dense
/// regular families are the batched tier's core workload (Theorem 1 is a
/// condition on in-neighborhood size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// The complete digraph on `n` nodes (in-degree `n − 1`).
    Complete(usize),
    /// The circulant digraph on `n` nodes with offsets `1..=degree`.
    Circulant {
        /// Node count.
        n: usize,
        /// Number of forward offsets (= uniform in-degree).
        degree: usize,
    },
}

impl Topology {
    /// Materializes the digraph.
    pub fn build(self) -> Digraph {
        match self {
            Topology::Complete(n) => generators::complete(n),
            Topology::Circulant { n, degree } => generators::circulant(n, 1..=degree),
        }
    }

    /// Node count without building the graph.
    pub fn node_count(self) -> usize {
        match self {
            Topology::Complete(n) => n,
            Topology::Circulant { n, .. } => n,
        }
    }

    /// Stable label component, e.g. `complete-9` / `circulant-16x5`.
    pub fn label(self) -> String {
        match self {
            Topology::Complete(n) => format!("complete-{n}"),
            Topology::Circulant { n, degree } => format!("circulant-{n}x{degree}"),
        }
    }
}

/// A deterministic adversary family a spec can name by value. The
/// variants mirror [`iabc_sim::adversary::BatchPlan`] exactly: grouping
/// only ever builds uniform batches of these, so the engine's shared-plan
/// fast path activates for every batched group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversarySpec {
    /// Faulty nodes report their own state honestly.
    Conforming,
    /// Faulty nodes report this constant to everyone.
    Constant(f64),
    /// Faulty nodes report the honest hull's max (or min) each round.
    Pull {
        /// `true` pulls toward the maximum, `false` toward the minimum.
        toward_max: bool,
    },
}

impl AdversarySpec {
    /// Builds one adversary instance of this family.
    pub fn make(self) -> Box<dyn Adversary> {
        match self {
            AdversarySpec::Conforming => Box::new(ConformingAdversary::new()),
            AdversarySpec::Constant(v) => Box::new(ConstantAdversary::new(v)),
            AdversarySpec::Pull { toward_max } => Box::new(PullAdversary::new(toward_max)),
        }
    }

    /// Stable label component.
    pub fn label(self) -> String {
        match self {
            AdversarySpec::Conforming => "conforming".to_string(),
            AdversarySpec::Constant(v) => format!("constant-{v}"),
            AdversarySpec::Pull { toward_max: true } => "pull-max".to_string(),
            AdversarySpec::Pull { toward_max: false } => "pull-min".to_string(),
        }
    }
}

/// Everything two simulation cells must share to ride one batch: the
/// full run recipe minus the seed. Inputs are *not* part of the spec —
/// each cell draws its own from its coordinate seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCellSpec {
    /// Graph family and size.
    pub topology: Topology,
    /// Fault bound; the first `f` nodes are faulty (the canonical sweep
    /// convention, matching the Monte-Carlo grid).
    pub f: usize,
    /// FastMath update rule.
    pub rule: FastRule,
    /// Deterministic adversary family.
    pub adversary: AdversarySpec,
    /// Convergence epsilon of the run.
    pub epsilon: f64,
    /// Round cap of the run.
    pub max_rounds: usize,
}

impl SimCellSpec {
    /// Canonical grouping key: equal labels ⇔ groupable cells.
    pub fn group_label(&self) -> String {
        format!(
            "{}|f={}|{:?}|{}|eps={:e}|cap={}",
            self.topology.label(),
            self.f,
            self.rule,
            self.adversary.label(),
            self.epsilon,
            self.max_rounds,
        )
    }

    /// The fault set this spec implies (first `f` nodes).
    pub fn fault_set(&self) -> NodeSet {
        NodeSet::from_indices(self.topology.node_count(), 0..self.f)
    }
}

/// One batchable simulation cell: grid coordinates (seed source) plus
/// the shared spec.
#[derive(Debug, Clone)]
pub struct SimCell {
    /// The cell's grid coordinates; `coords.seed()` feeds its input draw.
    pub coords: CellCoords,
    /// The shareable run recipe.
    pub spec: SimCellSpec,
}

/// Outcome of one simulation cell. Deliberately limited to the
/// **lane-invariant** observables of a batched run — see the module docs
/// for why the final range is excluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimCellResult {
    /// Did the fault-free range reach epsilon within the round cap?
    pub converged: bool,
    /// First round at which it did (`None` iff the cap fired first).
    pub rounds: Option<usize>,
}

/// Runs one spec at batch width `seeds.len()`: lane `g`'s inputs are `n`
/// draws from `StdRng::seed_from_u64(seeds[g])` in node order, laid out
/// replica-major. The dispatch path is this function at width 1, which
/// is what makes batch-vs-dispatch byte-identity structural.
///
/// # Panics
///
/// On an ineligible spec (trim starvation, empty fault-free set): sweep
/// grids are expected to pre-filter with the Corollary 3 in-degree bound,
/// so an error here is a grid-construction bug, not data.
pub fn run_spec_group(spec: &SimCellSpec, seeds: &[u64]) -> Vec<SimCellResult> {
    let graph = spec.topology.build();
    let n = graph.node_count();
    let width = seeds.len();
    let mut inputs = vec![0.0f64; n * width];
    for (g, &seed) in seeds.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            inputs[i * width + g] = rng.random_range(0.0..1.0);
        }
    }
    let adversary = spec.adversary;
    let mut batch =
        BatchedSimulation::new(&graph, &inputs, spec.fault_set(), spec.rule, width, |_| {
            adversary.make()
        })
        .expect("sweep grids must pre-filter ineligible specs");
    let out = batch
        .run(&RunConfig::bounded(spec.epsilon, spec.max_rounds))
        .expect("eligible specs cannot starve the trim");
    (0..width)
        .map(|g| SimCellResult {
            converged: out.converged[g],
            rounds: out.rounds_to_converge[g],
        })
        .collect()
}

/// Runs a grid of spec'd simulation cells, returning outcomes in grid
/// order. With `batch = false` every cell is its own width-1 group (the
/// reference dispatch path); with `batch = true` same-spec cells are
/// grouped in first-appearance order and each group runs as one
/// width-`G` [`BatchedSimulation`]. Either way groups fan across `jobs`
/// workers via [`run_cells`], and the output is byte-identical.
pub fn run_sim_cells(
    cells: &[SimCell],
    jobs: usize,
    batch: bool,
) -> Vec<SweepOutcome<SimCellResult>> {
    // Group cell *indices* by spec label, first-appearance order. The
    // dispatch path is the degenerate grouping where every cell is alone.
    let mut groups: Vec<(SimCellSpec, Vec<usize>)> = Vec::new();
    if batch {
        let mut labels: Vec<String> = Vec::new();
        for (idx, cell) in cells.iter().enumerate() {
            let label = cell.spec.group_label();
            match labels.iter().position(|l| *l == label) {
                Some(g) => groups[g].1.push(idx),
                None => {
                    labels.push(label);
                    groups.push((cell.spec.clone(), vec![idx]));
                }
            }
        }
    } else {
        groups.extend(
            cells
                .iter()
                .enumerate()
                .map(|(idx, cell)| (cell.spec.clone(), vec![idx])),
        );
    }
    // One sweep cell per group; lane seeds come from the member cells'
    // own coordinates (the group's synthetic coordinates exist only to
    // satisfy the runner — its seed argument is unused).
    let group_cells: Vec<SweepCell<'_, Vec<SimCellResult>>> = groups
        .iter()
        .enumerate()
        .map(|(g, (spec, members))| {
            let seeds: Vec<u64> = members
                .iter()
                .map(|&idx| cells[idx].coords.seed())
                .collect();
            let coords = CellCoords::new("sim-group")
                .with("g", g)
                .with("width", members.len());
            SweepCell::new(coords, move |_seed| run_spec_group(spec, &seeds))
        })
        .collect();
    let group_outcomes = run_cells(group_cells, jobs);
    // Scatter lane results back to grid order under the cells' own
    // coordinates and seeds.
    let mut results: Vec<Option<SimCellResult>> = vec![None; cells.len()];
    for (outcome, (_, members)) in group_outcomes.iter().zip(&groups) {
        for (lane, &idx) in members.iter().enumerate() {
            results[idx] = Some(outcome.value[lane]);
        }
    }
    cells
        .iter()
        .zip(results)
        .map(|(cell, value)| SweepOutcome {
            coords: cell.coords.clone(),
            seed: cell.coords.seed(),
            value: value.expect("every cell belongs to exactly one group"),
        })
        .collect()
}

/// Round cap of the convergence census (matches the Monte-Carlo grid's
/// `MC_BATCH_MAX_ROUNDS`; non-convergence is data, not an error).
pub const CENSUS_CONV_MAX_ROUNDS: usize = 200;

/// Convergence epsilon of the convergence census.
pub const CENSUS_CONV_EPSILON: f64 = 1e-6;

/// Builds the convergence-census grid: for every `(n, f)` with `n` in
/// `2..=max_n` satisfying the complete-graph eligibility `n − 1 > 2f`,
/// one cell per replica index `0..replicas` — coordinates
/// `census-conv[n=…,f=…,replica=…]`. All `replicas` cells of an `(n, f)`
/// share a spec (complete topology, first-`f` faults, trimmed-mean `f`,
/// max-pull attack — the attack that exercises the engine's shared-hull
/// plan path), so `--batch` collapses each `(n, f)` into one
/// width-`replicas` run.
pub fn census_conv_cells(max_n: usize, fs: &[usize], replicas: usize) -> Vec<SimCell> {
    let mut cells = Vec::new();
    for n in 2..=max_n {
        for &f in fs {
            if n < 2 || n.saturating_sub(1) <= 2 * f {
                continue;
            }
            let spec = SimCellSpec {
                topology: Topology::Complete(n),
                f,
                rule: FastRule::TrimmedMean(f),
                adversary: AdversarySpec::Pull { toward_max: true },
                epsilon: CENSUS_CONV_EPSILON,
                max_rounds: CENSUS_CONV_MAX_ROUNDS,
            };
            for replica in 0..replicas {
                let coords = CellCoords::new("census-conv")
                    .with("n", n)
                    .with("f", f)
                    .with("replica", replica);
                cells.push(SimCell {
                    coords,
                    spec: spec.clone(),
                });
            }
        }
    }
    cells
}

/// Runs the convergence census and renders one row per `(n, f)`:
/// replica count, how many replicas converged, and their mean
/// first-convergence round. Bit-identical for any `jobs` and for
/// `batch` on or off.
pub fn run_census_conv_sweep(
    max_n: usize,
    fs: &[usize],
    replicas: usize,
    jobs: usize,
    batch: bool,
) -> Table {
    let cells = census_conv_cells(max_n, fs, replicas);
    let outcomes = run_sim_cells(&cells, jobs, batch);
    let mut table = Table::new(["n", "f", "replicas", "converged", "mean_rounds"]);
    let mut idx = 0;
    while idx < outcomes.len() {
        let spec = &cells[idx].spec;
        let (n, f) = (spec.topology.node_count(), spec.f);
        let slice = &outcomes[idx..idx + replicas];
        let converged = slice.iter().filter(|o| o.value.converged).count();
        let rounds_total: usize = slice.iter().filter_map(|o| o.value.rounds).sum();
        table.row([
            n.to_string(),
            f.to_string(),
            replicas.to_string(),
            converged.to_string(),
            if converged == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", rounds_total as f64 / converged as f64)
            },
        ]);
        idx += replicas;
    }
    table
}

/// `sweep experiments` through the batch-aware entry point. The E-series
/// cells pin the **exact** simulation tier, and the workspace tiering
/// policy forbids silently switching a cell's tier, so grouping is inert
/// here by design: `batch` is accepted, documented, and verified to
/// leave the table byte-identical (see `tests`). It exists so the CLI
/// routes every sweep subcommand through one batching policy.
pub fn run_experiment_sweep_batched(
    ids: &[String],
    jobs: usize,
    _batch: bool,
) -> (
    Table,
    Vec<SweepOutcome<crate::experiments::ExperimentResult>>,
) {
    crate::sweep::run_experiment_sweep(ids, jobs)
}

/// [`run_experiment_sweep_batched`] with the serving tier's memo in
/// front. The memo key schema is the cell coordinate label, which never
/// mentions batch width, so warm hits stay byte-identical whether the
/// misses were computed batched or dispatched.
pub fn run_experiment_sweep_batched_memo(
    ids: &[String],
    jobs: usize,
    _batch: bool,
    memo: &mut dyn CellMemo<crate::experiments::ExperimentResult>,
) -> (
    Table,
    Vec<SweepOutcome<crate::experiments::ExperimentResult>>,
    usize,
    usize,
) {
    let (outcomes, hits, misses) = run_cells_memo(crate::sweep::experiment_cells(ids), jobs, memo);
    let mut table = Table::new(["id", "title", "rows", "pass"]);
    for outcome in &outcomes {
        table.row([
            outcome.value.id.to_string(),
            outcome.value.title.to_string(),
            outcome.value.table.len().to_string(),
            outcome.value.pass.to_string(),
        ]);
    }
    (table, outcomes, hits, misses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_cells(widths: &[(SimCellSpec, usize)]) -> Vec<SimCell> {
        let mut cells = Vec::new();
        for (which, (spec, count)) in widths.iter().enumerate() {
            for i in 0..*count {
                let coords = CellCoords::new("demo").with("s", which).with("i", i);
                cells.push(SimCell {
                    coords,
                    spec: spec.clone(),
                });
            }
        }
        cells
    }

    fn pull_spec(n: usize, f: usize) -> SimCellSpec {
        SimCellSpec {
            topology: Topology::Complete(n),
            f,
            rule: FastRule::TrimmedMean(f),
            adversary: AdversarySpec::Pull { toward_max: true },
            epsilon: 1e-6,
            max_rounds: 200,
        }
    }

    #[test]
    fn batched_results_are_identical_to_dispatch_at_any_job_count() {
        let cells = demo_cells(&[
            (pull_spec(9, 2), 5),
            (
                SimCellSpec {
                    adversary: AdversarySpec::Constant(1e9),
                    ..pull_spec(9, 2)
                },
                4,
            ),
            (pull_spec(7, 1), 3),
        ]);
        let reference = run_sim_cells(&cells, 1, false);
        for (jobs, batch) in [(1, true), (4, false), (4, true), (3, true)] {
            let got = run_sim_cells(&cells, jobs, batch);
            assert_eq!(got.len(), reference.len());
            for (r, g) in reference.iter().zip(&got) {
                assert_eq!(r.coords, g.coords, "jobs={jobs} batch={batch}");
                assert_eq!(r.seed, g.seed, "jobs={jobs} batch={batch}");
                assert_eq!(r.value, g.value, "jobs={jobs} batch={batch}");
            }
        }
    }

    #[test]
    fn grouping_preserves_first_appearance_order_with_interleaved_specs() {
        // Interleave two specs so grid order ≠ group order; scatter must
        // still restore grid order.
        let a = pull_spec(7, 1);
        let b = pull_spec(9, 2);
        let mut cells = Vec::new();
        for i in 0..4 {
            for (tag, spec) in [("a", &a), ("b", &b)] {
                cells.push(SimCell {
                    coords: CellCoords::new("mix").with("t", tag).with("i", i),
                    spec: spec.clone(),
                });
            }
        }
        let dispatched = run_sim_cells(&cells, 1, false);
        let batched = run_sim_cells(&cells, 1, true);
        for (d, g) in dispatched.iter().zip(&batched) {
            assert_eq!(d.coords, g.coords);
            assert_eq!(d.value, g.value);
        }
    }

    #[test]
    fn census_conv_sweep_is_batch_and_jobs_invariant() {
        let reference = run_census_conv_sweep(7, &[0, 1], 4, 1, false).to_string();
        for (jobs, batch) in [(1, true), (4, true), (4, false)] {
            assert_eq!(
                reference,
                run_census_conv_sweep(7, &[0, 1], 4, jobs, batch).to_string(),
                "jobs={jobs} batch={batch}"
            );
        }
        // Every eligible (n, f) converges under max-pull on a complete
        // graph well inside the cap.
        assert!(reference.contains("mean_rounds"));
        assert!(!reference.contains('-') || !reference.lines().skip(2).any(|l| l.contains(" - ")));
    }

    #[test]
    fn census_conv_grid_skips_ineligible_fault_bounds() {
        // n − 1 > 2f: at n = 4, f = 2 needs in-degree > 4 — excluded.
        let cells = census_conv_cells(4, &[0, 1, 2], 2);
        assert!(cells
            .iter()
            .all(|c| c.spec.topology.node_count().saturating_sub(1) > 2 * c.spec.f));
        // n ∈ {2,3,4}: f=0 eligible from n=2, f=1 from n=4, f=2 never.
        assert_eq!(cells.len(), (3 + 1) * 2);
    }

    #[test]
    fn spec_group_labels_separate_every_field() {
        let base = pull_spec(9, 2);
        let variants = [
            SimCellSpec {
                topology: Topology::Circulant { n: 9, degree: 6 },
                ..base.clone()
            },
            SimCellSpec {
                f: 1,
                rule: FastRule::TrimmedMean(1),
                ..base.clone()
            },
            SimCellSpec {
                rule: FastRule::TrimmedMidpoint(2),
                ..base.clone()
            },
            SimCellSpec {
                adversary: AdversarySpec::Pull { toward_max: false },
                ..base.clone()
            },
            SimCellSpec {
                epsilon: 1e-9,
                ..base.clone()
            },
            SimCellSpec {
                max_rounds: 100,
                ..base.clone()
            },
        ];
        for v in &variants {
            assert_ne!(v.group_label(), base.group_label(), "{v:?}");
        }
        assert_eq!(base.group_label(), base.clone().group_label());
    }

    #[test]
    fn experiment_sweep_batched_is_inert_and_identical() {
        let ids = vec!["E3".to_string()];
        let (plain, _) = crate::sweep::run_experiment_sweep(&ids, 1);
        let (batched, _) = run_experiment_sweep_batched(&ids, 1, true);
        assert_eq!(plain.to_string(), batched.to_string());
    }
}
