//! Terminal plots for convergence traces: Unicode sparklines and ASCII
//! log-scale charts.
//!
//! The paper's convergence claims are about the honest range
//! `U[t] − µ[t]` shrinking geometrically; a log-scale render makes the
//! per-round contraction factor visible as a straight line. Used by the
//! examples and the experiment artifacts.

const SPARK_LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// One-line Unicode sparkline of `values` mapped through `log10`
/// (non-positive values render as the lowest level).
///
/// # Examples
///
/// ```
/// use iabc_analysis::plot::log_sparkline;
///
/// let s = log_sparkline(&[100.0, 10.0, 1.0, 0.1]);
/// assert_eq!(s.chars().count(), 4);
/// ```
pub fn log_sparkline(values: &[f64]) -> String {
    let logs: Vec<Option<f64>> = values
        .iter()
        .map(|&v| (v > 0.0 && v.is_finite()).then(|| v.log10()))
        .collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for l in logs.iter().flatten() {
        lo = lo.min(*l);
        hi = hi.max(*l);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return SPARK_LEVELS[0].to_string().repeat(values.len());
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    logs.iter()
        .map(|l| match l {
            None => SPARK_LEVELS[0],
            Some(v) => {
                let t = ((v - lo) / span * (SPARK_LEVELS.len() - 1) as f64).round() as usize;
                SPARK_LEVELS[t.min(SPARK_LEVELS.len() - 1)]
            }
        })
        .collect()
}

/// Multi-row ASCII chart of one series on a log10 y-axis.
///
/// Renders `height` rows by `values.len()` columns (capped at `width`
/// columns by uniform subsampling), with a y-axis legend of the decade at
/// each border row. Rows are returned top-first.
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
pub fn log_chart(values: &[f64], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "chart needs positive dimensions");
    if values.is_empty() {
        return String::new();
    }
    // Subsample to at most `width` columns.
    let cols: Vec<f64> = if values.len() <= width {
        values.to_vec()
    } else {
        (0..width)
            .map(|c| values[c * (values.len() - 1) / (width - 1).max(1)])
            .collect()
    };
    let logs: Vec<Option<f64>> = cols
        .iter()
        .map(|&v| (v > 0.0 && v.is_finite()).then(|| v.log10()))
        .collect();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for l in logs.iter().flatten() {
        lo = lo.min(*l);
        hi = hi.max(*l);
    }
    if !lo.is_finite() {
        lo = 0.0;
        hi = 1.0;
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }
    let row_of = |l: f64| -> usize {
        let t = (l - lo) / (hi - lo);
        ((1.0 - t) * (height - 1) as f64).round() as usize
    };
    let mut grid = vec![vec![' '; cols.len()]; height];
    for (c, l) in logs.iter().enumerate() {
        if let Some(v) = l {
            grid[row_of(*v)][c] = '*';
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{hi:>8.1} |")
        } else if r == height - 1 {
            format!("{lo:>8.1} |")
        } else {
            format!("{:>8} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>8} +{}\n{:>8}  round 0 .. {}\n",
        "",
        "-".repeat(cols.len()),
        "",
        values.len().saturating_sub(1)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_is_monotone_for_geometric_decay() {
        let values: Vec<f64> = (0..10).map(|i| 100.0 * 0.5f64.powi(i)).collect();
        let s: Vec<char> = log_sparkline(&values).chars().collect();
        assert_eq!(s.len(), 10);
        for w in s.windows(2) {
            assert!(w[0] >= w[1], "levels must not increase: {s:?}");
        }
        assert_eq!(s[0], '█');
        assert_eq!(s[9], '▁');
    }

    #[test]
    fn sparkline_handles_zeros_and_constants() {
        assert_eq!(log_sparkline(&[0.0, 0.0]), "▁▁");
        let constant = log_sparkline(&[5.0, 5.0, 5.0]);
        assert_eq!(constant.chars().count(), 3);
        assert_eq!(log_sparkline(&[]), "");
    }

    #[test]
    fn chart_renders_requested_height() {
        let values: Vec<f64> = (0..30).map(|i| 10.0 * 0.8f64.powi(i)).collect();
        let chart = log_chart(&values, 40, 6);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 6 + 2, "6 rows + axis + label");
        assert!(lines[0].contains('|'));
        assert!(chart.contains('*'));
        // Decay: star in the top row appears before (left of) bottom-row stars.
        let top_col = lines[0].find('*').expect("top row has the max");
        let bottom_col = lines[5].rfind('*').expect("bottom row has the min");
        assert!(top_col < bottom_col);
    }

    #[test]
    fn chart_subsamples_wide_series() {
        let values: Vec<f64> = (0..500).map(|i| (i + 1) as f64).collect();
        let chart = log_chart(&values, 50, 4);
        let first = chart.lines().next().unwrap();
        assert!(first.chars().count() <= 50 + 11, "width respected: {first}");
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn chart_rejects_zero_height() {
        let _ = log_chart(&[1.0], 10, 0);
    }
}
