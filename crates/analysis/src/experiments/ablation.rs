//! E12 — ablation: the trimming in Algorithm 1 is load-bearing, and weight
//! choices trade convergence speed.
//!
//! Same workload (K7, f = 2) across update rules and adversaries:
//!
//! * `trimmed-mean` (Algorithm 1) — must converge and stay valid;
//! * `mean` (no trimming) — must **violate validity** under the constant
//!   attacker (this is what the paper's trimming buys);
//! * `trimmed-midpoint` — converges faster per round (α = 1/2);
//! * `weighted-trimmed-mean` — same guarantees, different α.

use iabc_core::rules::{Mean, TrimmedMean, TrimmedMidpoint, UpdateRule, WeightedTrimmedMean};
use iabc_graph::{generators, NodeSet};
use iabc_sim::adversary::{Adversary, ConstantAdversary, PullAdversary};
use iabc_sim::SimConfig;

use crate::table::Table;

use super::ExperimentResult;
use iabc_sim::Scenario;

struct RunStats {
    converged: bool,
    valid: bool,
    rounds: usize,
    final_value: f64,
}

fn run_rule(rule: &dyn UpdateRule, adversary: Box<dyn Adversary>) -> RunStats {
    let g = generators::complete(7);
    let inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 2.0, 2.0];
    let faults = NodeSet::from_indices(7, [5, 6]);
    let mut sim = Scenario::on(&g)
        .inputs(&inputs)
        .faults(faults)
        .rule(rule)
        .adversary(adversary)
        .synchronous()
        .expect("valid sim");
    let out = sim
        .run(&SimConfig {
            record_states: false,
            epsilon: 1e-6,
            max_rounds: 500,
        })
        .expect("run succeeds");
    RunStats {
        converged: out.converged,
        valid: out.validity.is_valid(),
        rounds: out.rounds,
        final_value: sim.states()[0],
    }
}

/// Runs experiment E12.
pub fn e12_ablation() -> ExperimentResult {
    let mut table = Table::new([
        "rule",
        "adversary",
        "converged",
        "valid",
        "rounds",
        "final value",
    ]);
    let mut pass = true;

    let weighted = WeightedTrimmedMean::new(2, 0.5).expect("0.5 in (0,1)");
    let rules: Vec<(&str, Box<dyn UpdateRule>)> = vec![
        ("trimmed-mean (Alg. 1)", Box::new(TrimmedMean::new(2))),
        ("mean (no trimming)", Box::new(Mean::new())),
        ("trimmed-midpoint", Box::new(TrimmedMidpoint::new(2))),
        ("weighted-trimmed-mean(0.5)", Box::new(weighted)),
    ];

    for (name, rule) in &rules {
        for (adv_name, adversary) in [
            (
                "constant(1e9)",
                Box::new(ConstantAdversary::new(1e9)) as Box<dyn Adversary>,
            ),
            (
                "pull-low",
                Box::new(PullAdversary::new(false)) as Box<dyn Adversary>,
            ),
        ] {
            let stats = run_rule(rule.as_ref(), adversary);
            let expectation_met = if *name == "mean (no trimming)" && adv_name == "constant(1e9)" {
                // The ablation point: no trimming => validity broken.
                !stats.valid
            } else if *name == "mean (no trimming)" {
                true // pull stays in-hull; plain mean may do anything, not asserted
            } else {
                stats.converged && stats.valid && (0.0..=4.0).contains(&stats.final_value)
            };
            pass &= expectation_met;
            table.row([
                name.to_string(),
                adv_name.to_string(),
                stats.converged.to_string(),
                stats.valid.to_string(),
                stats.rounds.to_string(),
                format!("{:.4}", stats.final_value),
            ]);
        }
    }

    ExperimentResult {
        id: "E12".into(),
        title: "Ablation: trimming is load-bearing; rule variants trade alpha for speed".into(),
        notes: vec![
            "workload: K7, f = 2, honest inputs in [0, 4], faulty nodes 5 and 6".into(),
            "expected: every trimmed rule converges validly; plain mean breaks validity under constant(1e9)".into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}
