//! X9 — adversary tournament: Theorem 3 means *no* adversary prevents
//! convergence on a satisfying graph; the tournament measures which
//! strategy delays it most.
//!
//! Every adversary in the standard roster (plus the polarizing/echo/
//! flip-flop additions) attacks Algorithm 1 on each satisfying workload.
//! Pass criteria: every single run converges with validity intact — the
//! full-information adversary can slow the iteration but never stop it or
//! drag it outside the honest hull. The per-adversary round counts rank
//! the strategies: the extremes attack (trimming discards honest extremes
//! alongside the planted ones, shrinking the information per round) and
//! the in-hull polarizing/echo attacks lead the slow-down table.

use iabc_core::rules::TrimmedMean;
use iabc_core::theorem1;
use iabc_graph::{generators, Digraph, NodeSet};
use iabc_sim::adversary::standard_roster;
use iabc_sim::SimConfig;

use crate::table::Table;

use super::ExperimentResult;
use iabc_sim::Scenario;

fn workloads() -> Vec<(&'static str, Digraph, usize, Vec<usize>)> {
    vec![
        ("K7", generators::complete(7), 2, vec![5, 6]),
        ("core(7,2)", generators::core_network(7, 2), 2, vec![0, 5]),
        ("chord(5,3)", generators::chord(5, 3), 1, vec![2]),
    ]
}

/// Runs experiment X9 (adversary tournament).
pub fn x9_adversary_tournament() -> ExperimentResult {
    let mut table = Table::new(["graph", "adversary", "rounds to 1e-6", "valid"]);
    let mut pass = true;
    let mut notes = Vec::new();

    for (name, g, f, faulty) in workloads() {
        debug_assert!(theorem1::check(&g, f).is_satisfied());
        let n = g.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| i as f64 * 7.0).collect();
        let rule = TrimmedMean::new(f);
        let config = SimConfig {
            record_states: false,
            epsilon: 1e-6,
            max_rounds: 50_000,
        };
        let mut worst: Option<(String, usize)> = None;
        for adversary in standard_roster((0.0, 7.0 * (n - 1) as f64)) {
            let label = adversary.name().to_string();
            let faults = NodeSet::from_indices(n, faulty.iter().copied());
            match Scenario::on(&g)
                .inputs(&inputs)
                .faults(faults)
                .rule(&rule)
                .adversary(adversary)
                .synchronous()
                .and_then(|mut sim| sim.run(&config))
            {
                Ok(out) => {
                    let ok = out.converged && out.validity.is_valid();
                    pass &= ok;
                    if !ok {
                        notes.push(format!(
                            "{name}/{label}: converged={} valid={}",
                            out.converged,
                            out.validity.is_valid()
                        ));
                    }
                    if worst.as_ref().is_none_or(|(_, r)| out.rounds > *r) {
                        worst = Some((label.clone(), out.rounds));
                    }
                    table.row([
                        name.to_string(),
                        label,
                        out.rounds.to_string(),
                        out.validity.is_valid().to_string(),
                    ]);
                }
                Err(e) => {
                    pass = false;
                    notes.push(format!("{name}/{label}: engine error {e}"));
                }
            }
        }
        if let Some((label, rounds)) = worst {
            notes.push(format!(
                "{name}: slowest adversary is {label} ({rounds} rounds)"
            ));
        }
    }

    notes.push(
        "Theorem 3 reproduced adversarially: convergence and validity under every roster \
         strategy; the slow-down leaders are the extremes attack (its outliers force the \
         trim to discard honest extremes) and the in-hull polarizing/echo attacks"
            .into(),
    );

    ExperimentResult {
        id: "X9".into(),
        title: "Adversary tournament: no strategy stops Algorithm 1 on satisfying graphs".into(),
        notes,
        artifacts: Vec::new(),
        table,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tournament_passes() {
        let r = x9_adversary_tournament();
        assert!(r.pass, "X9 failed:\n{}\n{:?}", r.table, r.notes);
    }

    #[test]
    fn tournament_covers_full_roster_per_graph() {
        let r = x9_adversary_tournament();
        let roster_size = standard_roster((0.0, 1.0)).len();
        assert_eq!(r.table.len(), 3 * roster_size);
    }
}
