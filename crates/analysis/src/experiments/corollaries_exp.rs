//! E4 / E5 — Corollaries 2 and 3, checked mechanically.

use iabc_core::{theorem1, Threshold};
use iabc_graph::{generators, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;

use super::ExperimentResult;

/// Runs experiment E4 (`n > 3f` is necessary).
///
/// Since adding edges only helps the condition (the `⇒` predicates are
/// monotone in the edge set), it suffices that the *complete* graph fails
/// whenever `n ≤ 3f`; every other graph on `n` nodes is a subgraph of it.
/// We also confirm random subgraphs directly.
pub fn e4_corollary2() -> ExperimentResult {
    let mut table = Table::new(["n", "f", "K_n verdict", "random-subgraph verdicts"]);
    let mut pass = true;
    let mut rng = StdRng::seed_from_u64(4);

    for f in 1..=3usize {
        for n in (2.max(3 * f - 2))..=(3 * f) {
            let complete_violated = !theorem1::check(&generators::complete(n), f).is_satisfied();
            let mut sample_violated = 0usize;
            const SAMPLES: usize = 5;
            for _ in 0..SAMPLES {
                let g = generators::erdos_renyi(n, 0.7, &mut rng);
                if !theorem1::check(&g, f).is_satisfied() {
                    sample_violated += 1;
                }
            }
            pass &= complete_violated && sample_violated == SAMPLES;
            table.row([
                n.to_string(),
                f.to_string(),
                if complete_violated {
                    "violated"
                } else {
                    "SATISFIED?!"
                }
                .to_string(),
                format!("{sample_violated}/{SAMPLES} violated"),
            ]);
        }
        // And the boundary case n = 3f + 1 must be satisfiable (K_n works).
        let n = 3 * f + 1;
        let ok = theorem1::check(&generators::complete(n), f).is_satisfied();
        pass &= ok;
        table.row([
            n.to_string(),
            f.to_string(),
            if ok {
                "satisfied (boundary)"
            } else {
                "VIOLATED?!"
            }
            .to_string(),
            "-".to_string(),
        ]);
    }

    ExperimentResult {
        id: "E4".into(),
        title: "Corollary 2: n must exceed 3f (complete graph = hardest case)".into(),
        notes: vec!["monotonicity: K_n violated implies every n-node graph violated".into()],
        artifacts: Vec::new(),
        table,
        pass,
    }
}

/// Runs experiment E5 (in-degree `≥ 2f + 1` is necessary).
///
/// For each `f`, build otherwise-rich graphs where one node's in-degree is
/// forced to `2f`; the checker must find a violation, and the minimal
/// witness isolates that node (`L = {i}` as in the Corollary 3 proof).
pub fn e5_corollary3() -> ExperimentResult {
    let mut table = Table::new([
        "base graph",
        "f",
        "deficient node in-degree",
        "verdict",
        "witness isolates node",
    ]);
    let mut pass = true;

    for f in 1..=2usize {
        let n = 3 * f + 3;
        // Start from the complete graph and prune node 0's in-edges to 2f.
        let mut g = generators::complete(n);
        let victim = NodeId::new(0);
        while g.in_degree(victim) > 2 * f {
            let u = g
                .in_neighbors(victim)
                .first()
                .expect("nonempty in-neighbourhood");
            g.remove_edge(u, victim);
        }
        let report = theorem1::check(&g, f);
        let violated = !report.is_satisfied();
        let isolates = report
            .witness()
            .map(|w| w.left.len() == 1 && w.left.contains(victim))
            .unwrap_or(false);
        pass &= violated && isolates;
        table.row([
            format!("K{n} minus in-edges of node 0"),
            f.to_string(),
            (2 * f).to_string(),
            if violated { "violated" } else { "SATISFIED?!" }.to_string(),
            isolates.to_string(),
        ]);

        // Boundary: restore one in-edge (in-degree 2f + 1) — the quick check
        // passes and, for these dense graphs, the full condition holds too.
        let mut g2 = generators::complete(n);
        while g2.in_degree(victim) > 2 * f + 1 {
            let u = g2
                .in_neighbors(victim)
                .first()
                .expect("nonempty in-neighbourhood");
            g2.remove_edge(u, victim);
        }
        let ok = theorem1::check(&g2, f).is_satisfied();
        pass &= ok;
        table.row([
            format!("K{n} with node 0 at in-degree 2f+1"),
            f.to_string(),
            (2 * f + 1).to_string(),
            if ok {
                "satisfied (boundary)"
            } else {
                "violated"
            }
            .to_string(),
            "-".to_string(),
        ]);
    }

    // The corollary must also hold under the asynchronous threshold: 3f.
    let f = 1usize;
    let g = generators::lollipop(8, 1); // tail node has in-degree 1 < 3f + 1
    let violated = !iabc_core::async_condition::check(&g, f).is_satisfied();
    pass &= violated;
    table.row([
        "lollipop(8, 1), async".to_string(),
        f.to_string(),
        "1".to_string(),
        if violated { "violated" } else { "SATISFIED?!" }.to_string(),
        "-".to_string(),
    ]);
    let _ = Threshold::asynchronous(f); // threshold used via async_condition

    ExperimentResult {
        id: "E5".into(),
        title: "Corollary 3: every node needs at least 2f+1 in-neighbours".into(),
        notes: vec![
            "witness shape matches the proof: L = {deficient node}, F hides half its in-neighbours"
                .into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}
