//! E2 — Theorem 2 validity, swept.
//!
//! On graphs satisfying the condition, Algorithm 1 must keep `U[t]`
//! non-increasing and `µ[t]` non-decreasing (Equation 1) against **every**
//! adversary. We sweep the §6 families against the full adversary roster
//! with multiple seeded input vectors and audit every trace.

use iabc_core::rules::TrimmedMean;
use iabc_graph::{generators, Digraph, NodeSet};
use iabc_sim::adversary::standard_roster;
use iabc_sim::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::table::Table;

use super::ExperimentResult;
use iabc_sim::Scenario;

const SEEDS: u64 = 5;
const MAX_ROUNDS: usize = 200;

fn sweep_family(name: &str, g: &Digraph, f: usize, fault_set: &NodeSet) -> (Vec<String>, bool) {
    let n = g.node_count();
    let rule = TrimmedMean::new(f);
    let mut runs = 0usize;
    let mut valid_runs = 0usize;
    let adversary_count = standard_roster((0.0, 1.0)).len();
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<f64> = (0..n).map(|_| rng.random_range(0.0..1.0)).collect();
        for adversary in standard_roster((0.0, 1.0)) {
            runs += 1;
            let mut sim = Scenario::on(g)
                .inputs(&inputs)
                .faults(fault_set.clone())
                .rule(&rule)
                .adversary(adversary)
                .synchronous()
                .expect("valid simulation inputs");
            let config = SimConfig {
                record_states: false,
                epsilon: 1e-9,
                max_rounds: MAX_ROUNDS,
            };
            match sim.run(&config) {
                Ok(out) if out.validity.is_valid() => valid_runs += 1,
                _ => {}
            }
        }
    }
    let ok = runs == valid_runs;
    (
        vec![
            name.to_string(),
            f.to_string(),
            format!("{} adversaries x {SEEDS} seeds", adversary_count),
            format!("{valid_runs}/{runs} valid"),
        ],
        ok,
    )
}

/// Runs experiment E2.
pub fn e2_validity() -> ExperimentResult {
    let mut table = Table::new(["graph", "f", "sweep", "validity"]);
    let mut pass = true;

    let cases: Vec<(&str, Digraph, usize, NodeSet)> = vec![
        (
            "K7",
            generators::complete(7),
            2,
            NodeSet::from_indices(7, [5, 6]),
        ),
        (
            "core_network(7, 2)",
            generators::core_network(7, 2),
            2,
            NodeSet::from_indices(7, [0, 6]), // one clique node + one outer node faulty
        ),
        (
            "core_network(9, 2)",
            generators::core_network(9, 2),
            2,
            NodeSet::from_indices(9, [7, 8]),
        ),
        (
            "chord(5, 3)  [§6.3]",
            generators::chord(5, 3),
            1,
            NodeSet::from_indices(5, [2]),
        ),
        (
            "chord(4, 3)  [§6.3]",
            generators::chord(4, 3),
            1,
            NodeSet::from_indices(4, [3]),
        ),
    ];
    for (name, g, f, faults) in cases {
        let (row, ok) = sweep_family(name, &g, f, &faults);
        pass &= ok;
        table.row(row);
    }

    ExperimentResult {
        id: "E2".into(),
        title: "Theorem 2 validity: U non-increasing, mu non-decreasing under every adversary".into(),
        notes: vec![
            "adversary roster: conforming, constant(+100), random, extremes, pull-low, pull-high, nan-bomb, crash, broadcast-extremes".into(),
            format!("each run capped at {MAX_ROUNDS} rounds; audit tolerance 1e-9"),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}
