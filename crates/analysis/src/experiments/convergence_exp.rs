//! E3 — Theorem 3 convergence, measured.
//!
//! On every condition-satisfying graph, Algorithm 1 must drive
//! `U[t] − µ[t] → 0` regardless of the adversary. We measure rounds-to-ε
//! under the stealthiest adversary in the roster (pull-to-minimum, which
//! maximally slows convergence without ever leaving the honest hull) and
//! under the benign baseline, for each §6 family.

use iabc_core::rules::TrimmedMean;
use iabc_core::theorem1;
use iabc_graph::{generators, Digraph, NodeSet};
use iabc_sim::adversary::{Adversary, ConformingAdversary, PullAdversary};
use iabc_sim::SimConfig;

use crate::table::Table;

use super::ExperimentResult;
use iabc_sim::Scenario;

const EPSILON: f64 = 1e-6;
const MAX_ROUNDS: usize = 5_000;

fn measure(
    g: &Digraph,
    f: usize,
    fault_set: &NodeSet,
    adversary: Box<dyn Adversary>,
) -> Option<usize> {
    let n = g.node_count();
    let inputs: Vec<f64> = (0..n).map(|i| (i as f64 * 17.0) % 10.0).collect();
    let rule = TrimmedMean::new(f);
    let mut sim = Scenario::on(g)
        .inputs(&inputs)
        .faults(fault_set.clone())
        .rule(&rule)
        .adversary(adversary)
        .synchronous()
        .ok()?;
    let out = sim
        .run(&SimConfig {
            record_states: false,
            epsilon: EPSILON,
            max_rounds: MAX_ROUNDS,
        })
        .ok()?;
    out.converged.then_some(out.rounds)
}

/// Runs experiment E3.
pub fn e3_convergence() -> ExperimentResult {
    let mut table = Table::new([
        "graph",
        "f",
        "satisfies Thm 1",
        "rounds (benign)",
        "rounds (pull)",
    ]);
    let mut pass = true;

    let cases: Vec<(String, Digraph, usize, NodeSet)> = vec![
        (
            "K4".into(),
            generators::complete(4),
            1,
            NodeSet::from_indices(4, [3]),
        ),
        (
            "K7".into(),
            generators::complete(7),
            2,
            NodeSet::from_indices(7, [5, 6]),
        ),
        (
            "K10".into(),
            generators::complete(10),
            3,
            NodeSet::from_indices(10, [7, 8, 9]),
        ),
        (
            "core_network(4, 1)".into(),
            generators::core_network(4, 1),
            1,
            NodeSet::from_indices(4, [3]),
        ),
        (
            "core_network(7, 2)".into(),
            generators::core_network(7, 2),
            2,
            NodeSet::from_indices(7, [5, 6]),
        ),
        (
            "core_network(10, 2)".into(),
            generators::core_network(10, 2),
            2,
            NodeSet::from_indices(10, [8, 9]),
        ),
        (
            "chord(5, 3)  [§6.3]".into(),
            generators::chord(5, 3),
            1,
            NodeSet::from_indices(5, [4]),
        ),
    ];

    for (name, g, f, faults) in cases {
        let satisfied = theorem1::check(&g, f).is_satisfied();
        let benign = measure(&g, f, &faults, Box::new(ConformingAdversary::new()));
        let pulled = measure(&g, f, &faults, Box::new(PullAdversary::new(false)));
        pass &= satisfied && benign.is_some() && pulled.is_some();
        table.row([
            name,
            f.to_string(),
            if satisfied { "yes" } else { "NO" }.to_string(),
            benign.map_or("did not converge".into(), |r| r.to_string()),
            pulled.map_or("did not converge".into(), |r| r.to_string()),
        ]);
    }

    ExperimentResult {
        id: "E3".into(),
        title: "Theorem 3 convergence: rounds to eps on satisfying graphs".into(),
        notes: vec![
            format!("epsilon = {EPSILON}, cap {MAX_ROUNDS} rounds; inputs spread over [0, 10)"),
            "pull adversary reports the honest minimum on every edge (stealthy worst case)".into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}
