//! X4 — the condition zoo: Theorem 1 vs the robustness hierarchy vs raw
//! connectivity, on one panel of graphs.
//!
//! The paper's §6.2 headline is that **connectivity does not characterize**
//! iterative consensus: the `d`-dimensional hypercube has vertex
//! connectivity `d` (which classical, non-iterative consensus would happily
//! accept for `f < d/2`) yet fails Theorem 1 for every `f ≥ 1`. This
//! experiment places Theorem 1 next to the related conditions from the
//! literature the paper cites, and machine-checks the two provable
//! implications along the way:
//!
//! * `(2f+1)`-robust ⟹ Theorem 1 satisfied;
//! * Theorem 1 satisfied ⟹ `(f+1, f+1)`-robust (the LeBlanc et al. \[17\]
//!   necessary condition for the *weaker* malicious-broadcast adversary —
//!   anything achievable against point-to-point Byzantine is achievable
//!   against broadcast-malicious, so the implication must hold).

use iabc_core::{robustness, theorem1};
use iabc_graph::{algorithms, generators, Digraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;

use super::ExperimentResult;

struct ZooRow {
    name: String,
    graph: Digraph,
    f: usize,
}

fn panel() -> Vec<ZooRow> {
    let mut rng = StdRng::seed_from_u64(44);
    vec![
        ZooRow {
            name: "K7".into(),
            graph: generators::complete(7),
            f: 2,
        },
        ZooRow {
            name: "core(7,2)".into(),
            graph: generators::core_network(7, 2),
            f: 2,
        },
        ZooRow {
            name: "chord(5,3)".into(),
            graph: generators::chord(5, 3),
            f: 1,
        },
        ZooRow {
            name: "chord(7,5)".into(),
            graph: generators::chord(7, 5),
            f: 2,
        },
        ZooRow {
            name: "hypercube(3)".into(),
            graph: generators::hypercube(3),
            f: 1,
        },
        ZooRow {
            name: "wheel(8)".into(),
            graph: generators::wheel(8),
            f: 1,
        },
        ZooRow {
            name: "grown(9,1)".into(),
            graph: iabc_core::construction::grow_satisfying(
                9,
                1,
                iabc_core::construction::Attachment::Uniform,
                &mut rng,
            ),
            f: 1,
        },
        ZooRow {
            name: "tree(2,2)".into(),
            graph: generators::balanced_tree(2, 2),
            f: 1,
        },
    ]
}

/// Runs experiment X4 (condition zoo + implication checks).
pub fn x4_condition_zoo() -> ExperimentResult {
    let mut table = Table::new([
        "graph",
        "f",
        "theorem1",
        "(2f+1)-robust",
        "(f+1,f+1)-robust",
        "connectivity",
        "min in-deg",
    ]);
    let mut pass = true;
    let mut notes = Vec::new();

    let mut hypercube_refutes_connectivity = false;
    for row in panel() {
        let f = row.f;
        let sat = theorem1::check(&row.graph, f).is_satisfied();
        let strong = robustness::is_robust(&row.graph, 2 * f + 1, 1);
        let weak = robustness::is_robust(&row.graph, f + 1, f + 1);
        let conn = algorithms::vertex_connectivity(&row.graph);
        let min_in = row.graph.min_in_degree();

        // Provable implications must hold on every instance.
        if strong && !sat {
            pass = false;
            notes.push(format!(
                "{}: (2f+1)-robust but Theorem 1 violated?!",
                row.name
            ));
        }
        if sat && !weak {
            pass = false;
            notes.push(format!(
                "{}: Theorem 1 holds but not (f+1,f+1)-robust?!",
                row.name
            ));
        }
        if row.name.starts_with("hypercube") && conn > 2 * f && !sat {
            hypercube_refutes_connectivity = true;
        }

        table.row([
            row.name,
            f.to_string(),
            if sat { "satisfied" } else { "violated" }.to_string(),
            strong.to_string(),
            weak.to_string(),
            conn.to_string(),
            min_in.to_string(),
        ]);
    }
    // The §6.2 point must reproduce: connectivity 2f+1 yet condition violated.
    pass &= hypercube_refutes_connectivity;
    notes.push(
        "hypercube(3), f=1: connectivity 3 = 2f+1 yet Theorem 1 fails — \
         connectivity does not characterize iterative consensus (§6.2)"
            .into(),
    );

    // Random sweep: the implications hold on every sampled graph.
    let mut rng = StdRng::seed_from_u64(4242);
    let mut checked = 0usize;
    for _ in 0..40 {
        let n = 5 + (checked % 3); // 5..=7
        let g = generators::erdos_renyi(n, 0.55, &mut rng);
        for f in 0..=1usize {
            let sat = theorem1::check(&g, f).is_satisfied();
            let strong = robustness::is_robust(&g, 2 * f + 1, 1);
            let weak = robustness::is_robust(&g, f + 1, f + 1);
            if strong && !sat {
                pass = false;
                notes.push(format!(
                    "random n={n} f={f}: (2f+1)-robust but violated: {g:?}"
                ));
            }
            if sat && !weak {
                pass = false;
                notes.push(format!(
                    "random n={n} f={f}: satisfied but not (f+1,f+1)-robust: {g:?}"
                ));
            }
            checked += 1;
        }
    }
    notes.push(format!(
        "implications verified on {checked} random (graph, f) samples"
    ));

    ExperimentResult {
        id: "X4".into(),
        title: "Condition zoo: Theorem 1 vs robustness hierarchy vs connectivity".into(),
        notes,
        artifacts: Vec::new(),
        table,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_passes() {
        let r = x4_condition_zoo();
        assert!(r.pass, "X4 failed:\n{}\n{:?}", r.table, r.notes);
    }

    #[test]
    fn panel_covers_satisfying_and_violating_instances() {
        let rows = panel();
        let verdicts: Vec<bool> = rows
            .iter()
            .map(|r| theorem1::check(&r.graph, r.f).is_satisfied())
            .collect();
        assert!(verdicts.iter().any(|&v| v), "panel needs satisfying graphs");
        assert!(verdicts.iter().any(|&v| !v), "panel needs violating graphs");
    }
}
