//! E10 — Lemma 5 convergence-rate bound vs measured contraction.
//!
//! For each satisfying graph we run Algorithm 1 under the stealthy pull
//! adversary, re-enact the proof of Theorem 3's phase decomposition on the
//! recorded states, and compare the measured per-phase contraction with the
//! Lemma 5 factor `(1 − α^{l(s)}/2)`. The bound must hold on every phase
//! (it is typically very loose — that is the expected "shape": measured ≪
//! bound). We also report the fitted per-round geometric rate and, for
//! context, the `f = 0` spectral baseline `|λ₂|`.

use iabc_core::alpha::algorithm1_alpha;
use iabc_core::rules::TrimmedMean;
use iabc_graph::{generators, Digraph, NodeSet};
use iabc_sim::adversary::PullAdversary;
use iabc_sim::SimConfig;

use crate::contraction::compare_phases;
use crate::convergence::fit_geometric_rate;
use crate::spectral::estimate_lambda2;
use crate::table::Table;

use super::ExperimentResult;
use iabc_sim::Scenario;

fn rate_case(name: &str, g: &Digraph, f: usize, fault_set: NodeSet) -> (Vec<String>, bool) {
    let n = g.node_count();
    let inputs: Vec<f64> = (0..n).map(|i| ((i * 23) % 11) as f64).collect();
    let rule = TrimmedMean::new(f);
    let mut sim = Scenario::on(g)
        .inputs(&inputs)
        .faults(fault_set.clone())
        .rule(&rule)
        .adversary(Box::new(PullAdversary::new(true)))
        .synchronous()
        .expect("valid sim");
    let out = sim
        .run(&SimConfig {
            record_states: true,
            epsilon: 1e-9,
            max_rounds: 2_000,
        })
        .expect("run succeeds");
    let alpha = algorithm1_alpha(g, f).expect("degree bound satisfied");
    let states: Vec<Vec<f64>> = out
        .trace
        .records()
        .iter()
        .map(|r| r.states.clone())
        .collect();
    let phases = compare_phases(g, &states, &fault_set, f, alpha);
    let all_hold = !phases.is_empty() && phases.iter().all(|p| p.holds());
    let worst = phases
        .iter()
        .map(|p| p.measured_factor / p.bound_factor)
        .fold(0.0f64, f64::max);
    let fitted = fit_geometric_rate(&out.trace.ranges()).unwrap_or(f64::NAN);
    let lambda2 = estimate_lambda2(g, 1500);
    let row = vec![
        name.to_string(),
        format!("{alpha:.4}"),
        phases.len().to_string(),
        format!("{all_hold}"),
        format!("{worst:.3}"),
        format!("{fitted:.4}"),
        format!("{lambda2:.4}"),
    ];
    (row, all_hold && out.converged)
}

/// Runs experiment E10.
pub fn e10_rate() -> ExperimentResult {
    let mut table = Table::new([
        "graph",
        "alpha",
        "phases",
        "bound holds",
        "worst measured/bound",
        "fitted rate/round",
        "lambda2 (f=0 baseline)",
    ]);
    let mut pass = true;

    let cases: Vec<(&str, Digraph, usize, NodeSet)> = vec![
        (
            "K7, f=2",
            generators::complete(7),
            2,
            NodeSet::from_indices(7, [5, 6]),
        ),
        (
            "core_network(7,2), f=2",
            generators::core_network(7, 2),
            2,
            NodeSet::from_indices(7, [5, 6]),
        ),
        (
            "core_network(10,2), f=2",
            generators::core_network(10, 2),
            2,
            NodeSet::from_indices(10, [8, 9]),
        ),
        (
            "chord(5,3), f=1",
            generators::chord(5, 3),
            1,
            NodeSet::from_indices(5, [4]),
        ),
        (
            "K4, f=1",
            generators::complete(4),
            1,
            NodeSet::from_indices(4, [3]),
        ),
    ];
    for (name, g, f, faults) in cases {
        let (row, ok) = rate_case(name, &g, f, faults);
        pass &= ok;
        table.row(row);
    }

    ExperimentResult {
        id: "E10".into(),
        title: "Lemma 5: measured per-phase contraction never exceeds (1 - alpha^l / 2)".into(),
        notes: vec![
            "phases re-enact the Theorem 3 proof: half-range split, l(s) = propagation length"
                .into(),
            "the bound is intentionally loose; 'worst measured/bound' << 1 is the expected shape"
                .into(),
            "lambda2 is the fault-free linear-averaging rate, for context".into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}
