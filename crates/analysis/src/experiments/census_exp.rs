//! X8 — exhaustive small-graph census.
//!
//! Every labeled digraph on `n ≤ 4` nodes is enumerated and checked against
//! Theorem 1; the corollaries are then verified against the *entire*
//! population rather than samples. Highlights:
//!
//! * `n ≤ 3f` ⟹ zero satisfying graphs (Corollary 2, exhaustively);
//! * at `n = 4, f = 1` exactly **one** graph satisfies the condition — `K₄`
//!   with all 12 edges — settling the §6.1 minimal-size question exactly at
//!   this size (minimum = `n(2f+1)` directed edges);
//! * every satisfying graph respects Corollary 3.

use crate::census::census;
use crate::table::Table;

use super::ExperimentResult;

/// Runs experiment X8 (exhaustive census, `n ≤ 4`).
pub fn x8_census() -> ExperimentResult {
    let mut table = Table::new([
        "n",
        "f",
        "graphs",
        "satisfying",
        "min edges",
        "Cor. 3 holds",
    ]);
    let mut pass = true;
    let mut notes = Vec::new();

    for (n, f) in [(2usize, 0usize), (3, 0), (4, 0), (2, 1), (3, 1), (4, 1)] {
        let row = census(n, f);
        // Corollary 2 exhaustively: no satisfying graphs when n <= 3f.
        if n <= 3 * f && row.satisfying != 0 {
            pass = false;
            notes.push(format!(
                "n={n} f={f}: {} graphs satisfy despite n <= 3f",
                row.satisfying
            ));
        }
        pass &= row.corollary3_holds;
        table.row([
            n.to_string(),
            f.to_string(),
            row.graphs.to_string(),
            row.satisfying.to_string(),
            row.min_edges
                .map(|m| m.to_string())
                .unwrap_or_else(|| "-".into()),
            row.corollary3_holds.to_string(),
        ]);

        if (n, f) == (4, 1) {
            let unique = row.satisfying == 1 && row.min_edges == Some(12);
            pass &= unique;
            notes.push(format!(
                "n=4, f=1: {} satisfying graph(s), min edges {:?} — K4 is the unique \
                 solution, so the §6.1 minimum at n = 3f+1 is exactly n(2f+1) = 12",
                row.satisfying, row.min_edges
            ));
        }
    }

    ExperimentResult {
        id: "X8".into(),
        title: "Exhaustive census of all labeled digraphs (n <= 4) vs the corollaries".into(),
        notes,
        artifacts: Vec::new(),
        table,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_experiment_passes() {
        let r = x8_census();
        assert!(r.pass, "X8 failed:\n{}\n{:?}", r.table, r.notes);
    }

    #[test]
    fn census_covers_both_fault_bounds() {
        let r = x8_census();
        let fs: std::collections::HashSet<String> =
            r.table.rows().iter().map(|row| row[1].clone()).collect();
        assert!(fs.contains("0") && fs.contains("1"));
    }
}
