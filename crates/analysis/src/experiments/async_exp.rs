//! E9 — Section 7 asynchronous generalization, executed.

use iabc_core::async_condition;
use iabc_core::rules::TrimmedMean;
use iabc_graph::{generators, NodeSet};
use iabc_sim::adversary::{ConstantAdversary, ExtremesAdversary};
use iabc_sim::async_engine::{MaxDelayScheduler, RandomScheduler};
use iabc_sim::{RunConfig, Scenario, Termination};

use crate::table::Table;

use super::ExperimentResult;

/// Runs experiment E9.
pub fn e9_async() -> ExperimentResult {
    let mut table = Table::new(["scenario", "expectation", "observed"]);
    let mut pass = true;

    // (a) The async condition boundary n > 5f on complete graphs.
    for (n, f, expect) in [
        (10usize, 2usize, false),
        (11, 2, true),
        (5, 1, false),
        (6, 1, true),
    ] {
        let verdict = async_condition::check(&generators::complete(n), f).is_satisfied();
        pass &= verdict == expect;
        table.row([
            format!("async condition on K{n}, f = {f}"),
            (if expect {
                "satisfied (n > 5f)"
            } else {
                "violated (n <= 5f)"
            })
            .to_string(),
            (if verdict { "satisfied" } else { "violated" }).to_string(),
        ]);
    }

    // (b) Degree bound |N⁻| ≥ 3f + 1.
    {
        let g = generators::chord(8, 3); // in-degree 3 < 4 = 3f + 1 for f = 1
        let verdict = async_condition::check(&g, 1).is_satisfied();
        pass &= !verdict;
        table.row([
            "async condition on chord(8, 3), f = 1".to_string(),
            "violated (in-degree 3 < 3f+1)".to_string(),
            (if verdict { "satisfied?!" } else { "violated" }).to_string(),
        ]);
    }

    // (c) Partially asynchronous runs: bounded delay B ∈ {1, 2, 5}, both
    // adversarial max-delay and random schedulers, must converge inside the
    // initial hull.
    for b in [1usize, 2, 5] {
        let g = generators::complete(6);
        let inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 2.0];
        let faults = NodeSet::from_indices(6, [5]);
        let rule = TrimmedMean::new(1);
        let mut sim = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults.clone())
            .rule(&rule)
            .adversary(Box::new(ExtremesAdversary::new(100.0)))
            .delay_bounded(Box::new(MaxDelayScheduler), b)
            .expect("valid sim");
        let out = sim
            .run(&RunConfig::bounded(1e-6, 20_000))
            .expect("run succeeds");
        let inside = sim.states()[0] >= 0.0 && sim.states()[0] <= 4.0;
        pass &= out.converged && inside;
        table.row([
            format!("delay-bounded K6, f = 1, B = {b}, max-delay scheduler"),
            "converges within initial hull".to_string(),
            format!("converged: {} in {} ticks", out.converged, out.rounds),
        ]);

        let mut sim = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults)
            .rule(&rule)
            .adversary(Box::new(ExtremesAdversary::new(100.0)))
            .delay_bounded(Box::new(RandomScheduler::new(b as u64)), b)
            .expect("valid sim");
        let out = sim
            .run(&RunConfig::bounded(1e-6, 20_000))
            .expect("run succeeds");
        pass &= out.converged;
        table.row([
            format!("delay-bounded K6, f = 1, B = {b}, random scheduler"),
            "converges".to_string(),
            format!("converged: {} in {} ticks", out.converged, out.rounds),
        ]);
    }

    // (d) Totally asynchronous withhold-and-trim: K11 (in-degree 10 ≥ 3f+1)
    // converges; K7 (in-degree 6 = 3f) freezes.
    {
        let g = generators::complete(11);
        let mut inputs: Vec<f64> = (0..11).map(|i| i as f64 % 5.0).collect();
        inputs[9] = 0.0;
        inputs[10] = 0.0;
        let faults = NodeSet::from_indices(11, [9, 10]);
        let mut sim = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults)
            .adversary(Box::new(ConstantAdversary::new(1e9)))
            .withholding(2)
            .expect("valid sim");
        let out = sim
            .run(&RunConfig::bounded(1e-6, 10_000))
            .expect("run succeeds");
        pass &= out.converged && out.validity.is_valid();
        table.row([
            "withholding K11, f = 2 (in-degree 10 >= 3f+1)".to_string(),
            "converges".to_string(),
            format!("converged: {} in {} rounds", out.converged, out.rounds),
        ]);
    }
    {
        let g = generators::complete(7);
        let inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 0.0, 0.0];
        let faults = NodeSet::from_indices(7, [5, 6]);
        let mut sim = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults)
            .adversary(Box::new(ConstantAdversary::new(1e9)))
            .withholding(2)
            .expect("valid sim");
        // The engine proves the freeze: the driver reports Halted instead
        // of burning the round budget.
        let out = sim
            .run(&RunConfig::bounded(1e-6, 10_000))
            .expect("run succeeds");
        let frozen = out.termination == Termination::Halted
            && sim.states()[0] == 0.0
            && sim.honest_range() >= 4.0;
        pass &= frozen;
        table.row([
            "withholding K7, f = 2 (in-degree 6 = 3f)".to_string(),
            "halts (survivor set empty)".to_string(),
            format!(
                "termination: {:?} after {} round(s), range {}",
                out.termination,
                out.rounds,
                sim.honest_range()
            ),
        ]);
    }

    ExperimentResult {
        id: "E9".into(),
        title: "§7 asynchronous: 2f+1 threshold, n > 5f, |N-| >= 3f+1; bounded-delay and withholding executions".into(),
        notes: vec![
            "delay-bounded model: per-message delay < B, freshest-value mailboxes (Bertsekas-Tsitsiklis partial asynchrony)".into(),
            "withholding model: adversary silences up to f in-neighbours per node per round; node trims f low + f high of the rest".into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}
