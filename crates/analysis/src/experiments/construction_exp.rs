//! X7 — satisfying-by-construction growth and the §6.1 minimality
//! conjecture, probed mechanically.
//!
//! Part 1 cross-validates [`iabc_core::construction`]: graphs grown with
//! `2f + 1` bidirectional attachments from a complete seed must satisfy
//! Theorem 1 at every size (here checked exactly; the preservation argument
//! makes it true for all sizes).
//!
//! Part 2 interrogates the paper's conjecture that the core network with
//! `n = 3f + 1` is edge-minimal among undirected graphs supporting
//! iterative consensus:
//!
//! * for `f = 1, n = 4` the conjecture is a *theorem*: Corollary 3 forces
//!   in-degree ≥ 3 at all 4 nodes, so K₄ (the core network) is the only
//!   candidate at all — verified by exhaustive edge-removal;
//! * for larger cases we report criticality probes: every undirected pair
//!   of the `n = 3f + 1` core network must be critical (no slack), while
//!   core networks with `n > 3f + 1` have removable pairs.

use iabc_core::construction::{grow_satisfying, Attachment};
use iabc_core::{minimality, theorem1};
use iabc_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;

use super::ExperimentResult;

/// Runs experiment X7 (construction + minimality).
pub fn x7_construction() -> ExperimentResult {
    let mut table = Table::new(["probe", "instance", "result", "expected", "ok"]);
    let mut pass = true;
    let mut notes = Vec::new();
    let mut rng = StdRng::seed_from_u64(77);

    // Part 1: growth always satisfies the condition.
    for attachment in [
        Attachment::Uniform,
        Attachment::Preferential,
        Attachment::Lowest,
    ] {
        for f in 1..=2usize {
            let n = 3 * f + 4;
            let g = grow_satisfying(n, f, attachment, &mut rng);
            let sat = theorem1::check(&g, f).is_satisfied();
            pass &= sat;
            table.row([
                "growth".to_string(),
                format!("{attachment:?} n={n} f={f}"),
                if sat { "satisfied" } else { "VIOLATED" }.to_string(),
                "satisfied".to_string(),
                sat.to_string(),
            ]);
        }
    }

    // Part 2a: the f = 1, n = 4 conjecture instance, exhaustively.
    let k4 = generators::core_network(4, 1);
    let minimal = minimality::is_edge_minimal(&k4, 1);
    pass &= minimal;
    table.row([
        "minimality".to_string(),
        "core(4,1) = K4, f=1".to_string(),
        if minimal { "edge-minimal" } else { "HAS SLACK" }.to_string(),
        "edge-minimal".to_string(),
        minimal.to_string(),
    ]);
    notes.push(
        "f=1, n=4: Corollary 3 forces in-degree 3 at every node, so K4 is the unique \
         undirected candidate — the conjecture holds outright at this size"
            .into(),
    );

    // Part 2b: at n = 3f + 1 every undirected pair is critical.
    for f in 1..=2usize {
        let n = 3 * f + 1;
        let g = generators::core_network(n, f);
        let pairs = minimality::critical_undirected_pairs(&g, f);
        let undirected_edges = g.edge_count() / 2;
        let all_critical = pairs.len() == undirected_edges;
        pass &= all_critical;
        table.row([
            "criticality".to_string(),
            format!("core({n},{f})"),
            format!("{}/{} pairs critical", pairs.len(), undirected_edges),
            "all critical".to_string(),
            all_critical.to_string(),
        ]);
    }

    // Part 2c: one node above the minimum, slack appears.
    let g = generators::core_network(5, 1);
    let report = minimality::probe(&g, 1).expect("core(5,1) satisfies Theorem 1");
    let has_slack = report.pruned_edges < report.edges;
    pass &= has_slack;
    table.row([
        "slack".to_string(),
        "core(5,1)".to_string(),
        format!(
            "{} -> {} edges after pruning",
            report.edges, report.pruned_edges
        ),
        "pruning removes edges".to_string(),
        has_slack.to_string(),
    ]);

    ExperimentResult {
        id: "X7".into(),
        title: "Growth preserves Theorem 1; §6.1 minimality conjecture probes".into(),
        notes,
        artifacts: Vec::new(),
        table,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_experiment_passes() {
        let r = x7_construction();
        assert!(r.pass, "X7 failed:\n{}\n{:?}", r.table, r.notes);
    }

    #[test]
    fn probes_cover_growth_and_minimality() {
        let r = x7_construction();
        let probes: std::collections::HashSet<String> =
            r.table.rows().iter().map(|row| row[0].clone()).collect();
        for p in ["growth", "minimality", "criticality", "slack"] {
            assert!(probes.contains(p), "missing probe {p}");
        }
    }
}
