//! Executable regeneration of every checkable artifact in the paper.
//!
//! The paper is a theory paper — no empirical tables — so its "evaluation"
//! is the set of theorems, corollaries, worked applications (§6) and
//! figures. Each experiment here regenerates one of them as a table of
//! measured rows plus a pass/fail verdict; `EXPERIMENTS.md` records the
//! output. See DESIGN.md §4 for the full index.
//!
//! | ID | Paper artifact |
//! |----|----------------|
//! | E1 | Theorem 1 necessity: proof adversary freezes violating graphs |
//! | E2 | Theorem 2 validity under every adversary |
//! | E3 | Theorem 3 convergence + rounds-to-ε |
//! | E4 | Corollary 2: `n > 3f` |
//! | E5 | Corollary 3: in-degree `≥ 2f + 1` |
//! | E6 | §6.1 core networks (+ edge-criticality probe) |
//! | E7 | §6.2 hypercubes + Figure 3 |
//! | E8 | §6.3 chord networks (paper's exact witness) |
//! | E9 | §7 asynchronous: bounds, bounded-delay and withholding runs |
//! | E10 | Lemma 5 rate bound vs measured contraction |
//! | E11 | Figures 1–3 geometry as DOT renders |
//! | E12 | Ablation: trimming and weighting variants |

mod ablation;
mod applications;
mod async_exp;
mod baselines_exp;
mod census_exp;
mod condition_zoo;
mod construction_exp;
mod convergence_exp;
mod corollaries_exp;
mod extensions;
mod extensions2;
mod necessity;
mod rate;
mod scaling;
mod tournament;
mod validity;

pub use ablation::e12_ablation;
pub use applications::{
    dimension_cut_witness, e11_figures, e6_core_network, e7_hypercube, e8_chord,
    falsifier_consistency_sweep,
};
pub use async_exp::e9_async;
pub use baselines_exp::x5_baselines;
pub use census_exp::x8_census;
pub use condition_zoo::x4_condition_zoo;
pub use construction_exp::x7_construction;
pub use convergence_exp::e3_convergence;
pub use corollaries_exp::{e4_corollary2, e5_corollary3};
pub use extensions::{x1_local_fault_model, x2_matrix_representation, x3_model_comparison};
pub use extensions2::{x10_fault_models, x11_dynamic_topology, x12_quantized, x13_vector};
pub use necessity::e1_necessity;
pub use rate::e10_rate;
pub use scaling::x6_scaling;
pub use tournament::x9_adversary_tournament;
pub use validity::e2_validity;

use crate::table::Table;

/// Output of one experiment: a table of rows, free-form notes, optional
/// file artifacts (e.g. DOT figures), and an overall verdict.
#[derive(Debug)]
pub struct ExperimentResult {
    /// Stable identifier (`"E1"`, ...). Owned so results can round-trip
    /// through the serving tier's content-addressed store.
    pub id: String,
    /// One-line description tying the experiment to the paper artifact.
    pub title: String,
    /// The regenerated rows.
    pub table: Table,
    /// Additional context (parameters, caveats).
    pub notes: Vec<String>,
    /// Artifacts to write to disk, as `(file name, content)` pairs.
    pub artifacts: Vec<(String, String)>,
    /// `true` iff every checked expectation from the paper held.
    pub pass: bool,
}

/// Runs every paper experiment (E1–E12) in order. This is what the
/// `experiments` binary prints and what the integration suite asserts on.
pub fn run_all() -> Vec<ExperimentResult> {
    vec![
        e1_necessity(),
        e2_validity(),
        e3_convergence(),
        e4_corollary2(),
        e5_corollary3(),
        e6_core_network(),
        e7_hypercube(),
        e8_chord(),
        e9_async(),
        e10_rate(),
        e11_figures(),
        e12_ablation(),
    ]
}

/// Runs the extension experiments (X1–X7; DESIGN.md §5) — tooling beyond
/// the paper: the f-local fault model, the matrix representation, the
/// broadcast/omission model comparison, the condition zoo, the baseline
/// faceoff, the scaling study, and the construction/minimality probes.
pub fn run_extensions() -> Vec<ExperimentResult> {
    vec![
        x1_local_fault_model(),
        x2_matrix_representation(),
        x3_model_comparison(),
        x4_condition_zoo(),
        x5_baselines(),
        x6_scaling(),
        x7_construction(),
        x8_census(),
        x9_adversary_tournament(),
        x10_fault_models(),
        x11_dynamic_topology(),
        x12_quantized(),
        x13_vector(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_pass() {
        for result in run_all() {
            assert!(
                result.pass,
                "{} ({}) failed:\n{}\nnotes: {:?}",
                result.id, result.title, result.table, result.notes
            );
        }
    }

    #[test]
    fn experiment_ids_are_unique_and_ordered() {
        let results = run_all();
        let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            vec!["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"]
        );
    }

    #[test]
    fn all_extension_experiments_pass() {
        for result in run_extensions() {
            assert!(
                result.pass,
                "{} ({}) failed:\n{}\nnotes: {:?}",
                result.id, result.title, result.table, result.notes
            );
        }
    }

    #[test]
    fn extension_ids_are_x_prefixed() {
        let results = run_extensions();
        let ids: Vec<&str> = results.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            vec!["X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X9", "X10", "X11", "X12", "X13"]
        );
    }
}
