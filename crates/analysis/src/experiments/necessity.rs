//! E1 — Theorem 1 necessity, executed.
//!
//! For each graph that *violates* the condition, plant the proof's inputs
//! (`L = m`, `R = M`, `C` mid-range), attach the proof's adversary
//! ([`SplitBrainAdversary`]), run Algorithm 1, and confirm both sides stay
//! frozen at their inputs forever — the execution the paper's contradiction
//! argument constructs.

use iabc_core::rules::TrimmedMean;
use iabc_core::theorem1;
use iabc_graph::{generators, Digraph};
use iabc_sim::adversary::SplitBrainAdversary;

use crate::table::Table;

use super::ExperimentResult;
use iabc_sim::Scenario;

const ROUNDS: usize = 200;
const M_LOW: f64 = 0.0;
const M_HIGH: f64 = 1.0;

pub(super) fn freeze_case(name: &str, g: &Digraph, f: usize) -> (Vec<String>, bool) {
    let Some(witness) = theorem1::find_violation(g, f) else {
        return (
            vec![
                name.to_string(),
                f.to_string(),
                "-".into(),
                "graph unexpectedly satisfies the condition".into(),
            ],
            false,
        );
    };
    let n = g.node_count();
    let mut inputs = vec![(M_LOW + M_HIGH) / 2.0; n];
    for v in witness.left.iter() {
        inputs[v.index()] = M_LOW;
    }
    for v in witness.right.iter() {
        inputs[v.index()] = M_HIGH;
    }
    let rule = TrimmedMean::new(f);
    let adversary = SplitBrainAdversary::from_witness(&witness, M_LOW, M_HIGH, 0.5);
    let mut sim = Scenario::on(g)
        .inputs(&inputs)
        .faults(witness.fault_set.clone())
        .rule(&rule)
        .adversary(Box::new(adversary))
        .synchronous()
        .expect("valid simulation inputs");
    let mut frozen = true;
    for _ in 0..ROUNDS {
        if sim.step().is_err() {
            frozen = false;
            break;
        }
        frozen &= witness
            .left
            .iter()
            .all(|v| sim.states()[v.index()] == M_LOW)
            && witness
                .right
                .iter()
                .all(|v| sim.states()[v.index()] == M_HIGH);
        if !frozen {
            break;
        }
    }
    let range = sim.honest_range();
    let row = vec![
        name.to_string(),
        f.to_string(),
        witness.to_string(),
        format!(
            "range after {ROUNDS} rounds: {range:.3} (initial {:.3}); frozen: {frozen}",
            M_HIGH - M_LOW
        ),
    ];
    (row, frozen && range >= M_HIGH - M_LOW)
}

/// Runs experiment E1.
pub fn e1_necessity() -> ExperimentResult {
    let mut table = Table::new(["graph", "f", "witness partition", "outcome"]);
    let mut pass = true;

    let cases: Vec<(&str, Digraph, usize)> = vec![
        ("chord(7, 5)  [§6.3]", generators::chord(7, 5), 2),
        ("hypercube(3) [§6.2]", generators::hypercube(3), 1),
        ("hypercube(4)", generators::hypercube(4), 1),
        ("K6 (n = 3f)", generators::complete(6), 2),
        (
            "bridged_cliques(4, 1)",
            generators::bridged_cliques(4, 1),
            1,
        ),
    ];
    for (name, g, f) in cases {
        let (row, ok) = freeze_case(name, &g, f);
        pass &= ok;
        table.row(row);
    }

    ExperimentResult {
        id: "E1".into(),
        title: "Theorem 1 necessity: the proof adversary freezes every violating graph".into(),
        notes: vec![
            format!(
                "inputs: L = {M_LOW}, R = {M_HIGH}, C = mid; adversary sends m− / M+ / mid per the proof"
            ),
            format!("each case run for {ROUNDS} rounds of Algorithm 1"),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}
