//! X6 — scaling study: rounds-to-ε as the network grows.
//!
//! Theorem 3's convergence proof is constructive but its bound (Lemma 5:
//! contraction `(1 − αˡ/2)` every propagation phase) degrades quickly with
//! `n` — `α` shrinks with in-degree and `l` can reach `n − f − 1`. This
//! experiment measures how the *actual* rounds-to-ε scale across the
//! paper's families, under the strongest stealthy adversary in the roster
//! (in-hull polarization), and contrasts the measurement with the
//! worst-case analytical bound.

use iabc_core::rules::TrimmedMean;
use iabc_core::{alpha, theorem1};
use iabc_graph::{generators, Digraph, NodeSet};
use iabc_sim::adversary::PolarizingAdversary;
use iabc_sim::SimConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;

use super::ExperimentResult;
use iabc_sim::Scenario;

fn workload(name: &str, graph: Digraph, f: usize) -> (String, Digraph, usize) {
    (name.to_string(), graph, f)
}

/// Runs experiment X6 (scaling of rounds-to-ε).
pub fn x6_scaling() -> ExperimentResult {
    let mut table = Table::new([
        "family",
        "n",
        "f",
        "rounds to 1e-6",
        "mean contraction/round",
        "Lemma 5 bound (rounds)",
    ]);
    let mut pass = true;
    let mut notes = Vec::new();
    let mut rng = StdRng::seed_from_u64(66);

    let mut cases: Vec<(String, Digraph, usize)> = Vec::new();
    for n in [4usize, 7, 10, 13] {
        cases.push(workload("complete", generators::complete(n), 1));
        if n >= 4 {
            cases.push(workload("core-network", generators::core_network(n, 1), 1));
        }
        cases.push(workload(
            "grown-uniform",
            iabc_core::construction::grow_satisfying(
                n,
                1,
                iabc_core::construction::Attachment::Uniform,
                &mut rng,
            ),
            1,
        ));
    }
    cases.push(workload("chord", generators::chord(5, 3), 1));

    for (family, g, f) in cases {
        debug_assert!(
            theorem1::check(&g, f).is_satisfied(),
            "{family} must satisfy"
        );
        let n = g.node_count();
        // Spread inputs over [0, 100]; the last node is faulty.
        let inputs: Vec<f64> = (0..n).map(|i| 100.0 * i as f64 / (n - 1) as f64).collect();
        let faults = NodeSet::from_indices(n, [n - 1]);
        let rule = TrimmedMean::new(f);
        let config = SimConfig {
            record_states: false,
            epsilon: 1e-6,
            max_rounds: 50_000,
        };
        let outcome = match Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults)
            .rule(&rule)
            .adversary(Box::new(PolarizingAdversary::new()))
            .synchronous()
            .and_then(|mut sim| sim.run(&config))
        {
            Ok(o) => o,
            Err(e) => {
                pass = false;
                notes.push(format!("{family} n={n}: engine error {e}"));
                continue;
            }
        };
        if !(outcome.converged && outcome.validity.is_valid()) {
            pass = false;
            notes.push(format!(
                "{family} n={n}: converged={} valid={}",
                outcome.converged,
                outcome.validity.is_valid()
            ));
        }
        let per_round = if outcome.rounds > 0 {
            (outcome.final_range.max(1e-12) / 100.0).powf(1.0 / outcome.rounds as f64)
        } else {
            0.0
        };
        let bound = alpha::algorithm1_alpha(&g, f)
            .ok()
            .map(|a| {
                let l = alpha::worst_case_propagation_length(n, f);
                alpha::phases_to_epsilon(a, l, 100.0, 1e-6) * l
            })
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into());
        table.row([
            family,
            n.to_string(),
            f.to_string(),
            outcome.rounds.to_string(),
            format!("{per_round:.4}"),
            bound,
        ]);
    }

    notes.push(
        "measured rounds grow mildly with n while the worst-case Lemma 5 bound \
         explodes — the bound is sound but loose (as the paper's proof-driven \
         analysis predicts)"
            .into(),
    );

    // Artifact: the log-scale contraction curve of one representative run.
    let mut artifacts = Vec::new();
    {
        let g = generators::core_network(10, 1);
        let inputs: Vec<f64> = (0..10).map(|i| 100.0 * i as f64 / 9.0).collect();
        let faults = NodeSet::from_indices(10, [9]);
        let rule = TrimmedMean::new(1);
        if let Ok(out) = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults)
            .rule(&rule)
            .adversary(Box::new(PolarizingAdversary::new()))
            .synchronous()
            .and_then(|mut sim| {
                sim.run(&SimConfig {
                    record_states: false,
                    epsilon: 1e-6,
                    max_rounds: 10_000,
                })
            })
        {
            let chart = crate::plot::log_chart(&out.trace.ranges(), 72, 10);
            artifacts.push((
                "x6_core10_contraction.txt".to_string(),
                format!(
                    "core-network(10, f=1), polarizing adversary: honest range per round \
                     (log10 scale)\n\n{chart}"
                ),
            ));
        }
    }

    ExperimentResult {
        id: "X6".into(),
        title: "Scaling: measured rounds-to-ε vs the Lemma 5 worst-case bound".into(),
        notes,
        artifacts,
        table,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_passes() {
        let r = x6_scaling();
        assert!(r.pass, "X6 failed:\n{}\n{:?}", r.table, r.notes);
    }

    #[test]
    fn table_covers_all_families() {
        let r = x6_scaling();
        let families: std::collections::HashSet<String> =
            r.table.rows().iter().map(|row| row[0].clone()).collect();
        for f in ["complete", "core-network", "grown-uniform", "chord"] {
            assert!(families.contains(f), "missing family {f}");
        }
    }
}
