//! X10–X13 — second wave of extension experiments (DESIGN.md §5).
//!
//! * **X10** — generalized fault models: adversary structures change the
//!   condition verdict (fault-location knowledge can restore possibility
//!   on the paper's §6.3 counterexample), and the structure-*oblivious*
//!   Algorithm 1 does not automatically cash in the structure-aware
//!   possibility — the gap between condition and algorithm is shown live.
//! * **X11** — time-varying topologies: per-round validity, dwell-based
//!   convergence through violating interludes, one-shot repair, and
//!   random edge-fade with an in-degree floor.
//! * **X12** — quantized Algorithm 1: validity is exact on the lattice and
//!   the honest range lands at (or below) one quantum.
//! * **X13** — vector states: coordinate-wise Algorithm 1 keeps the
//!   honest bounding box per coordinate but can leave the convex hull of
//!   the honest input vectors (the Vaidya–Garg boundary).

use iabc_core::fault_model::{check_model, AdversaryStructure, FaultModel};
use iabc_core::quantized::{quantize_inputs, QuantizedTrimmedMean, Rounding};
use iabc_core::rules::TrimmedMean;
use iabc_core::theorem1;
use iabc_graph::{generators, NodeId, NodeSet};
use iabc_sim::adversary::{ExtremesAdversary, SplitBrainAdversary};
use iabc_sim::dynamic::{
    sample_edge_drops, RoundRobinSchedule, StaticSchedule, SwitchOnceSchedule, TopologySchedule,
};
use iabc_sim::vector::{CornerPullAdversary, VectorSimConfig};
use iabc_sim::SimConfig;

use crate::table::Table;

use super::ExperimentResult;
use iabc_sim::Scenario;

/// Runs extension experiment X10 (generalized fault models).
pub fn x10_fault_models() -> ExperimentResult {
    let mut table = Table::new(["graph", "model", "verdict", "expected", "note"]);
    let mut pass = true;
    let chord7 = generators::chord(7, 5);
    let k7 = generators::complete(7);

    let rack56 = FaultModel::Structure(
        AdversaryStructure::new(7, vec![NodeSet::from_indices(7, [5, 6])]).expect("universe 7"),
    );
    let two_racks = FaultModel::Structure(
        AdversaryStructure::new(
            7,
            vec![
                NodeSet::from_indices(7, [0, 1]),
                NodeSet::from_indices(7, [2, 3]),
            ],
        )
        .expect("universe 7"),
    );
    let uniform2 = FaultModel::Structure(AdversaryStructure::uniform(7, 2));

    let cases: Vec<(&str, &iabc_graph::Digraph, FaultModel, bool, &str)> = vec![
        (
            "chord(7,5)",
            &chord7,
            FaultModel::Total(2),
            false,
            "paper §6.3",
        ),
        (
            "chord(7,5)",
            &chord7,
            uniform2.clone(),
            false,
            "explicit uniform structure ≡ f-total",
        ),
        (
            "chord(7,5)",
            &chord7,
            rack56.clone(),
            true,
            "fault-location knowledge restores possibility",
        ),
        ("K7", &k7, FaultModel::Total(2), true, "n > 3f"),
        (
            "K7",
            &k7,
            two_racks,
            true,
            "two 2-node racks, weaker than f-total(2)",
        ),
        (
            "K7",
            &k7,
            FaultModel::Local(2),
            true,
            "coverage-local condition",
        ),
    ];
    for (gname, g, model, expected, why) in cases {
        let report = check_model(g, &model);
        let ok = report.is_satisfied() == expected;
        if let Some(w) = report.witness() {
            pass &= iabc_core::fault_model::verify_model(w, g, &model);
        }
        pass &= ok;
        table.row([
            gname.to_string(),
            model.to_string(),
            if report.is_satisfied() {
                "satisfied"
            } else {
                "violated"
            }
            .to_string(),
            if expected { "satisfied" } else { "violated" }.to_string(),
            why.to_string(),
        ]);
    }

    // The gap between condition and algorithm: under the rack structure
    // chord(7,5) satisfies the generalized condition, but the paper's
    // structure-oblivious Algorithm 1 (trim f = 2) is still frozen by the
    // f-total witness adversary realized inside the structure (F = {5,6}).
    // The paper's literal §6.3 witness is used (its fault set {5,6} is the
    // rack, so the adversary is feasible under the structure).
    let mut notes = vec![
        "Coverage semantics: A ⇒𝔽 B iff some node of B has an in-slice in A no feasible \
         fault set covers; Total(f) reproduces the paper's threshold f + 1."
            .to_string(),
    ];
    {
        let w = iabc_core::Witness {
            fault_set: NodeSet::from_indices(7, [5, 6]),
            left: NodeSet::from_indices(7, [0, 2]),
            center: NodeSet::with_universe(7),
            right: NodeSet::from_indices(7, [1, 3, 4]),
        };
        pass &= w.verify(&chord7, 2, iabc_core::Threshold::synchronous(2));
        let (m, m_cap) = (0.0, 1.0);
        let mut inputs = vec![0.5; 7];
        for v in w.left.iter() {
            inputs[v.index()] = m;
        }
        for v in w.right.iter() {
            inputs[v.index()] = m_cap;
        }
        let rule = TrimmedMean::new(2);
        let adv = SplitBrainAdversary::from_witness(&w, m, m_cap, 0.5);
        let mut sim = Scenario::on(&chord7)
            .inputs(&inputs)
            .faults(w.fault_set.clone())
            .rule(&rule)
            .adversary(Box::new(adv))
            .synchronous()
            .expect("valid sim");
        for _ in 0..100 {
            sim.step().expect("step");
        }
        let frozen = sim.honest_range() >= m_cap - m;
        pass &= frozen;
        table.row([
            "chord(7,5)".to_string(),
            "rack {5,6} + oblivious Algorithm 1".to_string(),
            if frozen { "frozen" } else { "converged" }.to_string(),
            "frozen".to_string(),
            "condition-level possibility needs a structure-aware rule".to_string(),
        ]);

        // ...and the structure-aware rule closes the gap: same graph, same
        // adversary, same fault set — trimming the coverable prefix instead
        // of a fixed f converges.
        use iabc_core::fault_model::ModelTrimmedMean;

        let rack =
            AdversaryStructure::new(7, vec![NodeSet::from_indices(7, [5, 6])]).expect("universe 7");
        let aware = ModelTrimmedMean::new(FaultModel::Structure(rack));
        let adv = SplitBrainAdversary::from_witness(&w, m, m_cap, 0.5);
        let mut sim = Scenario::on(&chord7)
            .inputs(&inputs)
            .faults(w.fault_set.clone())
            .adversary(Box::new(adv))
            .model_aware(&aware)
            .expect("valid sim");
        let out = sim.run(&SimConfig::default()).expect("run");
        pass &= out.converged && out.validity.is_valid();
        table.row([
            "chord(7,5)".to_string(),
            "rack {5,6} + structure-aware rule".to_string(),
            if out.converged {
                format!("converged in {} rounds", out.rounds)
            } else {
                "frozen".to_string()
            },
            "converged".to_string(),
            "coverable-prefix trimming cashes in the possibility".to_string(),
        ]);
        notes.push(
            "The generalized condition being satisfied does NOT mean the f-total Algorithm 1 \
             succeeds — but ModelTrimmedMean (trim the maximal coverable prefix per end) does: \
             the same adversary that freezes the oblivious rule forever loses to the \
             structure-aware rule."
                .to_string(),
        );
    }

    ExperimentResult {
        id: "X10".into(),
        title: "Generalized fault models: adversary structures and the condition".into(),
        table,
        notes,
        artifacts: Vec::new(),
        pass,
    }
}

/// Runs extension experiment X11 (time-varying topologies).
pub fn x11_dynamic_topology() -> ExperimentResult {
    let mut table = Table::new([
        "schedule",
        "adversary",
        "converged",
        "valid",
        "rounds",
        "note",
    ]);
    let mut pass = true;
    let f = 2usize;
    let inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 2.0, 2.0];
    let faults = NodeSet::from_indices(7, [5, 6]);
    let rule = TrimmedMean::new(f);

    // Static violating graph + proof adversary: frozen (the E1 baseline,
    // replayed through the dynamic engine).
    {
        let bad = generators::chord(7, 5);
        let w = theorem1::find_violation(&bad, f).expect("violated");
        let schedule = StaticSchedule::new(bad);
        let mut planted = vec![0.5; 7];
        for v in w.left.iter() {
            planted[v.index()] = 0.0;
        }
        for v in w.right.iter() {
            planted[v.index()] = 1.0;
        }
        let adv = SplitBrainAdversary::from_witness(&w, 0.0, 1.0, 0.5);
        let mut sim = Scenario::on(schedule.graph_at(1))
            .inputs(&planted)
            .faults(w.fault_set.clone())
            .rule(&rule)
            .adversary(Box::new(adv))
            .dynamic(&schedule)
            .expect("valid sim");
        let out = sim
            .run(&SimConfig {
                max_rounds: 120,
                ..SimConfig::default()
            })
            .expect("run");
        pass &= !out.converged && out.validity.is_valid();
        table.row([
            "static chord(7,5)".to_string(),
            "split-brain".to_string(),
            out.converged.to_string(),
            out.validity.is_valid().to_string(),
            out.rounds.to_string(),
            "violating graph freezes (Theorem 1)".to_string(),
        ]);
    }

    // Round-robin between two satisfying graphs.
    {
        let schedule = RoundRobinSchedule::new(
            vec![generators::complete(7), generators::core_network(7, 2)],
            1,
        )
        .expect("schedule");
        let mut sim = Scenario::on(schedule.graph_at(1))
            .inputs(&inputs)
            .faults(faults.clone())
            .rule(&rule)
            .adversary(Box::new(ExtremesAdversary::new(1e6)))
            .dynamic(&schedule)
            .expect("valid sim");
        let out = sim.run(&SimConfig::default()).expect("run");
        pass &= out.converged && out.validity.is_valid();
        table.row([
            "K7 ⇄ core(7,2), dwell 1".to_string(),
            "extremes".to_string(),
            out.converged.to_string(),
            out.validity.is_valid().to_string(),
            out.rounds.to_string(),
            "both graphs satisfy Theorem 1".to_string(),
        ]);
    }

    // Violating interludes with satisfying dwells.
    {
        let schedule =
            RoundRobinSchedule::new(vec![generators::chord(7, 5), generators::complete(7)], 4)
                .expect("schedule");
        let mut sim = Scenario::on(schedule.graph_at(1))
            .inputs(&inputs)
            .faults(faults.clone())
            .rule(&rule)
            .adversary(Box::new(ExtremesAdversary::new(1e4)))
            .dynamic(&schedule)
            .expect("valid sim");
        let out = sim.run(&SimConfig::default()).expect("run");
        pass &= out.converged && out.validity.is_valid();
        table.row([
            "chord(7,5) ⇄ K7, dwell 4".to_string(),
            "extremes".to_string(),
            out.converged.to_string(),
            out.validity.is_valid().to_string(),
            out.rounds.to_string(),
            "dwell ≥ n − f − 1 on K7 contracts every cycle".to_string(),
        ]);
    }

    // One-shot repair: violating prefix, then K7.
    {
        let bad = generators::chord(7, 5);
        let w = theorem1::find_violation(&bad, f).expect("violated");
        let schedule = SwitchOnceSchedule::new(bad, generators::complete(7), 40).expect("schedule");
        let mut planted = vec![0.5; 7];
        for v in w.left.iter() {
            planted[v.index()] = 0.0;
        }
        for v in w.right.iter() {
            planted[v.index()] = 1.0;
        }
        let adv = SplitBrainAdversary::from_witness(&w, 0.0, 1.0, 0.5);
        let mut sim = Scenario::on(schedule.graph_at(1))
            .inputs(&planted)
            .faults(w.fault_set.clone())
            .rule(&rule)
            .adversary(Box::new(adv))
            .dynamic(&schedule)
            .expect("valid sim");
        for _ in 0..40 {
            sim.step().expect("step");
        }
        let frozen_before = sim.honest_range() >= 1.0;
        let out = sim.run(&SimConfig::default()).expect("run");
        pass &= frozen_before && out.converged && out.validity.is_valid();
        table.row([
            "chord(7,5) → K7 at round 40".to_string(),
            "split-brain".to_string(),
            out.converged.to_string(),
            out.validity.is_valid().to_string(),
            out.rounds.to_string(),
            "repair unfreezes the run".to_string(),
        ]);
    }

    // Random edge fade with the validity floor 2f.
    {
        let base = generators::complete(8);
        let schedule = sample_edge_drops(&base, 0.3, 2 * f, 7, 64).expect("schedule");
        let floor_ok = schedule
            .distinct_graphs()
            .iter()
            .all(|g| g.min_in_degree() >= 2 * f);
        let inputs8 = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 0.0];
        let faults8 = NodeSet::from_indices(8, [6, 7]);
        let mut sim = Scenario::on(schedule.graph_at(1))
            .inputs(&inputs8)
            .faults(faults8)
            .rule(&rule)
            .adversary(Box::new(ExtremesAdversary::new(1e5)))
            .dynamic(&schedule)
            .expect("valid sim");
        let out = sim.run(&SimConfig::default()).expect("run");
        pass &= floor_ok && out.converged && out.validity.is_valid();
        table.row([
            "K8 with 30% edge fade, floor 2f".to_string(),
            "extremes".to_string(),
            out.converged.to_string(),
            out.validity.is_valid().to_string(),
            out.rounds.to_string(),
            format!("floor held on all {} sampled rounds", schedule.len()),
        ]);
    }

    ExperimentResult {
        id: "X11".into(),
        title: "Time-varying topologies: validity per round, convergence per dwell".into(),
        table,
        notes: vec![
            "Validity needs only in-degree ≥ 2f in each round's graph; convergence is \
             guaranteed when the schedule dwells ≥ n − f − 1 rounds on a Theorem-1-satisfying \
             graph infinitely often (Lemma 5 applies per dwell window)."
                .to_string(),
        ],
        artifacts: Vec::new(),
        pass,
    }
}

/// Runs extension experiment X12 (quantized Algorithm 1).
pub fn x12_quantized() -> ExperimentResult {
    let mut table = Table::new([
        "quantum",
        "rounding",
        "rounds",
        "final range",
        "≤ quantum",
        "valid",
    ]);
    let mut pass = true;
    let g = generators::complete(7);
    let f = 2usize;
    let faults = NodeSet::from_indices(7, [5, 6]);
    // Deliberately awkward sensor readings (≈√2, ≈e, ≈π) that no quantum
    // divides exactly.
    #[allow(clippy::approx_constant)]
    let raw_inputs = [0.03, 1.41, 2.72, 3.14, 4.0, 2.0, 2.0];

    for &quantum in &[0.25, 1.0 / 16.0, 1.0 / 256.0] {
        for rounding in [Rounding::Nearest, Rounding::Floor] {
            let rule = QuantizedTrimmedMean::new(f, quantum, rounding).expect("valid quantum");
            let inputs = quantize_inputs(&raw_inputs, quantum, rounding);
            let mut sim = Scenario::on(&g)
                .inputs(&inputs)
                .faults(faults.clone())
                .rule(&rule)
                .adversary(Box::new(ExtremesAdversary::new(1e6)))
                .synchronous()
                .expect("valid sim");
            let out = sim
                .run(&SimConfig {
                    epsilon: quantum,
                    max_rounds: 2_000,
                    record_states: true,
                })
                .expect("run");
            let at_floor = out.final_range <= quantum + 1e-12;
            pass &= at_floor && out.validity.is_valid();
            table.row([
                format!("{quantum}"),
                rounding.to_string(),
                out.rounds.to_string(),
                format!("{:.6}", out.final_range),
                at_floor.to_string(),
                out.validity.is_valid().to_string(),
            ]);
        }
    }

    ExperimentResult {
        id: "X12".into(),
        title: "Quantized Algorithm 1: exact validity, convergence to the quantization floor"
            .into(),
        table,
        notes: vec![
            "States live on the lattice k·quantum; rounding inside the survivor hull keeps \
             Theorem 2 exact, while convergence stops at one quantum instead of 0 (module docs \
             of iabc_core::quantized)."
                .to_string(),
        ],
        artifacts: Vec::new(),
        pass,
    }
}

/// Runs extension experiment X13 (vector-valued consensus).
pub fn x13_vector() -> ExperimentResult {
    let mut table = Table::new(["scenario", "converged", "box valid", "rounds", "note"]);
    let mut pass = true;
    let g = generators::complete(7);
    let faults = NodeSet::from_indices(7, [5, 6]);
    let rule = TrimmedMean::new(2);

    // 2-D fusion under a coordinate-wise extremes attack.
    {
        use iabc_sim::vector::CoordinateWise;
        let inputs: Vec<Vec<f64>> = vec![
            vec![0.0, 10.0],
            vec![1.0, 11.0],
            vec![2.0, 12.0],
            vec![3.0, 13.0],
            vec![4.0, 14.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
        ];
        let adv = CoordinateWise::new(vec![
            Box::new(ExtremesAdversary::new(1e6)),
            Box::new(ExtremesAdversary::new(1e6)),
        ]);
        let mut sim = Scenario::on(&g)
            .inputs(&inputs.concat())
            .faults(faults.clone())
            .rule(&rule)
            .vector_adversary(Box::new(adv))
            .vector(2)
            .expect("valid sim");
        let out = sim.run(&VectorSimConfig::default()).expect("run");
        pass &= out.converged && out.box_validity;
        let v = sim.state_of(NodeId::new(0));
        pass &= (0.0..=4.0).contains(&v[0]) && (10.0..=14.0).contains(&v[1]);
        table.row([
            "2-D fusion, extremes per axis".to_string(),
            out.converged.to_string(),
            out.box_validity.to_string(),
            out.rounds.to_string(),
            format!("agreed near ({:.3}, {:.3}), inside the box", v[0], v[1]),
        ]);
    }

    // Off-hull demonstration: honest inputs on the diagonal.
    {
        let inputs: Vec<Vec<f64>> = (0..7)
            .map(|i| {
                let x = if i >= 5 { 2.0 } else { i as f64 };
                vec![x, x]
            })
            .collect();
        let mut sim = Scenario::on(&g)
            .inputs(&inputs.concat())
            .faults(faults.clone())
            .rule(&rule)
            .vector_adversary(Box::new(CornerPullAdversary::new()))
            .vector(2)
            .expect("valid sim");
        let out = sim.run(&VectorSimConfig::default()).expect("run");
        let v = sim.state_of(NodeId::new(0));
        let off_hull = (v[0] - v[1]).abs() > 0.5;
        pass &= out.converged && out.box_validity && off_hull;
        table.row([
            "diagonal inputs, corner-pull".to_string(),
            out.converged.to_string(),
            out.box_validity.to_string(),
            out.rounds.to_string(),
            format!(
                "agreed at ({:.3}, {:.3}) — {:.3} off the hull diagonal",
                v[0],
                v[1],
                (v[0] - v[1]).abs()
            ),
        ]);
    }

    ExperimentResult {
        id: "X13".into(),
        title: "Vector states: box-hull validity holds, convex-hull validity does not".into(),
        table,
        notes: vec![
            "Coordinate-wise lifting inherits the scalar guarantees per axis; the off-hull row \
             is the boundary the authors' follow-up vector consensus work (Vaidya–Garg, PODC \
             2013) exists to close."
                .to_string(),
        ],
        artifacts: Vec::new(),
        pass,
    }
}
