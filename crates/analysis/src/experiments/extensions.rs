//! X1 / X2 / X3 — extension experiments beyond the paper (DESIGN.md §5).
//!
//! * **X1** — the f-local fault model (Zhang–Sundaram \[18\]): the local
//!   condition implies the paper's total condition, sparse graphs admit
//!   f-local fault sets larger than `f`, and Algorithm 1 still converges
//!   under such a set on locally-satisfying graphs.
//! * **X2** — matrix representation (§2.3's Markov-chain remark): every
//!   round is a row-stochastic matrix on honest states; the per-round
//!   ergodicity coefficient `τ(M[t])` bounds the measured contraction and
//!   sharpens Lemma 5.
//! * **X3** — model comparison: forcing the adversary to broadcast (the
//!   model of \[16\]/\[17\]) strictly weakens the Theorem 1 proof attack, and
//!   omission/crash failures are absorbed.

use iabc_core::rules::TrimmedMean;
use iabc_core::{local_fault, robustness, theorem1};
use iabc_graph::{generators, NodeId, NodeSet};
use iabc_sim::adversary::{
    BroadcastOf, ConstantAdversary, CrashAdversary, PullAdversary, SelectiveOmissionAdversary,
    SplitBrainAdversary,
};
use iabc_sim::SimConfig;

use crate::matrix_repr::round_matrix;
use crate::table::Table;

use super::ExperimentResult;
use iabc_sim::Scenario;

/// Runs extension experiment X1 (f-local fault model).
pub fn x1_local_fault_model() -> ExperimentResult {
    let mut table = Table::new(["graph", "f", "total verdict", "local verdict", "note"]);
    let mut pass = true;

    for (name, g, f) in [
        ("K7", generators::complete(7), 2usize),
        ("core_network(7,2)", generators::core_network(7, 2), 2),
        ("chord(5,3)", generators::chord(5, 3), 1),
        ("chord(7,5)", generators::chord(7, 5), 2),
        ("chord(9,5)", generators::chord(9, 5), 2),
        ("hypercube(3)", generators::hypercube(3), 1),
    ] {
        let total = theorem1::check(&g, f).is_satisfied();
        let local_report = local_fault::check_local(&g, f);
        let local = local_report.is_satisfied();
        // Implication: local satisfied => total satisfied.
        pass &= !local || total;
        let note = match (total, local) {
            (true, true) => "agree (satisfied)".to_string(),
            (false, false) => "agree (violated)".to_string(),
            (true, false) => {
                let w = local_report.witness().expect("violated");
                pass &= local_fault::verify_local(w, &g, f, iabc_core::Threshold::synchronous(f));
                format!(
                    "local strictly stronger: |F| = {} witness",
                    w.fault_set.len()
                )
            }
            (false, true) => "IMPLICATION VIOLATED".to_string(),
        };
        table.row([
            name.to_string(),
            f.to_string(),
            if total { "satisfied" } else { "violated" }.to_string(),
            if local { "satisfied" } else { "violated" }.to_string(),
            note,
        ]);
    }

    // A large admissible f-local fault set on a sparse graph, executed:
    // chord(12, 5) with f = 2 and the 2-local set grown from {0}.
    {
        let g = generators::chord(12, 5);
        let f = 2;
        let fault = local_fault::grow_f_local(&g, &NodeSet::from_indices(12, [0]), f);
        let admissible = local_fault::is_f_local(&g, &fault, f) && fault.len() > f;
        let local_ok = local_fault::check_local(&g, f).is_satisfied();
        let mut row_note = format!("|F| = {} (> f = {f})", fault.len());
        if local_ok {
            let inputs: Vec<f64> = (0..12).map(|i| (i % 7) as f64).collect();
            let rule = TrimmedMean::new(f);
            let out = Scenario::on(&g)
                .inputs(&inputs)
                .faults(fault.clone())
                .rule(&rule)
                .adversary(Box::new(ConstantAdversary::new(1e9)))
                .synchronous()
                .expect("valid sim")
                .run(&SimConfig::default())
                .expect("run succeeds");
            pass &= admissible && out.converged && out.validity.is_valid();
            row_note = format!(
                "{row_note}; converged {} in {} rounds, valid {}",
                out.converged,
                out.rounds,
                out.validity.is_valid()
            );
        } else {
            // Local condition violated: just record; the admissibility part
            // must still hold.
            pass &= admissible;
            row_note = format!("{row_note}; local condition violated — no run");
        }
        table.row([
            "chord(12,5) + grown F".to_string(),
            f.to_string(),
            "-".to_string(),
            if local_ok { "satisfied" } else { "violated" }.to_string(),
            row_note,
        ]);
    }

    // Robustness tie-in: (2f+1)-robust graphs satisfy the *local* condition
    // too on our panel (the standard sufficient condition for f-local W-MSR).
    {
        let g = generators::complete(7);
        let f = 1usize;
        let robust = robustness::is_robust(&g, 2 * f + 1, 1);
        let local = local_fault::check_local(&g, f).is_satisfied();
        pass &= !robust || local;
        table.row([
            "K7 (robustness tie-in)".to_string(),
            f.to_string(),
            "-".to_string(),
            if local { "satisfied" } else { "violated" }.to_string(),
            format!("(2f+1)-robust: {robust} => local satisfied: {local}"),
        ]);
    }

    ExperimentResult {
        id: "X1".into(),
        title: "f-local fault model: local condition >= total condition; large admissible fault sets execute".into(),
        notes: vec![
            "local condition quantifies Theorem 1 over all f-local fault sets (any size)".into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}

/// Runs extension experiment X2 (matrix representation + ergodicity).
pub fn x2_matrix_representation() -> ExperimentResult {
    let mut table = Table::new([
        "graph",
        "rounds",
        "max tau(M[t])",
        "range bound via prod tau",
        "measured final range",
        "bound holds",
    ]);
    let mut pass = true;

    for (name, g, f, faults) in [
        (
            "K7, f=2",
            generators::complete(7),
            2usize,
            NodeSet::from_indices(7, [5, 6]),
        ),
        (
            "core_network(7,2), f=2",
            generators::core_network(7, 2),
            2,
            NodeSet::from_indices(7, [5, 6]),
        ),
        (
            "chord(5,3), f=1",
            generators::chord(5, 3),
            1,
            NodeSet::from_indices(5, [4]),
        ),
    ] {
        let n = g.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| ((i * 13) % 9) as f64).collect();
        let rule = TrimmedMean::new(f);
        let mut sim = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults.clone())
            .rule(&rule)
            .adversary(Box::new(PullAdversary::new(false)))
            .synchronous()
            .expect("valid sim");

        let honest_range = |states: &[f64]| {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for (i, &v) in states.iter().enumerate() {
                if !faults.contains(NodeId::new(i)) {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            hi - lo
        };
        let initial_range = honest_range(&inputs);
        let rounds = 15usize;
        let mut tau_product = 1.0f64;
        let mut max_tau = 0.0f64;
        let mut ok = true;
        for round in 1..=rounds {
            let prev = sim.states().to_vec();
            let mut adv = PullAdversary::new(false);
            let m = round_matrix(&g, f, &faults, &prev, &mut adv, round).expect("matrix builds");
            let tau = m.ergodicity_coefficient();
            max_tau = max_tau.max(tau);
            tau_product *= tau;
            sim.step().expect("step succeeds");
            ok &= honest_range(sim.states()) <= tau * honest_range(&prev) + 1e-9;
        }
        let final_range = honest_range(sim.states());
        let bound = tau_product * initial_range;
        ok &= final_range <= bound + 1e-9;
        pass &= ok;
        table.row([
            name.to_string(),
            rounds.to_string(),
            format!("{max_tau:.4}"),
            format!("{bound:.3e}"),
            format!("{final_range:.3e}"),
            ok.to_string(),
        ]);
    }

    ExperimentResult {
        id: "X2".into(),
        title:
            "Matrix representation: per-round tau(M[t]) bounds the contraction (sharpens Lemma 5)"
                .into(),
        notes: vec![
            "each round of Algorithm 1 rewritten as a row-stochastic matrix over honest states"
                .into(),
            "surviving faulty values bracketed by honest values (Lemma 3/4 construction)".into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}

/// Runs extension experiment X3 (broadcast restriction + omission faults).
pub fn x3_model_comparison() -> ExperimentResult {
    let mut table = Table::new(["scenario", "expectation", "observed"]);
    let mut pass = true;

    // (a) The split-brain attack on chord(7,5) loses its freezing power
    // under the broadcast restriction.
    {
        let g = generators::chord(7, 5);
        let w = theorem1::find_violation(&g, 2).expect("violated");
        let (m, m_cap) = (0.0, 1.0);
        let mut inputs = vec![0.5; 7];
        for v in w.left.iter() {
            inputs[v.index()] = m;
        }
        for v in w.right.iter() {
            inputs[v.index()] = m_cap;
        }
        let rule = TrimmedMean::new(2);
        let mut p2p = Scenario::on(&g)
            .inputs(&inputs)
            .faults(w.fault_set.clone())
            .rule(&rule)
            .adversary(Box::new(SplitBrainAdversary::from_witness(
                &w, m, m_cap, 0.5,
            )))
            .synchronous()
            .expect("valid sim");
        let mut bcast = Scenario::on(&g)
            .inputs(&inputs)
            .faults(w.fault_set.clone())
            .rule(&rule)
            .adversary(Box::new(BroadcastOf::new(
                SplitBrainAdversary::from_witness(&w, m, m_cap, 0.5),
            )))
            .synchronous()
            .expect("valid sim");
        for _ in 0..200 {
            p2p.step().expect("step");
            bcast.step().expect("step");
        }
        let ok = p2p.honest_range() >= 1.0 && bcast.honest_range() < p2p.honest_range();
        pass &= ok;
        table.row([
            "chord(7,5), f=2: split-brain, point-to-point vs broadcast".to_string(),
            "p2p frozen at 1.0; broadcast strictly smaller range".to_string(),
            format!(
                "p2p range {:.3}, broadcast range {:.3e}",
                p2p.honest_range(),
                bcast.honest_range()
            ),
        ]);
    }

    // (b) Crash-stop faults are absorbed on a satisfying graph.
    {
        let g = generators::complete(7);
        let inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 2.0, 2.0];
        let faults = NodeSet::from_indices(7, [5, 6]);
        let rule = TrimmedMean::new(2);
        let out = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults)
            .rule(&rule)
            .adversary(Box::new(CrashAdversary::new(2)))
            .synchronous()
            .expect("valid sim")
            .run(&SimConfig::default())
            .expect("run");
        pass &= out.converged && out.validity.is_valid();
        table.row([
            "K7, f=2: crash-stop at round 2".to_string(),
            "converges, valid (missing messages substituted in-hull)".to_string(),
            format!("converged {} in {} rounds", out.converged, out.rounds),
        ]);
    }

    // (c) Mixed omission + commission.
    {
        let g = generators::complete(7);
        let inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 2.0, 2.0];
        let faults = NodeSet::from_indices(7, [5, 6]);
        let rule = TrimmedMean::new(2);
        let out = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults)
            .rule(&rule)
            .adversary(Box::new(SelectiveOmissionAdversary::new(
                NodeSet::from_indices(7, [0, 1, 2]),
                1e8,
            )))
            .synchronous()
            .expect("valid sim")
            .run(&SimConfig::default())
            .expect("run");
        pass &= out.converged && out.validity.is_valid();
        table.row([
            "K7, f=2: omission to {0,1,2}, lies of 1e8 to the rest".to_string(),
            "converges, valid".to_string(),
            format!("converged {} in {} rounds", out.converged, out.rounds),
        ]);
    }

    ExperimentResult {
        id: "X3".into(),
        title:
            "Model comparison: broadcast restriction weakens the attack; omission/crash absorbed"
                .into(),
        notes: vec![
            "broadcast wrapper caches one value per (round, sender) — the [16]/[17] model".into(),
            "missing synchronous messages are substituted with the receiver's own state".into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}
