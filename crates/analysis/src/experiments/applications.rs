//! E6 / E7 / E8 / E11 — the Section 6 applications and the figures.

use iabc_core::{search, theorem1, Threshold, Witness};
use iabc_graph::dot::{to_dot, DotGroup};
use iabc_graph::{algorithms, generators, NodeSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::Table;

use super::ExperimentResult;

/// Runs experiment E6 (§6.1: core networks satisfy Theorem 1).
pub fn e6_core_network() -> ExperimentResult {
    let mut table = Table::new(["f", "n", "edges", "verdict", "removal-critical edges"]);
    let mut pass = true;

    for f in 1..=3usize {
        for n in (3 * f + 1)..=(3 * f + 4) {
            let g = generators::core_network(n, f);
            let satisfied = theorem1::check(&g, f).is_satisfied();
            pass &= satisfied;
            // Edge-criticality probe at the conjectured-minimal size n=3f+1:
            // how many single directed-edge removals break the condition?
            let critical = if n == 3 * f + 1 {
                let edges: Vec<_> = g.edges().collect();
                let mut count = 0usize;
                for &(u, v) in &edges {
                    let mut g2 = g.clone();
                    g2.remove_edge(u, v);
                    if !theorem1::check(&g2, f).is_satisfied() {
                        count += 1;
                    }
                }
                format!("{count}/{}", edges.len())
            } else {
                "-".into()
            };
            table.row([
                f.to_string(),
                n.to_string(),
                g.edge_count().to_string(),
                if satisfied { "satisfied" } else { "VIOLATED?!" }.to_string(),
                critical,
            ]);
        }
    }

    ExperimentResult {
        id: "E6".into(),
        title: "§6.1 core networks satisfy Theorem 1 (with edge-criticality probe at n = 3f+1)".into(),
        notes: vec![
            "paper conjectures n = 3f+1 core networks are edge-minimal; the probe reports how many edges are individually critical".into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}

/// The Figure 3 dimension-cut witness for a `d`-cube at the given dimension
/// `bit`: `F = ∅`, `L` = nodes with that bit 0, `R` = the rest.
pub fn dimension_cut_witness(d: u32, bit: u32) -> Witness {
    let n = 1usize << d;
    let left = NodeSet::from_indices(n, (0..n).filter(|x| x & (1usize << bit) == 0));
    Witness {
        fault_set: NodeSet::with_universe(n),
        right: left.complement(),
        center: NodeSet::with_universe(n),
        left,
    }
}

/// Runs experiment E7 (§6.2 + Figure 3: hypercubes fail for every `f ≥ 1`).
pub fn e7_hypercube() -> ExperimentResult {
    let mut table = Table::new(["d", "n", "connectivity", "method", "verdict"]);
    let mut pass = true;

    for d in 3..=6u32 {
        let g = generators::hypercube(d);
        let n = 1usize << d;
        // §6.2 prerequisite: connectivity equals d (cheap for n ≤ 16; for
        // d ≥ 5 we verify a sampled pair bound instead of the full O(n²)).
        let conn = if d <= 4 {
            algorithms::vertex_connectivity(&g).to_string()
        } else {
            let k = algorithms::vertex_disjoint_paths(
                &g,
                iabc_graph::NodeId::new(0),
                iabc_graph::NodeId::new(n - 1),
            );
            format!("{k} (antipodal pair)")
        };
        // Every dimension cut must be a valid witness for f = 1 (Figure 3).
        let all_cuts_valid = (0..d)
            .all(|bit| dimension_cut_witness(d, bit).verify(&g, 1, Threshold::synchronous(1)));
        // Exact check where feasible; seeded falsifier beyond.
        let (method, violated) = if d <= 4 {
            ("exact checker", !theorem1::check(&g, 1).is_satisfied())
        } else {
            let seeds: Vec<NodeSet> = (0..d)
                .map(|bit| dimension_cut_witness(d, bit).left)
                .collect();
            (
                "seeded falsifier",
                search::falsify_with_seeds(&g, 1, Threshold::synchronous(1), &seeds).is_some(),
            )
        };
        pass &= all_cuts_valid && violated;
        table.row([
            d.to_string(),
            n.to_string(),
            conn,
            method.to_string(),
            format!(
                "violated: {violated}; all {d} dimension cuts verify as witnesses: {all_cuts_valid}"
            ),
        ]);
    }

    ExperimentResult {
        id: "E7".into(),
        title: "§6.2 / Figure 3: hypercubes have connectivity d yet fail Theorem 1 for f = 1"
            .into(),
        notes: vec![
            "Figure 3's partition {0,1,2,3} | {4,5,6,7} is the bit-2 dimension cut of the 3-cube"
                .into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}

/// Runs experiment E8 (§6.3: the three chord-network cases).
pub fn e8_chord() -> ExperimentResult {
    let mut table = Table::new([
        "case",
        "expectation",
        "checker verdict",
        "paper witness check",
    ]);
    let mut pass = true;

    // f = 1, n = 4: complete graph, trivially satisfied.
    {
        let g = generators::chord(4, 3);
        let is_complete = g == generators::complete(4);
        let ok = theorem1::check(&g, 1).is_satisfied() && is_complete;
        pass &= ok;
        table.row([
            "chord(4, 3), f = 1".to_string(),
            "satisfied (graph is K4)".to_string(),
            if ok {
                "satisfied, graph == K4"
            } else {
                "MISMATCH"
            }
            .to_string(),
            "-".to_string(),
        ]);
    }

    // f = 2, n = 7: violated; the paper's exact witness must verify.
    {
        let g = generators::chord(7, 5);
        let violated = !theorem1::check(&g, 2).is_satisfied();
        let paper_witness = Witness {
            fault_set: NodeSet::from_indices(7, [5, 6]),
            left: NodeSet::from_indices(7, [0, 2]),
            center: NodeSet::with_universe(7),
            right: NodeSet::from_indices(7, [1, 3, 4]),
        };
        let witness_ok = paper_witness.verify(&g, 2, Threshold::synchronous(2));
        pass &= violated && witness_ok;
        table.row([
            "chord(7, 5), f = 2".to_string(),
            "violated; F={5,6}, L={0,2}, R={1,3,4} is a witness".to_string(),
            if violated { "violated" } else { "SATISFIED?!" }.to_string(),
            format!("paper witness verifies: {witness_ok}"),
        ]);
    }

    // f = 1, n = 5: satisfied.
    {
        let g = generators::chord(5, 3);
        let ok = theorem1::check(&g, 1).is_satisfied();
        pass &= ok;
        table.row([
            "chord(5, 3), f = 1".to_string(),
            "satisfied".to_string(),
            if ok { "satisfied" } else { "VIOLATED?!" }.to_string(),
            "-".to_string(),
        ]);
    }

    ExperimentResult {
        id: "E8".into(),
        title: "§6.3 chord networks: K4 trivial, (f=2, n=7) violated with the paper's witness, (f=1, n=5) satisfied".into(),
        notes: vec![
            "chord(n, 2f+1) per Definition 5; note 2f+1 in-degree alone is insufficient (the f=2, n=7 case)".into(),
        ],
        artifacts: Vec::new(),
        table,
        pass,
    }
}

/// Runs experiment E11 (Figures 1–3 geometry as DOT renders).
pub fn e11_figures() -> ExperimentResult {
    let mut table = Table::new(["figure", "content", "bytes"]);
    let mut artifacts = Vec::new();
    let mut pass = true;

    // Figure 1/2 geometry: the chord counterexample partition, colour-coded.
    {
        let g = generators::chord(7, 5);
        let w = theorem1::find_violation(&g, 2).expect("violated");
        let groups = [
            DotGroup::new("F", "lightcoral", w.fault_set.clone()),
            DotGroup::new("L", "lightblue", w.left.clone()),
            DotGroup::new("C", "lightgray", w.center.clone()),
            DotGroup::new("R", "lightgreen", w.right.clone()),
        ];
        let dot = to_dot(&g, "chord_counterexample", &groups);
        pass &= dot.contains("digraph") && dot.contains("lightblue");
        table.row([
            "fig1-2 (partition geometry)".to_string(),
            "chord(7,5) witness F/L/C/R".to_string(),
            dot.len().to_string(),
        ]);
        artifacts.push(("fig1_chord_witness.dot".to_string(), dot));
    }

    // Figure 3: the 3-cube with the dimension-cut halves.
    {
        let g = generators::hypercube(3);
        let w = dimension_cut_witness(3, 2);
        pass &= w.left.to_indices() == vec![0, 1, 2, 3];
        let groups = [
            DotGroup::new("half-0", "lightblue", w.left.clone()),
            DotGroup::new("half-1", "lightgreen", w.right.clone()),
        ];
        let dot = to_dot(&g, "hypercube_cut", &groups);
        pass &= dot.contains("dir=both");
        table.row([
            "fig3 (hypercube cut)".to_string(),
            "{0,1,2,3} vs {4,5,6,7}".to_string(),
            dot.len().to_string(),
        ]);
        artifacts.push(("fig3_hypercube_cut.dot".to_string(), dot));
    }

    // Bonus: the core network's clique/outer structure (Definition 4).
    {
        let g = generators::core_network(7, 2);
        let clique = NodeSet::from_indices(7, 0..5);
        let groups = [
            DotGroup::new("K (clique)", "gold", clique.clone()),
            DotGroup::new("outer", "lightgray", clique.complement()),
        ];
        let dot = to_dot(&g, "core_network", &groups);
        pass &= dot.contains("gold");
        table.row([
            "def4 (core network)".to_string(),
            "clique of 2f+1 plus outer nodes".to_string(),
            dot.len().to_string(),
        ]);
        artifacts.push(("def4_core_network.dot".to_string(), dot));
    }

    ExperimentResult {
        id: "E11".into(),
        title: "Figures: witness partitions and family structure as Graphviz DOT".into(),
        notes: vec!["render with `dot -Tpng <file>`".into()],
        artifacts,
        table,
        pass,
    }
}

/// Small deterministic sanity sweep shared by tests: random graphs where the
/// exact checker and the falsifier must agree on violations they both find.
pub fn falsifier_consistency_sweep(trials: usize) -> bool {
    let mut rng = StdRng::seed_from_u64(1234);
    for _ in 0..trials {
        let g = generators::erdos_renyi(7, 0.4, &mut rng);
        let exact = theorem1::check(&g, 1);
        if let Some(w) = search::falsify(&g, 1, Threshold::synchronous(1), 300, &mut rng) {
            if exact.is_satisfied() || !w.verify(&g, 1, Threshold::synchronous(1)) {
                return false;
            }
        }
    }
    true
}
