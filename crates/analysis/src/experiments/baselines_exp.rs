//! X5 — head-to-head: Algorithm 1 vs the baselines it descends from.
//!
//! Contenders (all under identical engines, adversaries, and inputs):
//!
//! * **Algorithm 1** (`TrimmedMean`) — the paper's rule, guaranteed on every
//!   Theorem 1 graph;
//! * **Dolev midpoint / select-mean** (\[5\]) — full-exchange rules with
//!   guarantees only on *complete* graphs;
//! * **W-MSR** (\[11\]/\[17\]) — trims relative to the own state; guaranteed
//!   under `(2f+1)`-robustness.
//!
//! Qualitative expectations reproduced here: on complete graphs everything
//! converges and the midpoint rule contracts fastest; on sparse Theorem 1
//! graphs Algorithm 1 retains its guarantee while the Dolev rules run
//! without one (their results are reported, not asserted).

use iabc_baselines::comparison::Faceoff;
use iabc_baselines::{DolevMidpoint, DolevSelectMean, Wmsr};
use iabc_core::rules::{TrimmedMean, UpdateRule};
use iabc_core::{robustness, theorem1};
use iabc_graph::{generators, Digraph, NodeSet};
use iabc_sim::adversary::{Adversary, ExtremesAdversary, PolarizingAdversary};
use iabc_sim::SimConfig;

use crate::table::Table;

use super::ExperimentResult;

struct Workload {
    name: &'static str,
    graph: Digraph,
    f: usize,
    faults: Vec<usize>,
    adversary: fn() -> Box<dyn Adversary>,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "K7 / extremes",
            graph: generators::complete(7),
            f: 2,
            faults: vec![5, 6],
            adversary: || Box::new(ExtremesAdversary::new(50.0)),
        },
        Workload {
            name: "K7 / polarizing",
            graph: generators::complete(7),
            f: 2,
            faults: vec![5, 6],
            adversary: || Box::new(PolarizingAdversary::new()),
        },
        Workload {
            name: "chord(5,3) / polarizing",
            graph: generators::chord(5, 3),
            f: 1,
            faults: vec![4],
            adversary: || Box::new(PolarizingAdversary::new()),
        },
        Workload {
            name: "core(7,2) / extremes",
            graph: generators::core_network(7, 2),
            f: 2,
            faults: vec![5, 6],
            adversary: || Box::new(ExtremesAdversary::new(50.0)),
        },
    ]
}

/// Runs experiment X5 (baseline faceoff).
pub fn x5_baselines() -> ExperimentResult {
    let mut table = Table::new([
        "workload",
        "rule",
        "converged",
        "rounds",
        "final range",
        "valid",
    ]);
    let mut pass = true;
    let mut notes = Vec::new();

    for w in workloads() {
        debug_assert!(theorem1::check(&w.graph, w.f).is_satisfied());
        let n = w.graph.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let faceoff = Faceoff {
            graph: &w.graph,
            inputs: &inputs,
            fault_set: NodeSet::from_indices(n, w.faults.iter().copied()),
            adversary_factory: &|| (w.adversary)(),
            config: SimConfig {
                record_states: false,
                epsilon: 1e-6,
                max_rounds: 20_000,
            },
        };
        let a1 = TrimmedMean::new(w.f);
        let mid = DolevMidpoint::new(w.f);
        let sel = DolevSelectMean::new(w.f);
        let wmsr = Wmsr::new(w.f);
        let rules: Vec<&dyn UpdateRule> = vec![&a1, &mid, &sel, &wmsr];
        let complete_graph = w.graph.edge_count() == n * (n - 1);
        let robust = robustness::is_robust(&w.graph, 2 * w.f + 1, 1);

        for r in faceoff.run_all(&rules) {
            // Guarantees we hold the contenders to:
            // * Algorithm 1 everywhere (Theorem 3);
            // * everything on complete graphs (Dolev's setting);
            // * W-MSR where (2f+1)-robustness holds.
            let guaranteed =
                r.rule == "trimmed-mean" || complete_graph || (r.rule == "w-msr" && robust);
            if guaranteed && !(r.converged && r.valid) {
                pass = false;
                notes.push(format!("{}: {} broke its guarantee: {r:?}", w.name, r.rule));
            }
            table.row([
                w.name.to_string(),
                r.rule.to_string(),
                r.converged.to_string(),
                r.rounds.to_string(),
                format!("{:.2e}", r.final_range),
                r.valid.to_string(),
            ]);
        }
    }

    notes.push(
        "Dolev rules are only *guaranteed* on complete graphs; their sparse-graph rows \
         are reported as observations"
            .into(),
    );

    ExperimentResult {
        id: "X5".into(),
        title: "Baseline faceoff: Algorithm 1 vs Dolev [5] vs W-MSR [11]".into(),
        notes,
        artifacts: Vec::new(),
        table,
        pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faceoff_passes() {
        let r = x5_baselines();
        assert!(r.pass, "X5 failed:\n{}\n{:?}", r.table, r.notes);
    }

    #[test]
    fn every_workload_satisfies_theorem1() {
        for w in workloads() {
            assert!(
                theorem1::check(&w.graph, w.f).is_satisfied(),
                "workload {} must run on a satisfying graph",
                w.name
            );
        }
    }

    #[test]
    fn midpoint_beats_algorithm1_on_complete_graph_rounds() {
        let r = x5_baselines();
        // Find the K7/extremes rows for the two rules and compare rounds.
        let rows = r.table.rows();
        let rounds_of = |rule: &str| -> usize {
            rows.iter()
                .find(|row| row[0] == "K7 / extremes" && row[1] == rule)
                .map(|row| row[3].parse().unwrap())
                .expect("row present")
        };
        assert!(rounds_of("dolev-midpoint") <= rounds_of("trimmed-mean"));
    }
}
