//! Parallel sweep runner: fans independent experiment-grid cells across
//! cores with **deterministic, thread-count-independent** results.
//!
//! Every grid in this workspace — the E1–E12/X1–X13 experiment harness,
//! Monte-Carlo graph sweeps, the exhaustive tolerance census — decomposes
//! into independent `(graph family, n, f, …)` cells with no shared state
//! (the transition-matrix view of the protocol makes each cell a pure
//! function of its coordinates). The runner exploits that:
//!
//! * each cell derives its RNG seed by hashing its [`CellCoords`]
//!   (`seed = fnv1a(coords)`), never from a shared stream, so a cell's
//!   output is a pure function of its coordinates;
//! * workers steal cell *indices* off the executor's chunk queue and
//!   write results back by index, so the merged output order is the grid
//!   order no matter how the OS schedules threads.
//!
//! Together these make sweep output **bit-identical** for `jobs = 1` and
//! `jobs = N` — verified by `tests/sweep_parallel.rs` and unit tests here.
//!
//! Threading is the workspace-wide [`iabc_exec::Executor`] (the container
//! has no rayon): one pool is created per [`run_cells`] call — per
//! *sweep*, not per cell — with a chunk floor of one cell, since cells
//! vary wildly in cost and must be stealable individually. The private
//! scoped-thread work-stealing loop this module used to carry is gone.
//!
//! This runner treats every cell as an opaque closure. When many cells
//! share a `(topology, fault set, rule, adversary)` spec and differ only
//! in their seed, [`crate::batched`] groups them into a single
//! `BatchedSimulation` run instead (one cell per *group*, still executed
//! through [`run_cells`] here), keeping the per-cell coordinate-hashed
//! seeds and therefore the exact table bytes of the dispatch path.
//!
//! # Examples
//!
//! ```
//! use iabc_analysis::sweep::{run_cells, CellCoords, SweepCell};
//!
//! let cells: Vec<SweepCell<u64>> = (0..8)
//!     .map(|i| {
//!         let coords = CellCoords::new("double").with("i", i);
//!         SweepCell::new(coords, move |seed| seed.wrapping_mul(2))
//!     })
//!     .collect();
//! let serial = run_cells(cells, 1);
//! assert_eq!(serial.len(), 8);
//! ```

use std::num::NonZeroUsize;

use iabc_core::theorem1;
use iabc_exec::{process_executor, Chunking};
use iabc_graph::generators;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::census::{census, CensusRow};
use crate::experiments::{self, ExperimentResult};
use crate::table::Table;

/// Grid coordinates identifying one sweep cell: an experiment name plus
/// ordered `key = value` pairs. Hashing the canonical rendering yields the
/// cell's RNG seed, so seeds depend only on coordinates — never on thread
/// scheduling or cell execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellCoords {
    grid: String,
    pairs: Vec<(String, String)>,
}

impl CellCoords {
    /// Starts coordinates for a cell of the named grid.
    pub fn new(grid: impl Into<String>) -> Self {
        CellCoords {
            grid: grid.into(),
            pairs: Vec::new(),
        }
    }

    /// Appends one `key = value` coordinate.
    pub fn with(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.pairs.push((key.into(), value.to_string()));
        self
    }

    /// Canonical rendering, e.g. `census[n=4,f=1]`.
    pub fn label(&self) -> String {
        let coords: Vec<String> = self.pairs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}[{}]", self.grid, coords.join(","))
    }

    /// The cell's deterministic RNG seed: FNV-1a over [`Self::label`],
    /// via the workspace's canonical [`fingerprint`] module.
    ///
    /// [`fingerprint`]: iabc_graph::fingerprint
    pub fn seed(&self) -> u64 {
        iabc_graph::fingerprint::bytes(self.label().as_bytes())
    }
}

/// One independent unit of sweep work: coordinates plus the cell function,
/// which receives the coordinate-derived seed.
pub struct SweepCell<'a, T> {
    /// The cell's grid coordinates.
    pub coords: CellCoords,
    run: Box<dyn Fn(u64) -> T + Send + Sync + 'a>,
}

impl<'a, T> std::fmt::Debug for SweepCell<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepCell")
            .field("coords", &self.coords)
            .finish_non_exhaustive()
    }
}

impl<'a, T> SweepCell<'a, T> {
    /// Wraps a cell function; it will be called with `coords.seed()`.
    pub fn new(coords: CellCoords, run: impl Fn(u64) -> T + Send + Sync + 'a) -> Self {
        SweepCell {
            coords,
            run: Box::new(run),
        }
    }
}

/// A completed cell: its coordinates, the seed it ran with, and its value.
#[derive(Debug, Clone)]
pub struct SweepOutcome<T> {
    /// The cell's grid coordinates.
    pub coords: CellCoords,
    /// The coordinate-derived seed the cell function received.
    pub seed: u64,
    /// The cell function's output.
    pub value: T,
}

/// Resolves a requested worker count: `Some(0)` or `None` with
/// `parallel = true` means all available cores; `None` without
/// `--parallel` means serial.
pub fn effective_jobs(jobs: Option<usize>, parallel: bool) -> usize {
    match jobs {
        Some(0) | None if parallel => available_cores(),
        Some(0) => available_cores(),
        Some(n) => n,
        None => 1,
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs every cell and returns outcomes **in grid order**, regardless of
/// `jobs`. `jobs == 0` uses all available cores; `jobs <= 1` runs serially
/// on the calling thread with no pool involved. Parallel sweeps dispatch on
/// the **process-level shared pool** ([`iabc_exec::process_executor`]) —
/// the same pool the serve daemon and `iabc deploy` use — so concurrent
/// sweeps cannot oversubscribe the host; each cell is written to its own
/// output slot, so no merge sort is needed: the output slice *is* the grid
/// order.
pub fn run_cells<T: Send>(cells: Vec<SweepCell<'_, T>>, jobs: usize) -> Vec<SweepOutcome<T>> {
    let jobs = if jobs == 0 { available_cores() } else { jobs };
    let mut outcomes: Vec<Option<SweepOutcome<T>>> = (0..cells.len()).map(|_| None).collect();
    let fill = |idx: usize, slot: &mut Option<SweepOutcome<T>>| {
        let cell = &cells[idx];
        let seed = cell.coords.seed();
        *slot = Some(SweepOutcome {
            coords: cell.coords.clone(),
            seed,
            value: (cell.run)(seed),
        });
    };
    if jobs <= 1 || cells.len() <= 1 {
        for (idx, slot) in outcomes.iter_mut().enumerate() {
            fill(idx, slot);
        }
    } else {
        // Exactly one cell per chunk: a census cell can cost 10⁶× a
        // trivial one, so every cell must be individually stealable.
        process_executor(jobs).with(|exec| {
            exec.for_each(&mut outcomes, Chunking::Exact(1), fill);
        });
    }
    outcomes
        .into_iter()
        .map(|outcome| outcome.expect("every grid cell is computed exactly once"))
        .collect()
}

/// A memo consulted around each sweep cell — the in-process face of the
/// serving tier's content-addressed store. `lookup` answers before the cell
/// function runs; `record` is called for every miss after it computes.
///
/// Calls are serialized on the sweep's calling thread (the parallel pool
/// only runs the cell functions), so implementors need no interior locking.
pub trait CellMemo<T> {
    /// A previously recorded value for these coordinates, if any.
    fn lookup(&mut self, coords: &CellCoords) -> Option<T>;
    /// Records a freshly computed value for these coordinates.
    fn record(&mut self, coords: &CellCoords, value: &T);
}

/// [`run_cells`] with a memo in front: hits are answered without running
/// the cell function, misses run (in parallel on the shared pool for
/// `jobs > 1`) and are recorded. Returns outcomes in grid order plus
/// `(hits, misses)`. Because every engine is bit-for-bit deterministic at
/// any job count, a hit is provably identical to recomputation — the sweep
/// output is byte-for-byte the same whether the memo was warm or cold.
pub fn run_cells_memo<T: Send>(
    cells: Vec<SweepCell<'_, T>>,
    jobs: usize,
    memo: &mut dyn CellMemo<T>,
) -> (Vec<SweepOutcome<T>>, usize, usize) {
    let mut slots: Vec<Option<SweepOutcome<T>>> = Vec::with_capacity(cells.len());
    let mut misses: Vec<(usize, SweepCell<'_, T>)> = Vec::new();
    for (idx, cell) in cells.into_iter().enumerate() {
        match memo.lookup(&cell.coords) {
            Some(value) => slots.push(Some(SweepOutcome {
                seed: cell.coords.seed(),
                coords: cell.coords,
                value,
            })),
            None => {
                slots.push(None);
                misses.push((idx, cell));
            }
        }
    }
    let hits = slots.len() - misses.len();
    let missed = misses.len();
    let (indices, miss_cells): (Vec<usize>, Vec<SweepCell<'_, T>>) = misses.into_iter().unzip();
    for (slot_idx, outcome) in indices.into_iter().zip(run_cells(miss_cells, jobs)) {
        memo.record(&outcome.coords, &outcome.value);
        slots[slot_idx] = Some(outcome);
    }
    let outcomes = slots
        .into_iter()
        .map(|outcome| outcome.expect("every grid cell is answered or computed"))
        .collect();
    (outcomes, hits, missed)
}

// ---------------------------------------------------------------------------
// Grid builders
// ---------------------------------------------------------------------------

type ExperimentRunner = fn() -> ExperimentResult;

/// The experiment grid: one runner per paper artifact (E1–E12, in paper
/// order) followed by the extension experiments (X1–X13, DESIGN.md §5) —
/// the full regeneration surface, so every id is memoizable through the
/// serving tier's cell key schema.
const EXPERIMENT_RUNNERS: [(&str, ExperimentRunner); 25] = [
    ("E1", experiments::e1_necessity),
    ("E2", experiments::e2_validity),
    ("E3", experiments::e3_convergence),
    ("E4", experiments::e4_corollary2),
    ("E5", experiments::e5_corollary3),
    ("E6", experiments::e6_core_network),
    ("E7", experiments::e7_hypercube),
    ("E8", experiments::e8_chord),
    ("E9", experiments::e9_async),
    ("E10", experiments::e10_rate),
    ("E11", experiments::e11_figures),
    ("E12", experiments::e12_ablation),
    ("X1", experiments::x1_local_fault_model),
    ("X2", experiments::x2_matrix_representation),
    ("X3", experiments::x3_model_comparison),
    ("X4", experiments::x4_condition_zoo),
    ("X5", experiments::x5_baselines),
    ("X6", experiments::x6_scaling),
    ("X7", experiments::x7_construction),
    ("X8", experiments::x8_census),
    ("X9", experiments::x9_adversary_tournament),
    ("X10", experiments::x10_fault_models),
    ("X11", experiments::x11_dynamic_topology),
    ("X12", experiments::x12_quantized),
    ("X13", experiments::x13_vector),
];

/// `true` iff `id` names an experiment (case-insensitive `E1`..`E12` or
/// `X1`..`X13`).
pub fn is_known_experiment_id(id: &str) -> bool {
    EXPERIMENT_RUNNERS
        .iter()
        .any(|(known, _)| known.eq_ignore_ascii_case(id))
}

/// Canonical position of `id` in the registry (E1–E12 then X1–X13) —
/// the sort key the serving tier canonicalizes requested id lists by.
pub fn experiment_id_position(id: &str) -> Option<usize> {
    EXPERIMENT_RUNNERS
        .iter()
        .position(|(known, _)| known.eq_ignore_ascii_case(id))
}

/// Largest `n` the exhaustive census can enumerate (`n(n−1) ≤ 20`).
pub const CENSUS_MAX_N: usize = 5;

/// Builds one cell per experiment, optionally restricted to the given
/// ids (case-insensitive; validate with [`is_known_experiment_id`] first
/// — unknown ids are ignored here). An empty list keeps its historical
/// meaning, the paper grid E1–E12; the X1–X13 extensions run only when
/// named explicitly.
pub fn experiment_cells(ids: &[String]) -> Vec<SweepCell<'static, ExperimentResult>> {
    EXPERIMENT_RUNNERS
        .into_iter()
        .filter(|(id, _)| {
            if ids.is_empty() {
                id.starts_with('E')
            } else {
                ids.iter().any(|want| want.eq_ignore_ascii_case(id))
            }
        })
        .map(|(id, runner)| {
            SweepCell::new(
                CellCoords::new("experiments").with("id", id),
                move |_seed| runner(),
            )
        })
        .collect()
}

/// Runs the experiment grid through the sweep runner and summarizes it.
/// With `ids` empty, all of E1–E12 run. The summary table (and each
/// underlying [`ExperimentResult`]) is bit-identical for any `jobs`.
pub fn run_experiment_sweep(
    ids: &[String],
    jobs: usize,
) -> (Table, Vec<SweepOutcome<ExperimentResult>>) {
    let outcomes = run_cells(experiment_cells(ids), jobs);
    let mut table = Table::new(["id", "title", "rows", "pass"]);
    for outcome in &outcomes {
        table.row([
            outcome.value.id.to_string(),
            outcome.value.title.to_string(),
            outcome.value.table.len().to_string(),
            outcome.value.pass.to_string(),
        ]);
    }
    (table, outcomes)
}

/// [`run_experiment_sweep`] with a [`CellMemo`] in front (the serving
/// tier's in-process store fast path): warm cells are answered from the
/// memo, cold cells run and are recorded. Returns the summary table, the
/// outcomes, and `(hits, misses)` so callers can report the cache collapse
/// per table.
pub fn run_experiment_sweep_memo(
    ids: &[String],
    jobs: usize,
    memo: &mut dyn CellMemo<ExperimentResult>,
) -> (Table, Vec<SweepOutcome<ExperimentResult>>, usize, usize) {
    let (outcomes, hits, misses) = run_cells_memo(experiment_cells(ids), jobs, memo);
    let mut table = Table::new(["id", "title", "rows", "pass"]);
    for outcome in &outcomes {
        table.row([
            outcome.value.id.to_string(),
            outcome.value.title.to_string(),
            outcome.value.table.len().to_string(),
            outcome.value.pass.to_string(),
        ]);
    }
    (table, outcomes, hits, misses)
}

/// Parameters for a Monte-Carlo Erdős–Rényi tolerance sweep.
#[derive(Debug, Clone)]
pub struct MonteCarloSpec {
    /// Node counts to sweep.
    pub ns: Vec<usize>,
    /// Fault bounds to sweep.
    pub fs: Vec<usize>,
    /// Edge probability of each sampled digraph.
    pub edge_prob: f64,
    /// Graphs sampled per `(n, f)` cell.
    pub trials: usize,
    /// FastMath replicas simulated per in-degree-eligible sampled graph
    /// (`0` = condition-only, the historical sweep). When `> 0` each
    /// eligible graph additionally runs a
    /// [`iabc_sim::fastmath::BatchedSimulation`] of this width under a
    /// constant-value attack on the first `f` nodes, tallying per-replica
    /// convergence.
    pub replicas: usize,
}

/// Round cap for the per-graph batched convergence runs of a
/// `replicas > 0` Monte-Carlo sweep (generous for the small dense graphs
/// the sweep samples; a non-converging cell is data, not an error).
const MC_BATCH_MAX_ROUNDS: usize = 200;

/// Convergence epsilon for those runs.
const MC_BATCH_EPSILON: f64 = 1e-6;

/// Tallies from one Monte-Carlo `(n, f)` cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonteCarloCellStats {
    /// Node count of this cell.
    pub n: usize,
    /// Fault bound of this cell.
    pub f: usize,
    /// Graphs sampled.
    pub trials: usize,
    /// How many sampled graphs satisfy the Theorem 1 condition.
    pub satisfying: usize,
    /// How many satisfy Corollary 3's in-degree bound (`≥ 2f + 1`).
    pub corollary3: usize,
    /// Replicas simulated per eligible graph (0 = condition-only cell).
    pub replicas: usize,
    /// Graphs on which a batched simulation ran (those meeting the
    /// Corollary 3 in-degree bound, which guarantees the trim never
    /// starves).
    pub simulated: usize,
    /// Replicas (across all simulated graphs) whose fault-free range
    /// reached the convergence epsilon within the round cap.
    pub converged: usize,
    /// Sum of first-convergence rounds over the converged replicas (mean
    /// = `rounds_total / converged`).
    pub rounds_total: usize,
}

/// Builds one cell per `(n, f)` pair of the Monte-Carlo sweep. Each cell
/// seeds its own RNG from its coordinates, so a cell's tally never depends
/// on which worker ran it or in what order. With `spec.replicas > 0` the
/// cell's coordinates (hence its seed) gain a `replicas` component and
/// every in-degree-eligible sampled graph also runs a replica-batched
/// FastMath simulation: random inputs in `[0, 1)` per `(node, replica)`
/// drawn from the cell RNG, the first `f` nodes faulty under a constant
/// out-of-hull attack, trimmed-mean with the cell's `f`.
pub fn monte_carlo_cells(spec: &MonteCarloSpec) -> Vec<SweepCell<'static, MonteCarloCellStats>> {
    let mut cells = Vec::new();
    for &n in &spec.ns {
        for &f in &spec.fs {
            let (edge_prob, trials, replicas) = (spec.edge_prob, spec.trials, spec.replicas);
            let mut coords = CellCoords::new("monte-carlo")
                .with("n", n)
                .with("f", f)
                .with("p", edge_prob)
                .with("trials", trials);
            if replicas > 0 {
                coords = coords.with("replicas", replicas);
            }
            cells.push(SweepCell::new(coords, move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut stats = MonteCarloCellStats {
                    n,
                    f,
                    trials,
                    satisfying: 0,
                    corollary3: 0,
                    replicas,
                    simulated: 0,
                    converged: 0,
                    rounds_total: 0,
                };
                for _ in 0..trials {
                    let g = generators::erdos_renyi(n, edge_prob, &mut rng);
                    let eligible = g.min_in_degree() > 2 * f;
                    if eligible {
                        stats.corollary3 += 1;
                    }
                    if theorem1::check(&g, f).is_satisfied() {
                        stats.satisfying += 1;
                    }
                    if replicas > 0 && eligible && f < n {
                        batch_trial(&g, f, replicas, &mut rng, &mut stats);
                    }
                }
                stats
            }));
        }
    }
    cells
}

/// One batched convergence run of a `replicas > 0` Monte-Carlo cell; see
/// [`monte_carlo_cells`]. Inputs are drawn from the cell RNG *inside*
/// this function in a fixed order, so the cell stays a pure function of
/// its coordinate seed.
fn batch_trial(
    g: &iabc_graph::Digraph,
    f: usize,
    replicas: usize,
    rng: &mut StdRng,
    stats: &mut MonteCarloCellStats,
) {
    use iabc_sim::adversary::{Adversary, ConstantAdversary};
    use iabc_sim::fastmath::BatchedSimulation;
    use iabc_sim::RunConfig;

    let n = g.node_count();
    let inputs: Vec<f64> = (0..n * replicas)
        .map(|_| rng.random_range(0.0..1.0))
        .collect();
    let faults = iabc_graph::NodeSet::from_indices(n, 0..f);
    let rule = iabc_core::fastmath::FastRule::TrimmedMean(f);
    let make = |_: usize| -> Box<dyn Adversary> { Box::new(ConstantAdversary::new(1e9)) };
    // Eligibility (`min_in_degree > 2f`) guarantees the trim never
    // starves, so the only Rule error would be an engine bug — surface it.
    let mut batch = BatchedSimulation::new(g, &inputs, faults, rule, replicas, make)
        .expect("eligible monte-carlo batch must construct");
    let out = batch
        .run(&RunConfig::bounded(MC_BATCH_EPSILON, MC_BATCH_MAX_ROUNDS))
        .expect("in-degree-eligible batch cannot starve the trim");
    stats.simulated += 1;
    stats.converged += out.converged_count();
    stats.rounds_total += out.rounds_to_converge.iter().flatten().sum::<usize>();
}

/// Runs a Monte-Carlo tolerance sweep and renders the per-cell tallies.
/// With `spec.replicas > 0` the table gains the batched-convergence
/// columns (`replicas`, `simulated`, `converged`, `mean_rounds`).
pub fn run_monte_carlo_sweep(spec: &MonteCarloSpec, jobs: usize) -> Table {
    let outcomes = run_cells(monte_carlo_cells(spec), jobs);
    let batched = spec.replicas > 0;
    let mut headers = vec![
        "n",
        "f",
        "p",
        "trials",
        "satisfying",
        "corollary3_in_degree",
    ];
    if batched {
        headers.extend(["replicas", "simulated", "converged", "mean_rounds"]);
    }
    let mut table = Table::new(headers);
    for outcome in &outcomes {
        let s = &outcome.value;
        let mut row = vec![
            s.n.to_string(),
            s.f.to_string(),
            format!("{}", spec.edge_prob),
            s.trials.to_string(),
            s.satisfying.to_string(),
            s.corollary3.to_string(),
        ];
        if batched {
            row.push(s.replicas.to_string());
            row.push(s.simulated.to_string());
            row.push(s.converged.to_string());
            row.push(if s.converged == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", s.rounds_total as f64 / s.converged as f64)
            });
        }
        table.row(row);
    }
    table
}

/// Builds one exhaustive-census cell per `(n, f)` pair, `n` in
/// `2..=max_n`, capped at [`CENSUS_MAX_N`] (beyond which the census
/// cannot enumerate: `n(n−1) > 20`). Callers wanting a hard error instead
/// of a silent cap should validate `max_n` first.
pub fn census_cells(max_n: usize, fs: &[usize]) -> Vec<SweepCell<'static, CensusRow>> {
    let mut cells = Vec::new();
    for n in 2..=max_n.min(CENSUS_MAX_N) {
        for &f in fs {
            let coords = CellCoords::new("census").with("n", n).with("f", f);
            cells.push(SweepCell::new(coords, move |_seed| census(n, f)));
        }
    }
    cells
}

/// Runs the exhaustive tolerance census across `(n, f)` cells and renders
/// the classic census table.
pub fn run_census_sweep(max_n: usize, fs: &[usize], jobs: usize) -> Table {
    let outcomes = run_cells(census_cells(max_n, fs), jobs);
    let mut table = Table::new(["n", "f", "graphs", "satisfying", "min_edges", "corollary3"]);
    for outcome in &outcomes {
        let row = &outcome.value;
        table.row([
            row.n.to_string(),
            row.f.to_string(),
            row.graphs.to_string(),
            row.satisfying.to_string(),
            row.min_edges
                .map_or_else(|| "-".to_string(), |m| m.to_string()),
            row.corollary3_holds.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_depend_only_on_coordinates() {
        let a = CellCoords::new("g").with("n", 6).with("f", 1);
        let b = CellCoords::new("g").with("n", 6).with("f", 1);
        let c = CellCoords::new("g").with("n", 6).with("f", 2);
        assert_eq!(a.seed(), b.seed());
        assert_ne!(a.seed(), c.seed());
        assert_eq!(a.label(), "g[n=6,f=1]");
    }

    #[test]
    fn outcomes_preserve_grid_order_across_job_counts() {
        let build = || {
            (0..40)
                .map(|i| {
                    let coords = CellCoords::new("order").with("i", i);
                    SweepCell::new(coords, move |seed| (i, seed))
                })
                .collect::<Vec<_>>()
        };
        let serial = run_cells(build(), 1);
        for jobs in [2, 3, 8] {
            let parallel = run_cells(build(), jobs);
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.coords, p.coords);
                assert_eq!(s.seed, p.seed);
                assert_eq!(s.value, p.value);
            }
        }
    }

    #[test]
    fn monte_carlo_sweep_is_bit_identical_across_job_counts() {
        let spec = MonteCarloSpec {
            ns: vec![5, 6],
            fs: vec![0, 1],
            edge_prob: 0.6,
            trials: 8,
            replicas: 0,
        };
        let serial = run_monte_carlo_sweep(&spec, 1).to_string();
        let parallel = run_monte_carlo_sweep(&spec, 4).to_string();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn batched_monte_carlo_sweep_tallies_convergence() {
        let spec = MonteCarloSpec {
            ns: vec![6],
            fs: vec![1],
            edge_prob: 0.9,
            trials: 6,
            replicas: 4,
        };
        let cells = monte_carlo_cells(&spec);
        let outcomes = run_cells(cells, 1);
        assert_eq!(outcomes.len(), 1);
        let s = &outcomes[0].value;
        assert_eq!(s.replicas, 4);
        assert_eq!(s.simulated, s.corollary3);
        // Dense (p = 0.9) eligible graphs under a clamped constant attack
        // converge well inside the round cap.
        assert!(s.simulated > 0, "dense sweep should simulate something");
        assert_eq!(s.converged, s.simulated * 4);
        assert!(s.rounds_total >= s.converged);
        // The rendered table carries the batched columns.
        let table = run_monte_carlo_sweep(&spec, 2).to_string();
        assert!(table.contains("mean_rounds"));
        assert!(table.contains("simulated"));
    }

    #[test]
    fn batched_monte_carlo_sweep_is_bit_identical_across_job_counts() {
        let spec = MonteCarloSpec {
            ns: vec![5, 6],
            fs: vec![1],
            edge_prob: 0.8,
            trials: 4,
            replicas: 3,
        };
        let serial = run_monte_carlo_sweep(&spec, 1).to_string();
        let parallel = run_monte_carlo_sweep(&spec, 4).to_string();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn census_sweep_matches_direct_census() {
        let table = run_census_sweep(4, &[0, 1], 2);
        // n ∈ {2, 3, 4} × f ∈ {0, 1}.
        assert_eq!(table.len(), 6);
        let direct = census(3, 1);
        let rendered = table.to_string();
        assert!(rendered.contains(&direct.satisfying.to_string()));
    }

    #[test]
    fn effective_jobs_resolution() {
        assert_eq!(effective_jobs(None, false), 1);
        assert_eq!(effective_jobs(Some(3), false), 3);
        assert!(effective_jobs(None, true) >= 1);
        assert!(effective_jobs(Some(0), false) >= 1);
    }
}
