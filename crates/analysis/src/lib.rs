//! Analysis toolkit and experiment harness for the IABC reproduction.
//!
//! * [`convergence`] — rounds-to-ε and contraction-rate measurement;
//! * [`contraction`] — Lemma 5 bound evaluation against live executions
//!   (the Theorem 3 phase decomposition, re-enacted);
//! * [`spectral`] — the `f = 0` linear-averaging baseline `|λ₂|`;
//! * [`census`] — exhaustive sweeps of **all** labeled digraphs at small `n`;
//! * [`plot`] — Unicode sparklines / ASCII log charts of traces;
//! * [`table`] — plain-text table rendering for reports;
//! * [`sweep`] — the parallel sweep runner: fans experiment grids across
//!   cores with per-cell coordinate-derived seeds, bit-identical for any
//!   worker count;
//! * [`batched`] — batched sweep execution: groups same-spec simulation
//!   cells into one replica-batched FastMath run (`--batch`), byte-
//!   identical to per-cell dispatch;
//! * [`experiments`] — one runnable regeneration per paper artifact
//!   (E1–E12, extensions X1–X9; see DESIGN.md §4 and `EXPERIMENTS.md`).
//!
//! # Examples
//!
//! ```
//! use iabc_analysis::convergence::fit_geometric_rate;
//!
//! let ranges: Vec<f64> = (0..10).map(|t| 4.0 * 0.5f64.powi(t)).collect();
//! let rho = fit_geometric_rate(&ranges).unwrap();
//! assert!((rho - 0.5).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batched;
pub mod census;
pub mod contraction;
pub mod convergence;
pub mod experiments;
pub mod matrix_repr;
pub mod plot;
pub mod spectral;
pub mod sweep;
pub mod table;
