//! Lemma 5 bound evaluation against measured executions (experiment E10).
//!
//! Lemma 5: if at time `s` the fault-free nodes split into `R` (states
//! within half the range) propagating to `L` in `l` steps, then
//! `U[s+l] − µ[s+l] ≤ (1 − αˡ/2)(U[s] − µ[s])`. Theorem 3 instantiates `R`
//! as whichever half-range side propagates (Lemma 2 guarantees one does).
//!
//! [`measured_phase_length`] re-enacts that choice on a live state vector:
//! it splits the fault-free nodes at the mid-range and returns the
//! propagation length of whichever side propagates — the `l(s)` the proof
//! uses, so the theoretical factor `(1 − α^{l(s)}/2)` can be compared with
//! the measured contraction over those same `l(s)` rounds.

use iabc_core::alpha::contraction_factor;
use iabc_core::propagate::propagation_length;
use iabc_core::Threshold;
use iabc_graph::{Digraph, NodeId, NodeSet};

/// The half-range split of Theorem 3's proof at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSplit {
    /// Nodes with states in the lower half `[µ, (U+µ)/2)`.
    pub low: NodeSet,
    /// Nodes with states in the upper half `[(U+µ)/2, U]`.
    pub high: NodeSet,
}

/// Splits the fault-free nodes at the mid-range value (the proof of
/// Theorem 3). Returns `None` if the range is zero (already converged).
pub fn half_range_split(states: &[f64], fault_set: &NodeSet) -> Option<PhaseSplit> {
    let n = states.len();
    let honest = |i: usize| !fault_set.contains(NodeId::new(i));
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (i, &v) in states.iter().enumerate() {
        if honest(i) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if hi <= lo {
        return None;
    }
    let mid = (hi + lo) / 2.0;
    let mut low = NodeSet::with_universe(n);
    let mut high = NodeSet::with_universe(n);
    for (i, &v) in states.iter().enumerate() {
        if honest(i) {
            if v < mid {
                low.insert(NodeId::new(i));
            } else {
                high.insert(NodeId::new(i));
            }
        }
    }
    Some(PhaseSplit { low, high })
}

/// The `l(s)` of the proof of Theorem 3: propagation length of whichever
/// half-range side propagates to the other. `None` if neither side
/// propagates (graph violates the condition) or the range is zero.
pub fn measured_phase_length(
    g: &Digraph,
    states: &[f64],
    fault_set: &NodeSet,
    threshold: Threshold,
) -> Option<usize> {
    let split = half_range_split(states, fault_set)?;
    // Prefer the side confined to the smaller interval, mirroring the proof:
    // try A = low propagating to B = high first, then the reverse.
    propagation_length(g, &split.low, &split.high, threshold)
        .or_else(|| propagation_length(g, &split.high, &split.low, threshold))
}

/// One point of the bound-vs-measured comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseComparison {
    /// Start round `s` of the phase.
    pub start_round: usize,
    /// Phase length `l(s)`.
    pub length: usize,
    /// Measured `range[s + l] / range[s]`.
    pub measured_factor: f64,
    /// Lemma 5 bound `1 − α^l / 2`.
    pub bound_factor: f64,
}

impl PhaseComparison {
    /// `true` iff the measured contraction respects the bound (with slack
    /// for floating-point noise).
    pub fn holds(&self) -> bool {
        self.measured_factor <= self.bound_factor + 1e-9
    }
}

/// Walks a recorded sequence of state vectors, re-enacting the proof's
/// phase decomposition: at each phase start `s`, compute `l(s)` from the
/// states, then compare the measured contraction over those `l(s)` rounds
/// with the Lemma 5 factor.
///
/// `states_per_round[t]` must be the full state vector after round `t`.
pub fn compare_phases(
    g: &Digraph,
    states_per_round: &[Vec<f64>],
    fault_set: &NodeSet,
    f: usize,
    alpha: f64,
) -> Vec<PhaseComparison> {
    let threshold = Threshold::synchronous(f);
    let range_of = |states: &[f64]| {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, &v) in states.iter().enumerate() {
            if !fault_set.contains(NodeId::new(i)) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        hi - lo
    };
    let mut out = Vec::new();
    let mut s = 0usize;
    while s < states_per_round.len() {
        let Some(l) = measured_phase_length(g, &states_per_round[s], fault_set, threshold) else {
            break;
        };
        if l == 0 || s + l >= states_per_round.len() {
            break;
        }
        let r0 = range_of(&states_per_round[s]);
        let r1 = range_of(&states_per_round[s + l]);
        if r0 <= 1e-300 {
            break;
        }
        out.push(PhaseComparison {
            start_round: s,
            length: l,
            measured_factor: r1 / r0,
            bound_factor: contraction_factor(alpha, l),
        });
        s += l;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_core::alpha::algorithm1_alpha;
    use iabc_core::rules::TrimmedMean;
    use iabc_graph::generators;
    use iabc_sim::adversary::PullAdversary;
    use iabc_sim::{SimConfig, Simulation};

    #[test]
    fn half_range_split_partitions_honest_nodes() {
        let states = [0.0, 1.0, 9.0, 10.0, 555.0];
        let faults = NodeSet::from_indices(5, [4]);
        let split = half_range_split(&states, &faults).unwrap();
        assert_eq!(split.low.to_indices(), vec![0, 1]);
        assert_eq!(split.high.to_indices(), vec![2, 3]);
    }

    #[test]
    fn half_range_split_none_when_converged() {
        let states = [2.0, 2.0, 7.0];
        let faults = NodeSet::from_indices(3, [2]);
        assert!(half_range_split(&states, &faults).is_none());
    }

    #[test]
    fn boundary_value_goes_high() {
        // mid = 5.0; exactly-mid states belong to the upper half per the
        // proof's interval convention [mid, U].
        let states = [0.0, 5.0, 10.0];
        let faults = NodeSet::with_universe(3);
        let split = half_range_split(&states, &faults).unwrap();
        assert!(split.high.contains(NodeId::new(1)));
    }

    #[test]
    fn phase_length_on_complete_graph_is_one() {
        let g = generators::complete(7);
        let states = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0];
        let faults = NodeSet::with_universe(7);
        let l = measured_phase_length(&g, &states, &faults, Threshold::synchronous(2));
        assert_eq!(l, Some(1));
    }

    #[test]
    fn lemma5_bound_holds_on_real_run() {
        // E10 in miniature: run Algorithm 1 on a core network under a
        // stealthy adversary and check every phase respects the bound.
        let g = generators::core_network(7, 2);
        let inputs = [0.0, 10.0, 5.0, 2.0, 8.0, 0.0, 0.0];
        let faults = NodeSet::from_indices(7, [5, 6]);
        let rule = TrimmedMean::new(2);
        let mut sim = Simulation::new(
            &g,
            &inputs,
            faults.clone(),
            &rule,
            Box::new(PullAdversary::new(true)),
        )
        .unwrap();
        let out = sim.run(&SimConfig::default()).unwrap();
        let states: Vec<Vec<f64>> = out
            .trace
            .records()
            .iter()
            .map(|r| r.states.clone())
            .collect();
        let alpha = algorithm1_alpha(&g, 2).unwrap();
        let phases = compare_phases(&g, &states, &faults, 2, alpha);
        assert!(!phases.is_empty(), "run must decompose into phases");
        for p in &phases {
            assert!(
                p.holds(),
                "phase at {} violated Lemma 5: measured {} > bound {}",
                p.start_round,
                p.measured_factor,
                p.bound_factor
            );
        }
    }

    #[test]
    fn compare_phases_stops_on_violating_graph() {
        // Hypercube violates the condition for f = 1: the half-range split
        // along the frozen dimension cut never propagates.
        let g = generators::hypercube(3);
        let faults = NodeSet::with_universe(8);
        let states: Vec<Vec<f64>> = vec![vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]; 4];
        let phases = compare_phases(&g, &states, &faults, 1, 0.25);
        assert!(phases.is_empty());
    }
}
