//! Minimal aligned plain-text tables for experiment reports.
//!
//! The experiments binary regenerates the paper's per-claim results as rows;
//! this renderer keeps them readable in a terminal and diffable in
//! `EXPERIMENTS.md`.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use iabc_analysis::table::Table;
///
/// let mut t = Table::new(["graph", "f", "satisfied"]);
/// t.row(["chord(7,5)", "2", "no"]);
/// t.row(["chord(5,3)", "1", "yes"]);
/// let s = t.to_string();
/// assert!(s.contains("chord(7,5)"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept and
    /// widen the table.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The data rows, in insertion order (cells as rendered).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The column headers (the serving tier serializes tables losslessly).
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.column_count();
        let mut widths = vec![0usize; cols];
        let all_rows = std::iter::once(&self.headers).chain(self.rows.iter());
        for row in all_rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (c, width) in widths.iter().enumerate() {
                let cell = row.get(c).map(String::as_str).unwrap_or("");
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["a", "long-header", "c"]);
        t.row(["xxxx", "y", "z"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "), "{:?}", lines[0]);
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        let s = t.to_string();
        assert!(s.contains('3'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
