//! Exhaustive census of *all* labeled digraphs at small `n`.
//!
//! The paper's corollaries are universally quantified ("for every graph…");
//! at small sizes we can simply check them against **every** labeled simple
//! digraph rather than sampled ones. The census enumerates all
//! `2^(n(n−1))` edge subsets and tallies, per fault bound `f`:
//!
//! * how many graphs satisfy Theorem 1;
//! * the minimum edge count among satisfying graphs (answering the §6.1
//!   minimal-size question exactly at `n = 3f + 1` — it is `n(2f+1)`,
//!   achieved by the complete graph / core network);
//! * that no satisfying graph violates Corollary 2 (`n > 3f`) or
//!   Corollary 3 (min in-degree ≥ `2f+1` when `f > 0`).
//!
//! Cost is `2^(n(n−1))` condition checks: instant for `n ≤ 4`
//! (`2^12 = 4096`), ~minutes for `n = 5` — the experiment caps at 4 and the
//! bench exercises 4 as well.

use iabc_core::theorem1;
use iabc_graph::{Digraph, NodeId};

/// Tallies from an exhaustive sweep of all labeled digraphs on `n` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusRow {
    /// Number of nodes.
    pub n: usize,
    /// Fault bound checked.
    pub f: usize,
    /// Total labeled digraphs enumerated (`2^(n(n−1))`).
    pub graphs: u64,
    /// How many satisfy the Theorem 1 condition.
    pub satisfying: u64,
    /// Minimum directed-edge count among satisfying graphs (`None` if none
    /// satisfy).
    pub min_edges: Option<usize>,
    /// `true` iff every satisfying graph respects Corollary 3
    /// (min in-degree ≥ 2f + 1, vacuous at `f = 0`).
    pub corollary3_holds: bool,
}

/// Runs the exhaustive census for all digraphs on `n` nodes at fault
/// bound `f`.
///
/// # Panics
///
/// Panics if `n(n−1) > 20` (the sweep would exceed ~10⁶ graphs; use the
/// randomized falsifier in `iabc-core` beyond that).
///
/// # Examples
///
/// ```
/// use iabc_analysis::census::census;
///
/// // n = 3, f = 1: Corollary 2 says nothing satisfies (3 <= 3f).
/// let row = census(3, 1);
/// assert_eq!(row.satisfying, 0);
/// ```
pub fn census(n: usize, f: usize) -> CensusRow {
    let pairs: Vec<(NodeId, NodeId)> = (0..n)
        .flat_map(|u| {
            (0..n)
                .filter(move |&v| u != v)
                .map(move |v| (NodeId::new(u), NodeId::new(v)))
        })
        .collect();
    let bits = pairs.len();
    assert!(
        bits <= 20,
        "census over 2^{bits} graphs is too large (n = {n})"
    );
    let total: u64 = 1 << bits;

    let mut satisfying = 0u64;
    let mut min_edges: Option<usize> = None;
    let mut corollary3_holds = true;

    for mask in 0..total {
        let mut g = Digraph::new(n);
        let mut edges = 0usize;
        for (bit, &(u, v)) in pairs.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                g.add_edge(u, v);
                edges += 1;
            }
        }
        if theorem1::check(&g, f).is_satisfied() {
            satisfying += 1;
            min_edges = Some(min_edges.map_or(edges, |m| m.min(edges)));
            if f > 0 && n >= 2 && g.min_in_degree() < 2 * f + 1 {
                corollary3_holds = false;
            }
        }
    }

    CensusRow {
        n,
        f,
        graphs: total,
        satisfying,
        min_edges,
        corollary3_holds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n2_f0_census_matches_hand_count() {
        // Graphs on 2 nodes: {}, {0→1}, {1→0}, {0↔1}. The f = 0 condition
        // (unique source component) fails only for the empty graph.
        let row = census(2, 0);
        assert_eq!(row.graphs, 4);
        assert_eq!(row.satisfying, 3);
        assert_eq!(row.min_edges, Some(1));
    }

    #[test]
    fn n2_f1_census_is_empty() {
        // Corollary 2: need n > 3f = 3.
        let row = census(2, 1);
        assert_eq!(row.satisfying, 0);
        assert_eq!(row.min_edges, None);
    }

    #[test]
    fn n3_f1_census_is_empty() {
        let row = census(3, 1);
        assert_eq!(row.satisfying, 0, "n = 3f violates Corollary 2");
    }

    #[test]
    fn n4_f1_unique_satisfying_graph_is_k4() {
        // Corollary 3 forces in-degree >= 3 at every one of the 4 nodes,
        // which uses all 12 possible edges: K4 is the only candidate, and it
        // works. The census proves the paper's minimality conjecture
        // instance n = 3f + 1 exactly, for f = 1.
        let row = census(4, 1);
        assert_eq!(row.graphs, 1 << 12);
        assert_eq!(row.satisfying, 1);
        assert_eq!(row.min_edges, Some(12));
        assert!(row.corollary3_holds);
    }

    #[test]
    fn n3_f0_satisfying_count_matches_source_component_rule() {
        // Cross-validate the census against an independent characterization:
        // at f = 0, satisfied iff the condensation has a unique source.
        let row = census(3, 0);
        let mut expect = 0u64;
        for mask in 0u64..(1 << 6) {
            let pairs = [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)];
            let mut g = Digraph::new(3);
            for (bit, &(u, v)) in pairs.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    g.add_edge(NodeId::new(u), NodeId::new(v));
                }
            }
            if iabc_graph::algorithms::source_components(&g).len() == 1 {
                expect += 1;
            }
        }
        assert_eq!(row.satisfying, expect);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn census_rejects_oversized_sweeps() {
        let _ = census(6, 1);
    }
}
