//! Matrix representation of Algorithm 1 rounds — the "Markov chain" view
//! the paper notes in §2.3 ("the evolution of the state of the nodes may be
//! modeled by a Markov chain") and the authors' follow-up work develops.
//!
//! One round of Algorithm 1 at the fault-free nodes can be rewritten as a
//! linear iteration over **honest states only**:
//! `v_honest[t] = M[t] · v_honest[t-1]` with `M[t]` row-stochastic. The
//! construction is the standard one: each *surviving* faulty value `w` is
//! bracketed by honest received values `lo ≤ w ≤ hi` (guaranteed by the
//! trimming argument, Lemma 3/4) and replaced by the convex combination
//! `w = λ·lo + (1-λ)·hi`.
//!
//! The per-round **ergodicity coefficient**
//! `τ(M) = 1 − min_{i,j} Σ_k min(M_ik, M_jk)` then bounds the range
//! contraction exactly: `range(M x) ≤ τ(M) · range(x)` — a per-round,
//! execution-specific sharpening of the Lemma 5 phase bound (experiment X2).

use iabc_core::RuleError;
use iabc_graph::{Digraph, NodeId, NodeSet};
use iabc_sim::adversary::{Adversary, AdversaryView};
use iabc_sim::plan::{faulty_edges_of, PlannedMessage, RoundPlan, RoundSlots};

/// The honest-only transition matrix of one Algorithm 1 round.
#[derive(Debug, Clone)]
pub struct RoundMatrix {
    /// Honest node ids, in ascending order; row/column `k` corresponds to
    /// `honest[k]`.
    pub honest: Vec<NodeId>,
    /// Row-stochastic matrix entries, `rows[i][j]` = weight of honest node
    /// `honest[j]`'s previous state in honest node `honest[i]`'s update.
    pub rows: Vec<Vec<f64>>,
}

impl RoundMatrix {
    /// Applies the matrix to an honest state vector (ordered as
    /// [`RoundMatrix::honest`]).
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match.
    pub fn apply(&self, honest_prev: &[f64]) -> Vec<f64> {
        assert_eq!(
            honest_prev.len(),
            self.honest.len(),
            "state vector length mismatch"
        );
        self.rows
            .iter()
            .map(|row| row.iter().zip(honest_prev).map(|(m, v)| m * v).sum())
            .collect()
    }

    /// The ergodicity coefficient `τ(M) = 1 − min_{i,j} Σ_k min(M_ik, M_jk)`.
    /// `range(M x) ≤ τ(M) · range(x)` for any `x`; `τ < 1` certifies strict
    /// per-round contraction.
    pub fn ergodicity_coefficient(&self) -> f64 {
        let h = self.rows.len();
        if h <= 1 {
            return 0.0;
        }
        let mut min_overlap = f64::INFINITY;
        for i in 0..h {
            for j in (i + 1)..h {
                let overlap: f64 = self.rows[i]
                    .iter()
                    .zip(&self.rows[j])
                    .map(|(a, b)| a.min(*b))
                    .sum();
                min_overlap = min_overlap.min(overlap);
            }
        }
        (1.0 - min_overlap).clamp(0.0, 1.0)
    }

    /// Smallest non-zero entry (the paper's `β`-style lower bound on
    /// surviving influence).
    pub fn min_positive_entry(&self) -> f64 {
        self.rows
            .iter()
            .flatten()
            .copied()
            .filter(|&x| x > 0.0)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Builds the honest-only round matrix for one Algorithm 1 step from the
/// previous full state vector, querying `adversary` for the faulty
/// senders' per-edge values (exactly as the engine would at `round`).
///
/// # Errors
///
/// Returns [`RuleError::InsufficientValues`] if some honest node has
/// in-degree `< 2f + 1` (the bracketing construction needs an honest value
/// on both sides of every survivor).
pub fn round_matrix(
    g: &Digraph,
    f: usize,
    fault_set: &NodeSet,
    prev: &[f64],
    adversary: &mut dyn Adversary,
    round: usize,
) -> Result<RoundMatrix, RuleError> {
    let honest: Vec<NodeId> = g.nodes().filter(|v| !fault_set.contains(*v)).collect();
    let col_of: std::collections::HashMap<NodeId, usize> =
        honest.iter().enumerate().map(|(k, &v)| (v, k)).collect();
    let mut rows = Vec::with_capacity(honest.len());

    // Two-phase protocol: plan every faulty edge of the round once, in
    // the same receiver-major order the gather below consumes it.
    // Omission is not modelled here (the matrix view assumes a full
    // received multiset), so the slots disallow it.
    let edges = faulty_edges_of(g, fault_set);
    let view = AdversaryView {
        round,
        graph: g,
        states: prev,
        fault_set,
    };
    let mut plan = RoundPlan::new();
    plan.begin(edges.len());
    adversary.plan_round(&view, RoundSlots::new(&edges, false), &mut plan);
    let mut cursor = 0u32;

    for (&i, _) in honest.iter().zip(0..) {
        let in_deg = g.in_degree(i);
        if f > 0 && in_deg < 2 * f + 1 {
            return Err(RuleError::InsufficientValues {
                needed: 2 * f + 1,
                got: in_deg,
            });
        }
        // Gather (value, sender, honest?) per in-edge.
        let mut received: Vec<(f64, NodeId, bool)> = Vec::with_capacity(in_deg);
        for j in g.in_neighbors(i).iter() {
            if fault_set.contains(j) {
                let raw = match plan.get(cursor) {
                    PlannedMessage::Value(v) => v,
                    // No omission in this model: substitute the
                    // receiver's own (honest, in-hull) previous state.
                    PlannedMessage::Omit => prev[i.index()],
                };
                cursor += 1;
                let v = if raw.is_nan() {
                    1e100
                } else {
                    raw.clamp(-1e100, 1e100)
                };
                received.push((v, j, false));
            } else {
                received.push((prev[j.index()], j, true));
            }
        }
        // Sort by value (sender index as a deterministic tie-break) and trim.
        received.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let survivors = &received[f..received.len() - f];
        let weight = 1.0 / (survivors.len() as f64 + 1.0);

        let mut row = vec![0.0; honest.len()];
        row[col_of[&i]] += weight; // own value
        for &(w, sender, is_honest) in survivors {
            if is_honest {
                row[col_of[&sender]] += weight;
                continue;
            }
            // Bracket the surviving faulty value between honest received
            // values (they exist: the f smallest / largest received values
            // each contain at least one honest sender).
            let lo = received
                .iter()
                .filter(|(v, _, h)| *h && *v <= w)
                .max_by(|a, b| a.0.total_cmp(&b.0))
                .map(|&(v, s, _)| (v, s));
            let hi = received
                .iter()
                .filter(|(v, _, h)| *h && *v >= w)
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .map(|&(v, s, _)| (v, s));
            let (Some((lov, lop)), Some((hiv, hip))) = (lo, hi) else {
                return Err(RuleError::InsufficientValues {
                    needed: 2 * f + 1,
                    got: in_deg,
                });
            };
            if hiv > lov {
                let lambda = (hiv - w) / (hiv - lov);
                row[col_of[&lop]] += weight * lambda;
                row[col_of[&hip]] += weight * (1.0 - lambda);
            } else {
                row[col_of[&lop]] += weight;
            }
        }
        rows.push(row);
    }
    Ok(RoundMatrix { honest, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_core::rules::TrimmedMean;
    use iabc_graph::generators;
    use iabc_sim::adversary::{ConstantAdversary, ExtremesAdversary, PullAdversary};
    use iabc_sim::Simulation;

    fn honest_vec(prev: &[f64], fault_set: &NodeSet) -> Vec<f64> {
        prev.iter()
            .enumerate()
            .filter(|(i, _)| !fault_set.contains(NodeId::new(*i)))
            .map(|(_, &v)| v)
            .collect()
    }

    #[test]
    fn rows_are_stochastic_and_positive() {
        let g = generators::complete(7);
        let faults = NodeSet::from_indices(7, [5, 6]);
        let prev = [0.0, 1.0, 2.0, 3.0, 4.0, 0.0, 0.0];
        let mut adv = ConstantAdversary::new(1e9);
        let m = round_matrix(&g, 2, &faults, &prev, &mut adv, 1).unwrap();
        assert_eq!(m.honest.len(), 5);
        for row in &m.rows {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row sums to {s}");
            assert!(row.iter().all(|&x| x >= 0.0));
        }
        // Self-weight is at least a_i = 1/(6 + 1 - 4) = 1/3.
        for (k, row) in m.rows.iter().enumerate() {
            assert!(row[k] >= 1.0 / 3.0 - 1e-12, "diagonal {}", row[k]);
        }
    }

    #[test]
    fn matrix_reproduces_engine_step_exactly() {
        // One engine step and one matrix application from the same state
        // must agree (up to fp tolerance), for several adversaries.
        let g = generators::complete(7);
        let faults = NodeSet::from_indices(7, [5, 6]);
        let inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 0.0, 0.0];
        let rule = TrimmedMean::new(2);
        for mk in 0..3 {
            let mut engine_adv: Box<dyn Adversary> = match mk {
                0 => Box::new(ConstantAdversary::new(1e9)),
                1 => Box::new(ExtremesAdversary::new(7.0)),
                _ => Box::new(PullAdversary::new(true)),
            };
            let mut matrix_adv: Box<dyn Adversary> = match mk {
                0 => Box::new(ConstantAdversary::new(1e9)),
                1 => Box::new(ExtremesAdversary::new(7.0)),
                _ => Box::new(PullAdversary::new(true)),
            };
            let m = round_matrix(&g, 2, &faults, &inputs, matrix_adv.as_mut(), 1).unwrap();
            let predicted = m.apply(&honest_vec(&inputs, &faults));

            let mut sim = Simulation::new(&g, &inputs, faults.clone(), &rule, {
                // move the boxed adversary into the sim
                std::mem::replace(&mut engine_adv, Box::new(ConstantAdversary::new(0.0)))
            })
            .unwrap();
            sim.step().unwrap();
            let actual = honest_vec(sim.states(), &faults);
            for (p, a) in predicted.iter().zip(&actual) {
                assert!((p - a).abs() < 1e-9, "matrix {p} vs engine {a} (adv {mk})");
            }
        }
    }

    #[test]
    fn ergodicity_coefficient_bounds_range_contraction() {
        let g = generators::core_network(7, 2);
        let faults = NodeSet::from_indices(7, [5, 6]);
        let mut prev = vec![0.0, 10.0, 5.0, 2.0, 8.0, 0.0, 0.0];
        let rule = TrimmedMean::new(2);
        let mut sim = Simulation::new(
            &g,
            &prev,
            faults.clone(),
            &rule,
            Box::new(PullAdversary::new(false)),
        )
        .unwrap();
        for round in 1..=20 {
            let mut adv = PullAdversary::new(false);
            let m = round_matrix(&g, 2, &faults, &prev, &mut adv, round).unwrap();
            let tau = m.ergodicity_coefficient();
            assert!((0.0..=1.0).contains(&tau));
            let hv = honest_vec(&prev, &faults);
            let range_before = hv.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - hv.iter().cloned().fold(f64::INFINITY, f64::min);
            sim.step().unwrap();
            prev = sim.states().to_vec();
            let hv2 = honest_vec(&prev, &faults);
            let range_after = hv2.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - hv2.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(
                range_after <= tau * range_before + 1e-9,
                "round {round}: {range_after} > tau {tau} * {range_before}"
            );
        }
    }

    #[test]
    fn ergodicity_of_uniform_matrix_is_zero() {
        let m = RoundMatrix {
            honest: vec![NodeId::new(0), NodeId::new(1)],
            rows: vec![vec![0.5, 0.5], vec![0.5, 0.5]],
        };
        assert_eq!(m.ergodicity_coefficient(), 0.0);
        assert_eq!(m.min_positive_entry(), 0.5);
    }

    #[test]
    fn ergodicity_of_identity_is_one() {
        let m = RoundMatrix {
            honest: vec![NodeId::new(0), NodeId::new(1)],
            rows: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
        };
        assert_eq!(m.ergodicity_coefficient(), 1.0);
    }

    #[test]
    fn degree_deficient_graphs_are_rejected() {
        let g = generators::cycle(5);
        let faults = NodeSet::from_indices(5, [4]);
        let prev = [0.0; 5];
        let mut adv = ConstantAdversary::new(1.0);
        assert!(matches!(
            round_matrix(&g, 1, &faults, &prev, &mut adv, 1),
            Err(RuleError::InsufficientValues { .. })
        ));
    }

    #[test]
    fn f_zero_matrix_is_plain_averaging() {
        let g = generators::complete(4);
        let faults = NodeSet::with_universe(4);
        let prev = [1.0, 2.0, 3.0, 4.0];
        let mut adv = ConstantAdversary::new(0.0);
        let m = round_matrix(&g, 0, &faults, &prev, &mut adv, 1).unwrap();
        for row in &m.rows {
            for &x in row {
                assert!((x - 0.25).abs() < 1e-12);
            }
        }
        assert_eq!(m.ergodicity_coefficient(), 0.0);
    }
}
