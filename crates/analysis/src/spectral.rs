//! Spectral baseline for the fault-free (`f = 0`) case.
//!
//! With `f = 0` Algorithm 1 degenerates to the classical linear consensus
//! iteration `x[t] = W x[t-1]` with the row-stochastic averaging matrix
//! `W[i][j] = 1/(|N⁻_i| + 1)` for `j ∈ {i} ∪ N⁻_i`. Its asymptotic
//! convergence rate is the second-largest eigenvalue modulus `|λ₂|` of `W`
//! — the yardstick the Byzantine runs are compared against in E10/E12.
//!
//! We estimate `|λ₂|` without a linear-algebra dependency by iterating the
//! *disagreement* dynamics: repeatedly apply `W` and renormalize the
//! deviation-from-consensus component; the growth factor converges to
//! `|λ₂|` for generic starting vectors.

use iabc_graph::Digraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fault-free averaging matrix as row-major dense storage.
///
/// Row `i` has weight `1/(d_i + 1)` on column `i` and each in-neighbour.
pub fn averaging_matrix(g: &Digraph) -> Vec<Vec<f64>> {
    let n = g.node_count();
    let mut w = vec![vec![0.0; n]; n];
    for i in g.nodes() {
        let weight = 1.0 / (g.in_degree(i) as f64 + 1.0);
        w[i.index()][i.index()] = weight;
        for j in g.in_neighbors(i).iter() {
            w[i.index()][j.index()] = weight;
        }
    }
    w
}

fn mat_vec(w: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    w.iter()
        .map(|row| row.iter().zip(x).map(|(a, b)| a * b).sum())
        .collect()
}

/// Estimates `|λ₂|` of the averaging matrix by power iteration on the
/// deviation-from-consensus component.
///
/// Deterministic (seeded); `iterations` ≈ 2000 gives ~4 significant digits
/// on well-separated spectra. Returns `0.0` when the disagreement collapses
/// numerically (e.g. complete graphs converge in one step).
///
/// # Panics
///
/// Panics on the empty graph.
pub fn estimate_lambda2(g: &Digraph, iterations: usize) -> f64 {
    let n = g.node_count();
    assert!(n > 0, "graph must have at least one node");
    if n == 1 {
        return 0.0;
    }
    let w = averaging_matrix(g);
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
    let mut rate = 0.0;
    for _ in 0..iterations {
        // Remove the consensus (all-ones direction) component.
        let mean = x.iter().sum::<f64>() / n as f64;
        for v in &mut x {
            *v -= mean;
        }
        let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-280 {
            return 0.0;
        }
        for v in &mut x {
            *v /= norm;
        }
        x = mat_vec(&w, &x);
        let mean = x.iter().sum::<f64>() / n as f64;
        let new_norm = x
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            .sqrt();
        rate = new_norm;
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_graph::generators;

    #[test]
    fn averaging_matrix_rows_are_stochastic() {
        let g = generators::chord(6, 3);
        let w = averaging_matrix(&g);
        for row in &w {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn complete_graph_collapses_in_one_step() {
        // K_n averaging: every row is uniform, so λ₂ = 0.
        let g = generators::complete(6);
        let l2 = estimate_lambda2(&g, 200);
        assert!(l2 < 1e-10, "lambda2 {l2} should be ~0");
    }

    #[test]
    fn directed_cycle_matches_closed_form() {
        // Directed cycle with self-weight: W eigenvalues (1 + e^{2πik/n})/2,
        // so |λ₂| = cos(π/n).
        for n in [4usize, 6, 8] {
            let g = generators::cycle(n);
            let l2 = estimate_lambda2(&g, 4000);
            let expected = (std::f64::consts::PI / n as f64).cos();
            assert!(
                (l2 - expected).abs() < 1e-3,
                "n={n}: estimated {l2}, closed form {expected}"
            );
        }
    }

    #[test]
    fn lambda2_bounded_by_one() {
        let g = generators::grid(3, 3, false);
        let l2 = estimate_lambda2(&g, 1500);
        assert!(l2 > 0.0 && l2 < 1.0, "lambda2 {l2} out of (0,1)");
    }

    #[test]
    fn single_node_is_zero() {
        assert_eq!(estimate_lambda2(&iabc_graph::Digraph::new(1), 10), 0.0);
    }

    #[test]
    fn denser_graphs_mix_faster() {
        let sparse = generators::cycle(8);
        let dense = generators::chord(8, 4);
        let l_sparse = estimate_lambda2(&sparse, 3000);
        let l_dense = estimate_lambda2(&dense, 3000);
        assert!(
            l_dense < l_sparse,
            "chord ({l_dense}) should mix faster than cycle ({l_sparse})"
        );
    }
}
