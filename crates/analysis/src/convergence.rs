//! Convergence measurement over recorded traces.

use iabc_sim::trace::Trace;

/// Summary statistics of one consensus run's convergence behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSummary {
    /// Initial fault-free range `U[0] − µ[0]`.
    pub initial_range: f64,
    /// Final fault-free range.
    pub final_range: f64,
    /// Rounds executed.
    pub rounds: usize,
    /// First round at which the range was ≤ the probe epsilon, if reached.
    pub rounds_to_epsilon: Option<usize>,
    /// Geometric mean of per-round contraction factors (`< 1` iff shrinking).
    pub mean_contraction: f64,
    /// Worst (largest) observed per-round contraction factor.
    pub worst_contraction: f64,
}

/// Summarizes a trace against a convergence threshold `epsilon`.
///
/// # Panics
///
/// Panics on an empty trace.
pub fn summarize(trace: &Trace, epsilon: f64) -> ConvergenceSummary {
    let records = trace.records();
    assert!(!records.is_empty(), "cannot summarize an empty trace");
    let factors = trace.contraction_factors();
    let mean_contraction = geometric_mean(&factors);
    let worst_contraction = factors.iter().copied().fold(0.0f64, f64::max);
    ConvergenceSummary {
        initial_range: records[0].range(),
        final_range: records[records.len() - 1].range(),
        rounds: records[records.len() - 1].round,
        rounds_to_epsilon: trace.rounds_to_epsilon(epsilon),
        mean_contraction,
        worst_contraction,
    }
}

/// Geometric mean of strictly positive factors; `1.0` for an empty slice,
/// `0.0` if any factor is zero (instant convergence).
pub fn geometric_mean(factors: &[f64]) -> f64 {
    if factors.is_empty() {
        return 1.0;
    }
    if factors.contains(&0.0) {
        return 0.0;
    }
    let log_sum: f64 = factors.iter().map(|f| f.ln()).sum();
    (log_sum / factors.len() as f64).exp()
}

/// Fits `range[t] ≈ range[0] · ρ^t` by least squares on the log-range and
/// returns `ρ`. Rounds with (near-)zero range are skipped. Returns `None`
/// when fewer than two usable points exist.
pub fn fit_geometric_rate(ranges: &[f64]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = ranges
        .iter()
        .enumerate()
        .filter(|(_, &r)| r > 1e-300)
        .map(|(t, &r)| (t as f64, r.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-300 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(slope.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_graph::NodeSet;

    fn trace_from_ranges(ranges: &[f64]) -> Trace {
        let mut t = Trace::new(false);
        let faults = NodeSet::with_universe(2);
        for (round, &r) in ranges.iter().enumerate() {
            t.push(round, &[0.0, r], &faults);
        }
        t
    }

    #[test]
    fn summarize_computes_basic_stats() {
        let t = trace_from_ranges(&[8.0, 4.0, 2.0, 1.0]);
        let s = summarize(&t, 2.0);
        assert_eq!(s.initial_range, 8.0);
        assert_eq!(s.final_range, 1.0);
        assert_eq!(s.rounds, 3);
        assert_eq!(s.rounds_to_epsilon, Some(2));
        assert!((s.mean_contraction - 0.5).abs() < 1e-12);
        assert!((s.worst_contraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summarize_handles_non_converged() {
        let t = trace_from_ranges(&[4.0, 4.0]);
        let s = summarize(&t, 1.0);
        assert_eq!(s.rounds_to_epsilon, None);
        assert!((s.mean_contraction - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn summarize_rejects_empty() {
        let t = Trace::new(false);
        let _ = summarize(&t, 1.0);
    }

    #[test]
    fn geometric_mean_cases() {
        assert_eq!(geometric_mean(&[]), 1.0);
        assert_eq!(geometric_mean(&[0.5, 0.0]), 0.0);
        assert!((geometric_mean(&[0.25, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_exact_geometric_decay() {
        let ranges: Vec<f64> = (0..20).map(|t| 10.0 * 0.8f64.powi(t)).collect();
        let rho = fit_geometric_rate(&ranges).unwrap();
        assert!((rho - 0.8).abs() < 1e-9, "fit {rho}");
    }

    #[test]
    fn fit_requires_two_points() {
        assert_eq!(fit_geometric_rate(&[1.0]), None);
        assert_eq!(fit_geometric_rate(&[0.0, 0.0]), None);
        assert_eq!(fit_geometric_rate(&[]), None);
    }

    #[test]
    fn fit_skips_collapsed_rounds() {
        let ranges = [4.0, 2.0, 1.0, 0.0, 0.0];
        let rho = fit_geometric_rate(&ranges).unwrap();
        assert!((rho - 0.5).abs() < 1e-9);
    }
}
