//! Compact sets of node identifiers backed by fixed-universe bitsets.
//!
//! The condition checker in `iabc-core` enumerates an exponential number of
//! node subsets and, for each, repeatedly evaluates quantities of the form
//! `|N⁻(v) ∩ A|` (how many in-neighbours of `v` lie in a candidate set `A`).
//! [`NodeSet`] makes that a handful of word operations: sets are bitsets over
//! a fixed universe `{0, .., n-1}`, and intersection cardinality is a fused
//! `AND` + popcount over the underlying words.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{BitAnd, BitOr, Sub};

use serde::{Deserialize, Serialize};

use crate::NodeId;

const WORD_BITS: usize = 64;

/// A set of [`NodeId`]s drawn from a fixed universe `{0, .., universe-1}`.
///
/// All binary operations (`union`, `intersection`, ...) require both operands
/// to share the same universe; mixing universes is a logic error and panics.
///
/// # Examples
///
/// ```
/// use iabc_graph::{NodeId, NodeSet};
///
/// let mut a = NodeSet::with_universe(8);
/// a.insert(NodeId::new(1));
/// a.insert(NodeId::new(5));
/// let b = NodeSet::from_indices(8, [5, 6]);
/// assert_eq!(a.intersection_len(&b), 1);
/// assert!(a.union(&b).contains(NodeId::new(6)));
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct NodeSet {
    words: Vec<u64>,
    universe: usize,
}

impl NodeSet {
    /// Creates an empty set over the universe `{0, .., universe-1}`.
    pub fn with_universe(universe: usize) -> Self {
        let nwords = universe.div_ceil(WORD_BITS).max(1);
        NodeSet {
            words: vec![0; nwords],
            universe,
        }
    }

    /// Creates the full set `{0, .., universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::with_universe(universe);
        for i in 0..universe {
            s.insert(NodeId::new(i));
        }
        s
    }

    /// Creates a set from raw indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= universe`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(universe: usize, indices: I) -> Self {
        let mut s = Self::with_universe(universe);
        for i in indices {
            s.insert(NodeId::new(i));
        }
        s
    }

    /// Creates a singleton set `{node}`.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= universe`.
    pub fn singleton(universe: usize, node: NodeId) -> Self {
        let mut s = Self::with_universe(universe);
        s.insert(node);
        s
    }

    /// The size of the universe this set draws from (not the cardinality).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    #[inline]
    fn check_node(&self, node: NodeId) {
        assert!(
            node.index() < self.universe,
            "node {} out of universe 0..{}",
            node.index(),
            self.universe
        );
    }

    /// Inserts `node`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= universe`.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        self.check_node(node);
        let (w, b) = (node.index() / WORD_BITS, node.index() % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `node`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= universe`.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        self.check_node(node);
        let (w, b) = (node.index() / WORD_BITS, node.index() % WORD_BITS);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Returns `true` if `node` is in the set.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        if node.index() >= self.universe {
            return false;
        }
        let (w, b) = (node.index() / WORD_BITS, node.index() % WORD_BITS);
        self.words[w] & (1 << b) != 0
    }

    /// Removes all elements, keeping the universe.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    #[inline]
    fn assert_same_universe(&self, other: &NodeSet) {
        assert_eq!(
            self.universe, other.universe,
            "NodeSet universes differ ({} vs {})",
            self.universe, other.universe
        );
    }

    /// `|self ∩ other|` without allocating.
    ///
    /// This is the hot operation of the condition checker: it evaluates
    /// `|N⁻(v) ∩ A|` against the `f + 1` threshold of the paper's `⇒`
    /// relation.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[inline]
    pub fn intersection_len(&self, other: &NodeSet) -> usize {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Returns a new set `self ∪ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place `self ∪= other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &NodeSet) {
        self.assert_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Returns a new set `self ∩ other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// In-place `self ∩= other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        self.assert_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Returns a new set `self − other` (elements of `self` not in `other`).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// In-place `self −= other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference_with(&mut self, other: &NodeSet) {
        self.assert_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns the complement with respect to the universe.
    pub fn complement(&self) -> NodeSet {
        let mut out = Self::with_universe(self.universe);
        for (o, w) in out.words.iter_mut().zip(&self.words) {
            *o = !w;
        }
        out.mask_tail();
        out
    }

    /// Clears bits at positions `>= universe` (upholds the representation
    /// invariant after whole-word operations).
    fn mask_tail(&mut self) {
        let rem = self.universe % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.universe == 0 {
            self.words.iter_mut().for_each(|w| *w = 0);
        }
    }

    /// Returns `true` if every element of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` if the sets share no element.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<NodeId> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(NodeId::new(wi * WORD_BITS + w.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the elements into a `Vec` of raw indices (ascending).
    pub fn to_indices(&self) -> Vec<usize> {
        self.iter().map(NodeId::index).collect()
    }
}

/// Iterator over the elements of a [`NodeSet`] in increasing order.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(NodeId::new(self.word_idx * WORD_BITS + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for node in iter {
            self.insert(node);
        }
    }
}

impl PartialEq for NodeSet {
    fn eq(&self, other: &Self) -> bool {
        self.universe == other.universe && self.words == other.words
    }
}

impl Eq for NodeSet {}

impl Hash for NodeSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.universe.hash(state);
        self.words.hash(state);
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(NodeId::index))
            .finish()
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, node) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", node.index())?;
        }
        write!(f, "}}")
    }
}

impl BitOr for &NodeSet {
    type Output = NodeSet;

    fn bitor(self, rhs: &NodeSet) -> NodeSet {
        self.union(rhs)
    }
}

impl BitAnd for &NodeSet {
    type Output = NodeSet;

    fn bitand(self, rhs: &NodeSet) -> NodeSet {
        self.intersection(rhs)
    }
}

impl Sub for &NodeSet {
    type Output = NodeSet;

    fn sub(self, rhs: &NodeSet) -> NodeSet {
        self.difference(rhs)
    }
}

/// Enumerates all subsets of `pool` with exactly `k` elements, invoking
/// `visit` for each. Iterative (Gosper-free) combination walk over the
/// materialized element list; allocation-free per subset except the scratch
/// set handed to `visit`.
///
/// Returns early (propagating `false`) if `visit` returns `false`.
pub fn for_each_subset_of_size<F>(pool: &NodeSet, k: usize, mut visit: F) -> bool
where
    F: FnMut(&NodeSet) -> bool,
{
    let elems: Vec<NodeId> = pool.iter().collect();
    if k > elems.len() {
        return true;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    let mut scratch = NodeSet::with_universe(pool.universe());
    loop {
        scratch.clear();
        for &i in &idx {
            scratch.insert(elems[i]);
        }
        if !visit(&scratch) {
            return false;
        }
        // advance combination
        let mut i = k;
        loop {
            if i == 0 {
                return true;
            }
            i -= 1;
            if idx[i] != i + elems.len() - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Enumerates all subsets of `pool` with size in `min_size..=max_size`.
///
/// Returns early (propagating `false`) if `visit` returns `false`.
pub fn for_each_subset_sized<F>(
    pool: &NodeSet,
    min_size: usize,
    max_size: usize,
    mut visit: F,
) -> bool
where
    F: FnMut(&NodeSet) -> bool,
{
    for k in min_size..=max_size.min(pool.len()) {
        if !for_each_subset_of_size(pool, k, &mut visit) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<usize> {
        v.to_vec()
    }

    #[test]
    fn empty_set_has_no_elements() {
        let s = NodeSet::with_universe(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.first(), None);
        assert_eq!(s.to_indices(), ids(&[]));
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = NodeSet::with_universe(130);
        assert!(s.insert(NodeId::new(0)));
        assert!(s.insert(NodeId::new(64)));
        assert!(s.insert(NodeId::new(129)));
        assert!(!s.insert(NodeId::new(64)), "double insert reports false");
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeId::new(129)));
        assert!(!s.contains(NodeId::new(128)));
        assert!(s.remove(NodeId::new(64)));
        assert!(!s.remove(NodeId::new(64)));
        assert_eq!(s.to_indices(), ids(&[0, 129]));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_universe_panics() {
        let mut s = NodeSet::with_universe(4);
        s.insert(NodeId::new(4));
    }

    #[test]
    fn contains_out_of_universe_is_false() {
        let s = NodeSet::full(4);
        assert!(!s.contains(NodeId::new(100)));
    }

    #[test]
    fn full_set_covers_universe() {
        let s = NodeSet::full(70);
        assert_eq!(s.len(), 70);
        assert!((0..70).all(|i| s.contains(NodeId::new(i))));
    }

    #[test]
    fn set_algebra_matches_naive() {
        let a = NodeSet::from_indices(100, [1, 3, 64, 65, 99]);
        let b = NodeSet::from_indices(100, [3, 64, 98, 99]);
        assert_eq!((&a | &b).to_indices(), ids(&[1, 3, 64, 65, 98, 99]));
        assert_eq!((&a & &b).to_indices(), ids(&[3, 64, 99]));
        assert_eq!((&a - &b).to_indices(), ids(&[1, 65]));
        assert_eq!(a.intersection_len(&b), 3);
    }

    #[test]
    fn complement_respects_universe_tail() {
        let a = NodeSet::from_indices(67, [0, 66]);
        let c = a.complement();
        assert_eq!(c.len(), 65);
        assert!(!c.contains(NodeId::new(0)));
        assert!(!c.contains(NodeId::new(66)));
        assert!(c.contains(NodeId::new(65)));
        // Double complement is identity.
        assert_eq!(c.complement(), a);
    }

    #[test]
    fn subset_and_disjoint_relations() {
        let a = NodeSet::from_indices(10, [1, 2]);
        let b = NodeSet::from_indices(10, [1, 2, 5]);
        let c = NodeSet::from_indices(10, [7]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        let empty = NodeSet::with_universe(10);
        assert!(empty.is_subset(&a));
        assert!(empty.is_disjoint(&a));
    }

    #[test]
    #[should_panic(expected = "universes differ")]
    fn mixed_universe_operations_panic() {
        let a = NodeSet::with_universe(4);
        let b = NodeSet::with_universe(5);
        let _ = a.intersection_len(&b);
    }

    #[test]
    fn iterator_yields_ascending_order() {
        let a = NodeSet::from_indices(200, [150, 3, 64, 127, 128]);
        assert_eq!(a.to_indices(), ids(&[3, 64, 127, 128, 150]));
        assert_eq!(a.first(), Some(NodeId::new(3)));
    }

    #[test]
    fn display_formats_as_brace_list() {
        let a = NodeSet::from_indices(10, [2, 5]);
        assert_eq!(a.to_string(), "{2,5}");
        assert_eq!(NodeSet::with_universe(10).to_string(), "{}");
        assert_eq!(format!("{a:?}"), "{2, 5}");
    }

    #[test]
    fn subset_enumeration_counts_binomials() {
        let pool = NodeSet::full(6);
        let mut count = 0usize;
        for_each_subset_of_size(&pool, 3, |s| {
            assert_eq!(s.len(), 3);
            count += 1;
            true
        });
        assert_eq!(count, 20); // C(6,3)

        let mut total = 0usize;
        for_each_subset_sized(&pool, 0, 6, |_| {
            total += 1;
            true
        });
        assert_eq!(total, 64); // 2^6
    }

    #[test]
    fn subset_enumeration_early_exit() {
        let pool = NodeSet::full(8);
        let mut seen = 0usize;
        let completed = for_each_subset_of_size(&pool, 2, |_| {
            seen += 1;
            seen < 5
        });
        assert!(!completed);
        assert_eq!(seen, 5);
    }

    #[test]
    fn subset_enumeration_respects_pool() {
        let pool = NodeSet::from_indices(10, [2, 4, 9]);
        let mut subsets = Vec::new();
        for_each_subset_of_size(&pool, 2, |s| {
            subsets.push(s.to_indices());
            true
        });
        assert_eq!(subsets, vec![ids(&[2, 4]), ids(&[2, 9]), ids(&[4, 9])]);
    }

    #[test]
    fn zero_universe_is_consistent() {
        let s = NodeSet::with_universe(0);
        assert!(s.is_empty());
        assert_eq!(s.complement().len(), 0);
        assert_eq!(s, NodeSet::full(0));
    }

    #[test]
    fn extend_and_equality() {
        let mut s = NodeSet::with_universe(16);
        s.extend([NodeId::new(1), NodeId::new(2)]);
        assert_eq!(s, NodeSet::from_indices(16, [1, 2]));
    }
}
