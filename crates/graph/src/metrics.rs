//! Graph statistics: degree summaries, density, reciprocity, distances.
//!
//! The paper's applications section reasons about topologies through their
//! degrees and connectivity (a hypercube has connectivity `d` but fails
//! Theorem 1; a chord network has in-degree exactly `2f + 1`). These metrics
//! make such statements one-liners in experiments and reports.

use crate::{algorithms, Digraph, NodeId};

/// Summary of in-/out-degree distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest in-degree.
    pub min_in: usize,
    /// Largest in-degree.
    pub max_in: usize,
    /// Mean in-degree (= mean out-degree = `|E| / n`).
    pub mean: f64,
    /// Smallest out-degree.
    pub min_out: usize,
    /// Largest out-degree.
    pub max_out: usize,
}

/// Computes [`DegreeStats`] for `g`.
///
/// Returns all-zero stats for the empty graph.
///
/// # Examples
///
/// ```
/// use iabc_graph::{generators, metrics};
///
/// let stats = metrics::degree_stats(&generators::chord(7, 5));
/// assert_eq!(stats.min_in, 5);
/// assert_eq!(stats.max_in, 5);
/// ```
pub fn degree_stats(g: &Digraph) -> DegreeStats {
    let n = g.node_count();
    if n == 0 {
        return DegreeStats {
            min_in: 0,
            max_in: 0,
            mean: 0.0,
            min_out: 0,
            max_out: 0,
        };
    }
    let ins: Vec<usize> = g.nodes().map(|v| g.in_degree(v)).collect();
    let outs: Vec<usize> = g.nodes().map(|v| g.out_degree(v)).collect();
    DegreeStats {
        min_in: ins.iter().copied().min().unwrap_or(0),
        max_in: ins.iter().copied().max().unwrap_or(0),
        mean: g.edge_count() as f64 / n as f64,
        min_out: outs.iter().copied().min().unwrap_or(0),
        max_out: outs.iter().copied().max().unwrap_or(0),
    }
}

/// Histogram of in-degrees: entry `k` counts nodes with in-degree `k`.
///
/// The vector has length `max_in_degree + 1` (empty for the empty graph).
pub fn in_degree_histogram(g: &Digraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in g.nodes() {
        let d = g.in_degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Edge density `|E| / (n (n − 1))` — the fraction of possible directed
/// edges present. `0.0` for graphs with fewer than two nodes.
pub fn density(g: &Digraph) -> f64 {
    let n = g.node_count();
    if n < 2 {
        return 0.0;
    }
    g.edge_count() as f64 / (n * (n - 1)) as f64
}

/// Fraction of edges `(u, v)` whose reverse `(v, u)` is also present.
/// `1.0` exactly when the graph [is symmetric](Digraph::is_symmetric)
/// (and vacuously for edgeless graphs).
pub fn reciprocity(g: &Digraph) -> f64 {
    if g.edge_count() == 0 {
        return 1.0;
    }
    let mutual = g.edges().filter(|&(u, v)| g.has_edge(v, u)).count();
    mutual as f64 / g.edge_count() as f64
}

/// Eccentricity of `v`: the greatest BFS distance from `v` to any node.
/// `None` if some node is unreachable from `v`.
pub fn eccentricity(g: &Digraph, v: NodeId) -> Option<usize> {
    let n = g.node_count();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[v.index()] = 0;
    queue.push_back(v);
    let mut seen = 1usize;
    let mut ecc = 0usize;
    while let Some(u) = queue.pop_front() {
        for w in g.out_neighbors(u).iter() {
            if dist[w.index()] == usize::MAX {
                dist[w.index()] = dist[u.index()] + 1;
                ecc = ecc.max(dist[w.index()]);
                seen += 1;
                queue.push_back(w);
            }
        }
    }
    (seen == n).then_some(ecc)
}

/// Radius: the minimum [`eccentricity`] over all nodes. `None` if no node
/// reaches every other node (or the graph is empty).
pub fn radius(g: &Digraph) -> Option<usize> {
    g.nodes().filter_map(|v| eccentricity(g, v)).min()
}

/// Average shortest-path length over all ordered reachable pairs `(u, v)`,
/// `u ≠ v`. `None` if no pair is connected.
pub fn average_path_length(g: &Digraph) -> Option<f64> {
    let mut total = 0usize;
    let mut pairs = 0usize;
    for u in g.nodes() {
        let n = g.node_count();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[u.index()] = 0;
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            for w in g.out_neighbors(x).iter() {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[x.index()] + 1;
                    total += dist[w.index()];
                    pairs += 1;
                    queue.push_back(w);
                }
            }
        }
    }
    (pairs > 0).then(|| total as f64 / pairs as f64)
}

/// One-line structural profile used by reports and the CLI: order, size,
/// degree extremes, density, reciprocity, connectivity, diameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// `|V|`.
    pub nodes: usize,
    /// `|E|`.
    pub edges: usize,
    /// Degree summary.
    pub degrees: DegreeStats,
    /// Edge density in `[0, 1]`.
    pub density: f64,
    /// Fraction of reciprocated edges.
    pub reciprocity: f64,
    /// Menger vertex connectivity (`None` for graphs below 2 nodes).
    pub vertex_connectivity: Option<usize>,
    /// Directed diameter (`None` if not strongly connected).
    pub diameter: Option<usize>,
}

/// Computes a [`Profile`] of `g`.
///
/// Vertex connectivity costs `O(n)` max-flow probes; intended for the
/// paper-scale graphs (`n` up to a few hundred), not million-node inputs.
pub fn profile(g: &Digraph) -> Profile {
    Profile {
        nodes: g.node_count(),
        edges: g.edge_count(),
        degrees: degree_stats(g),
        density: density(g),
        reciprocity: reciprocity(g),
        vertex_connectivity: (g.node_count() >= 2).then(|| algorithms::vertex_connectivity(g)),
        diameter: algorithms::diameter(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn degree_stats_on_regular_graphs() {
        let g = generators::chord(9, 5);
        let s = degree_stats(&g);
        assert_eq!(s.min_in, 5);
        assert_eq!(s.max_in, 5);
        assert_eq!(s.min_out, 5);
        assert_eq!(s.max_out, 5);
        assert!((s.mean - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_on_star() {
        let g = generators::star(5); // hub 0 ↔ each of 1..5
        let s = degree_stats(&g);
        assert_eq!(s.max_in, 4);
        assert_eq!(s.min_in, 1);
    }

    #[test]
    fn degree_stats_empty_graph() {
        let s = degree_stats(&Digraph::new(0));
        assert_eq!(s.max_in, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_counts_nodes() {
        let g = generators::star(4);
        let h = in_degree_histogram(&g);
        // Hub has in-degree 3, leaves have in-degree 1.
        assert_eq!(h, vec![0, 3, 0, 1]);
        assert!(in_degree_histogram(&Digraph::new(0)).is_empty());
    }

    #[test]
    fn density_extremes() {
        assert_eq!(density(&generators::complete(6)), 1.0);
        assert_eq!(density(&Digraph::new(6)), 0.0);
        assert_eq!(density(&Digraph::new(1)), 0.0);
        let half = generators::cycle(4);
        assert!((density(&half) - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn reciprocity_detects_symmetry() {
        assert_eq!(reciprocity(&generators::hypercube(3)), 1.0);
        assert_eq!(reciprocity(&generators::cycle(5)), 0.0);
        assert_eq!(reciprocity(&Digraph::new(3)), 1.0);
        // A path plus one reverse edge: 1 of 3 edges reciprocated... the
        // reverse edge itself is also reciprocated, so 2 of 4.
        let mut g = generators::path(4);
        g.add_edge(nid(1), nid(0));
        assert!((reciprocity(&g) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eccentricity_and_radius_of_path() {
        let g = generators::path(4); // 0→1→2→3
        assert_eq!(eccentricity(&g, nid(0)), Some(3));
        assert_eq!(eccentricity(&g, nid(1)), None, "node 0 unreachable from 1");
        assert_eq!(radius(&g), Some(3));
    }

    #[test]
    fn radius_of_cycle_and_star() {
        assert_eq!(radius(&generators::cycle(5)), Some(4));
        assert_eq!(
            radius(&generators::star(5)),
            Some(1),
            "hub reaches all in 1"
        );
        assert_eq!(radius(&Digraph::new(0)), None);
    }

    #[test]
    fn average_path_length_matches_hand_count() {
        let g = generators::path(3); // pairs: 0→1 (1), 0→2 (2), 1→2 (1)
        let apl = average_path_length(&g).unwrap();
        assert!((apl - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(average_path_length(&Digraph::new(3)), None);
    }

    #[test]
    fn profile_of_hypercube_reports_connectivity_d() {
        let p = profile(&generators::hypercube(3));
        assert_eq!(p.nodes, 8);
        assert_eq!(p.edges, 24);
        assert_eq!(p.vertex_connectivity, Some(3));
        assert_eq!(p.diameter, Some(3));
        assert_eq!(p.reciprocity, 1.0);
    }

    #[test]
    fn profile_handles_tiny_graphs() {
        let p = profile(&Digraph::new(1));
        assert_eq!(p.vertex_connectivity, None);
        assert_eq!(p.diameter, Some(0));
    }
}
