//! Graphviz DOT export, with optional colour-coded node partitions.
//!
//! Experiment E11 uses this to regenerate the geometry of the paper's proof
//! illustrations (Figures 1–3): the witness partition `F, L, C, R` returned
//! by the Theorem 1 checker is rendered with one colour per part.

use std::fmt::Write as _;

use crate::{Digraph, NodeSet};

/// A named, coloured group of nodes for DOT rendering.
#[derive(Debug, Clone)]
pub struct DotGroup {
    /// Label rendered into the node tooltip/cluster.
    pub label: String,
    /// Graphviz fill colour (e.g. `"lightblue"`, `"#ffcc00"`).
    pub color: String,
    /// Members of the group.
    pub members: NodeSet,
}

impl DotGroup {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, color: impl Into<String>, members: NodeSet) -> Self {
        DotGroup {
            label: label.into(),
            color: color.into(),
            members,
        }
    }
}

/// Renders `g` as a Graphviz `digraph`.
///
/// Symmetric edge pairs are collapsed to a single `dir=both` edge to keep
/// undirected-style graphs readable. Nodes covered by a [`DotGroup`] are
/// filled with the group colour and labelled `"<id> (<group>)"`; groups are
/// applied in order, first match wins.
///
/// # Examples
///
/// ```
/// use iabc_graph::{generators, dot};
/// let g = generators::cycle(3);
/// let rendered = dot::to_dot(&g, "cycle3", &[]);
/// assert!(rendered.contains("digraph cycle3"));
/// assert!(rendered.contains("0 -> 1"));
/// ```
pub fn to_dot(g: &Digraph, name: &str, groups: &[DotGroup]) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {name} {{").unwrap();
    writeln!(out, "  rankdir=LR;").unwrap();
    writeln!(out, "  node [shape=circle, style=filled, fillcolor=white];").unwrap();
    for v in g.nodes() {
        let group = groups.iter().find(|grp| grp.members.contains(v));
        match group {
            Some(grp) => writeln!(
                out,
                "  {} [fillcolor=\"{}\", label=\"{} ({})\"];",
                v.index(),
                grp.color,
                v.index(),
                grp.label
            )
            .unwrap(),
            None => writeln!(out, "  {};", v.index()).unwrap(),
        }
    }
    for (u, v) in g.edges() {
        if g.has_edge(v, u) {
            // Emit each symmetric pair once.
            if u.index() < v.index() {
                writeln!(out, "  {} -> {} [dir=both];", u.index(), v.index()).unwrap();
            }
        } else {
            writeln!(out, "  {} -> {};", u.index(), v.index()).unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, NodeSet};

    #[test]
    fn directed_edges_rendered_once() {
        let g = generators::path(3);
        let d = to_dot(&g, "p", &[]);
        assert!(d.contains("0 -> 1;"));
        assert!(d.contains("1 -> 2;"));
        assert!(!d.contains("dir=both"));
    }

    #[test]
    fn symmetric_edges_collapse_to_dir_both() {
        let g = generators::complete(3);
        let d = to_dot(&g, "k3", &[]);
        assert_eq!(d.matches("dir=both").count(), 3);
        assert!(!d.contains("1 -> 0"));
    }

    #[test]
    fn groups_color_members() {
        let g = generators::cycle(4);
        let grp = DotGroup::new("L", "lightblue", NodeSet::from_indices(4, [0, 1]));
        let d = to_dot(&g, "c", &[grp]);
        assert!(d.contains("0 [fillcolor=\"lightblue\", label=\"0 (L)\"];"));
        assert!(d.contains("1 [fillcolor=\"lightblue\", label=\"1 (L)\"];"));
        assert!(d.contains("  2;"));
    }

    #[test]
    fn first_matching_group_wins() {
        let g = generators::cycle(3);
        let g1 = DotGroup::new("A", "red", NodeSet::from_indices(3, [0]));
        let g2 = DotGroup::new("B", "blue", NodeSet::from_indices(3, [0, 1]));
        let d = to_dot(&g, "c", &[g1, g2]);
        assert!(d.contains("0 (A)"));
        assert!(d.contains("1 (B)"));
    }
}
