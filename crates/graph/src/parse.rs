//! Plain-text edge-list serialization.
//!
//! Format: first non-comment line is `n` (node count); every following
//! non-comment line is `u v` (one directed edge). Lines starting with `#`
//! and blank lines are ignored. This is the interchange format used by the
//! experiment harness to snapshot witness graphs.

use crate::{Digraph, GraphError, NodeId};

/// Serializes a graph to the edge-list format (round-trips with
/// [`parse_edge_list`]).
///
/// # Examples
///
/// ```
/// use iabc_graph::{generators, parse};
/// let g = generators::cycle(3);
/// let text = parse::to_edge_list(&g);
/// let back = parse::parse_edge_list(&text)?;
/// assert_eq!(g, back);
/// # Ok::<(), iabc_graph::GraphError>(())
/// ```
pub fn to_edge_list(g: &Digraph) -> String {
    let mut out = format!(
        "# iabc digraph: n={} m={}\n{}\n",
        g.node_count(),
        g.edge_count(),
        g.node_count()
    );
    for (u, v) in g.edges() {
        out.push_str(&format!("{} {}\n", u.index(), v.index()));
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed input and propagates
/// [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] from edge
/// insertion.
pub fn parse_edge_list(text: &str) -> Result<Digraph, GraphError> {
    let mut graph: Option<Digraph> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = lineno + 1;
        match &mut graph {
            None => {
                let n: usize = line.parse().map_err(|_| GraphError::Parse {
                    line: lineno,
                    message: format!("expected node count, found {line:?}"),
                })?;
                graph = Some(Digraph::new(n));
            }
            Some(g) => {
                let mut parts = line.split_whitespace();
                let (u, v) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(u), Some(v), None) => (u, v),
                    _ => {
                        return Err(GraphError::Parse {
                            line: lineno,
                            message: format!("expected `u v`, found {line:?}"),
                        })
                    }
                };
                let parse_node = |s: &str| -> Result<usize, GraphError> {
                    s.parse().map_err(|_| GraphError::Parse {
                        line: lineno,
                        message: format!("expected integer node id, found {s:?}"),
                    })
                };
                g.try_add_edge(NodeId::new(parse_node(u)?), NodeId::new(parse_node(v)?))?;
            }
        }
    }
    graph.ok_or(GraphError::Parse {
        line: 0,
        message: "empty input: missing node count".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip_preserves_graph() {
        for g in [
            generators::complete(5),
            generators::chord(7, 5),
            generators::hypercube(3),
            Digraph::new(4),
        ] {
            let text = to_edge_list(&g);
            assert_eq!(parse_edge_list(&text).unwrap(), g);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_edge_list("# header\n\n3\n# edge below\n0 1\n\n1 2\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_count_is_parse_error() {
        let err = parse_edge_list("abc\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn malformed_edge_is_parse_error() {
        let err = parse_edge_list("3\n0 1 2\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err = parse_edge_list("3\n0\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
        let err = parse_edge_list("3\n0 x\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn out_of_range_edge_propagates() {
        let err = parse_edge_list("2\n0 5\n").unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, n: 2 }));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(parse_edge_list("# only comments\n").is_err());
    }
}
