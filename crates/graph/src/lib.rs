//! Directed-graph substrate for the IABC (iterative approximate Byzantine
//! consensus) reproduction.
//!
//! This crate provides everything graph-shaped that the paper
//! (Vaidya–Tseng–Liang, PODC 2012) quantifies over:
//!
//! * [`NodeSet`] — fixed-universe bitsets, the representation that makes the
//!   exponential Theorem 1 checker feasible (`|N⁻(v) ∩ A|` is a word-wise
//!   AND + popcount);
//! * [`Digraph`] — simple digraphs with bitset in/out adjacency (Section 2.1
//!   network model: no self-loops, authenticated reliable links);
//! * [`CompiledTopology`] — the execution-shaped CSR view (flat
//!   `offsets`/`in_neighbors` arrays + dense fault flags) the simulation
//!   engines compile a `(Digraph, NodeSet)` pair into once, so the
//!   per-round gather is a sequential slice walk instead of bitset
//!   iteration;
//! * [`generators`] — the Section 6 families (core network, hypercube,
//!   chord) plus synthetic workloads (circulants, de Bruijn, small-world,
//!   preferential attachment, tournaments, trees);
//! * [`algorithms`] — reachability, Tarjan SCC, condensation, Menger
//!   vertex connectivity;
//! * [`ops`] — unions, complements, box/tensor products, relabelings;
//! * [`metrics`] — degree statistics, density, reciprocity, eccentricity;
//! * [`dot`] / [`parse`] — Graphviz export and edge-list interchange.
//!
//! # Examples
//!
//! ```
//! use iabc_graph::{generators, algorithms, NodeId};
//!
//! // The d-dimensional hypercube has vertex connectivity d (paper §6.2)...
//! let cube = generators::hypercube(3);
//! assert_eq!(algorithms::vertex_connectivity(&cube), 3);
//! // ...and every node has exactly d in-neighbours.
//! assert_eq!(cube.in_degree(NodeId::new(0)), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
mod compiled;
mod digraph;
pub mod dot;
mod error;
pub mod fingerprint;
pub mod generators;
pub mod metrics;
mod nodeset;
pub mod ops;
pub mod parse;

pub use compiled::CompiledTopology;
pub use digraph::Digraph;
pub use error::GraphError;
pub use nodeset::{for_each_subset_of_size, for_each_subset_sized, Iter, NodeSet};

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`Digraph`], a dense index in `0..n`.
///
/// A newtype (rather than a bare `usize`) so that node identifiers, set
/// sizes, and counts cannot be confused at API boundaries.
///
/// # Examples
///
/// ```
/// use iabc_graph::NodeId;
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "3");
/// assert_eq!(NodeId::from(3usize), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(usize);

impl NodeId {
    /// Wraps a raw index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_conversions() {
        let v = NodeId::new(7);
        assert_eq!(usize::from(v), 7);
        assert_eq!(NodeId::from(7usize), v);
        assert_eq!(v.to_string(), "7");
    }

    #[test]
    fn node_id_ordering() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NodeId>();
        assert_send_sync::<NodeSet>();
        assert_send_sync::<Digraph>();
        assert_send_sync::<GraphError>();
    }
}
