//! Simple directed graphs over a fixed node set `{0, .., n-1}`.
//!
//! This mirrors the paper's network model (Section 2.1): a simple digraph
//! `G(V, E)` with `V = {1, .., n}` (we 0-index), no self-loops, and
//! authenticated reliable point-to-point links. Both in- and out-adjacency
//! are stored as [`NodeSet`] bitsets so that the condition checker can
//! evaluate `|N⁻(v) ∩ A|` in a few word operations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId, NodeSet};

/// A simple directed graph on nodes `{0, .., n-1}` with no self-loops.
///
/// # Examples
///
/// ```
/// use iabc_graph::{Digraph, NodeId};
///
/// let mut g = Digraph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(2));
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert_eq!(g.in_degree(NodeId::new(2)), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Digraph {
    n: usize,
    in_nbrs: Vec<NodeSet>,
    out_nbrs: Vec<NodeSet>,
    edge_count: usize,
}

impl Digraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Digraph {
            n,
            in_nbrs: (0..n).map(|_| NodeSet::with_universe(n)).collect(),
            out_nbrs: (0..n).map(|_| NodeSet::with_universe(n)).collect(),
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] on
    /// invalid edges.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut g = Self::new(n);
        for (u, v) in edges {
            g.try_add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(g)
    }

    /// Number of nodes `n = |V|`.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all node identifiers `0, .., n-1`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }

    /// The full node set `V` as a [`NodeSet`].
    pub fn node_set(&self) -> NodeSet {
        NodeSet::full(self.n)
    }

    #[inline]
    fn check_node(&self, node: NodeId) -> Result<(), GraphError> {
        if node.index() >= self.n {
            Err(GraphError::NodeOutOfRange {
                node: node.index(),
                n: self.n,
            })
        } else {
            Ok(())
        }
    }

    /// Adds the directed edge `(u, v)`; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range or `u == v` (the model excludes
    /// self-loops). Use [`Digraph::try_add_edge`] for a fallible variant.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.try_add_edge(u, v)
            .unwrap_or_else(|e| panic!("add_edge({u}, {v}): {e}"))
    }

    /// Adds the directed edge `(u, v)`; returns `true` if it was new.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] if `u == v` and
    /// [`GraphError::NodeOutOfRange`] if either endpoint is `>= n`.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool, GraphError> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u.index() });
        }
        let new = self.out_nbrs[u.index()].insert(v);
        self.in_nbrs[v.index()].insert(u);
        if new {
            self.edge_count += 1;
        }
        Ok(new)
    }

    /// Adds both `(u, v)` and `(v, u)`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Digraph::add_edge`].
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Removes the directed edge `(u, v)`; returns `true` if it existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.n || v.index() >= self.n {
            return false;
        }
        let had = self.out_nbrs[u.index()].remove(v);
        self.in_nbrs[v.index()].remove(u);
        if had {
            self.edge_count -= 1;
        }
        had
    }

    /// Returns `true` if the directed edge `(u, v)` is present.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.n && self.out_nbrs[u.index()].contains(v)
    }

    /// In-neighbour set `N⁻(v) = { u | (u, v) ∈ E }`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_neighbors(&self, v: NodeId) -> &NodeSet {
        &self.in_nbrs[v.index()]
    }

    /// Out-neighbour set `N⁺(v) = { u | (v, u) ∈ E }`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_neighbors(&self, v: NodeId) -> &NodeSet {
        &self.out_nbrs[v.index()]
    }

    /// `|N⁻(v)|`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_nbrs[v.index()].len()
    }

    /// `|N⁺(v)|`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_nbrs[v.index()].len()
    }

    /// Minimum in-degree over all nodes (`0` for the empty graph).
    pub fn min_in_degree(&self) -> usize {
        self.in_nbrs.iter().map(NodeSet::len).min().unwrap_or(0)
    }

    /// Iterates over all directed edges `(u, v)` in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_nbrs[u.index()].iter().map(move |v| (u, v)))
    }

    /// Returns the graph with every edge reversed.
    pub fn reversed(&self) -> Digraph {
        Digraph {
            n: self.n,
            in_nbrs: self.out_nbrs.clone(),
            out_nbrs: self.in_nbrs.clone(),
            edge_count: self.edge_count,
        }
    }

    /// Returns `true` if for every edge `(u, v)` the reverse `(v, u)` is also
    /// present — the paper's notion of an *undirected* graph (Section 6.1).
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }

    /// Adds the reverse of every edge, making the graph symmetric.
    pub fn symmetrize(&mut self) {
        let edges: Vec<_> = self.edges().collect();
        for (u, v) in edges {
            self.try_add_edge(v, u)
                .expect("reverse of a valid edge is valid");
        }
    }

    /// Induced subgraph on `keep`. Returns the subgraph and the mapping from
    /// new (dense) node ids to the original ids, in ascending original order.
    ///
    /// # Panics
    ///
    /// Panics if `keep.universe() != n`.
    pub fn induced_subgraph(&self, keep: &NodeSet) -> (Digraph, Vec<NodeId>) {
        assert_eq!(
            keep.universe(),
            self.n,
            "keep set universe must match graph"
        );
        let old_ids: Vec<NodeId> = keep.iter().collect();
        let mut new_of_old = vec![usize::MAX; self.n];
        for (new, old) in old_ids.iter().enumerate() {
            new_of_old[old.index()] = new;
        }
        let mut sub = Digraph::new(old_ids.len());
        for (new_u, old_u) in old_ids.iter().enumerate() {
            for old_v in self.out_nbrs[old_u.index()].intersection(keep).iter() {
                sub.add_edge(NodeId::new(new_u), NodeId::new(new_of_old[old_v.index()]));
            }
        }
        (sub, old_ids)
    }
}

impl fmt::Debug for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Digraph")
            .field("n", &self.n)
            .field(
                "edges",
                &self
                    .edges()
                    .map(|(u, v)| (u.index(), v.index()))
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl fmt::Display for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digraph(n={}, m={})", self.n, self.edge_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn new_graph_is_empty() {
        let g = Digraph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.min_in_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_edge_updates_both_adjacencies() {
        let mut g = Digraph::new(4);
        assert!(g.add_edge(nid(0), nid(2)));
        assert!(!g.add_edge(nid(0), nid(2)), "duplicate edge not re-added");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(nid(0), nid(2)));
        assert!(!g.has_edge(nid(2), nid(0)));
        assert_eq!(g.out_neighbors(nid(0)).to_indices(), vec![2]);
        assert_eq!(g.in_neighbors(nid(2)).to_indices(), vec![0]);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Digraph::new(3);
        assert!(matches!(
            g.try_add_edge(nid(1), nid(1)),
            Err(GraphError::SelfLoop { node: 1 })
        ));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = Digraph::new(3);
        assert!(matches!(
            g.try_add_edge(nid(0), nid(3)),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        ));
    }

    #[test]
    fn remove_edge_roundtrip() {
        let mut g = Digraph::new(3);
        g.add_edge(nid(0), nid(1));
        assert!(g.remove_edge(nid(0), nid(1)));
        assert!(!g.remove_edge(nid(0), nid(1)));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.has_edge(nid(0), nid(1)));
        assert!(g.in_neighbors(nid(1)).is_empty());
    }

    #[test]
    fn from_edges_builds_graph() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(nid(2), nid(0)));
        assert!(Digraph::from_edges(2, [(0, 0)]).is_err());
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let r = g.reversed();
        assert!(r.has_edge(nid(1), nid(0)));
        assert!(r.has_edge(nid(2), nid(1)));
        assert_eq!(r.edge_count(), 2);
        assert_eq!(r.reversed(), g);
    }

    #[test]
    fn symmetry_detection_and_symmetrize() {
        let mut g = Digraph::from_edges(3, [(0, 1)]).unwrap();
        assert!(!g.is_symmetric());
        g.symmetrize();
        assert!(g.is_symmetric());
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        // 0 -> 1 -> 2 -> 3, plus 0 -> 3. Keep {1, 2, 3}.
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let keep = NodeSet::from_indices(4, [1, 2, 3]);
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(map, vec![nid(1), nid(2), nid(3)]);
        // Edges among kept nodes survive with remapped ids: 1->2 becomes 0->1.
        assert!(sub.has_edge(nid(0), nid(1)));
        assert!(sub.has_edge(nid(1), nid(2)));
        // Edge 0->3 from a dropped node is gone.
        assert_eq!(sub.edge_count(), 2);
    }

    #[test]
    fn edges_iterate_lexicographically() {
        let g = Digraph::from_edges(3, [(2, 0), (0, 2), (0, 1)]).unwrap();
        let e: Vec<_> = g.edges().map(|(u, v)| (u.index(), v.index())).collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (2, 0)]);
    }

    #[test]
    fn display_and_debug_are_informative() {
        let g = Digraph::from_edges(2, [(0, 1)]).unwrap();
        assert_eq!(g.to_string(), "Digraph(n=2, m=1)");
        assert!(format!("{g:?}").contains("(0, 1)"));
    }
}
