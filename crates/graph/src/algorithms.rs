//! Classic digraph algorithms used by the condition checkers and the
//! experiment harness: reachability, strongly connected components,
//! condensation, and vertex connectivity (Menger via unit-capacity max-flow).

use std::collections::VecDeque;

use crate::{Digraph, NodeId, NodeSet};

/// Nodes reachable from `start` (including `start`) following edge direction.
///
/// # Panics
///
/// Panics if `start` is out of range.
pub fn reachable_from(g: &Digraph, start: NodeId) -> NodeSet {
    assert!(start.index() < g.node_count(), "start node out of range");
    let mut seen = NodeSet::with_universe(g.node_count());
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for v in g.out_neighbors(u).iter() {
            if seen.insert(v) {
                queue.push_back(v);
            }
        }
    }
    seen
}

/// Returns `true` if every node can reach every other node.
pub fn is_strongly_connected(g: &Digraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let root = NodeId::new(0);
    reachable_from(g, root).len() == n && reachable_from(&g.reversed(), root).len() == n
}

/// Returns `true` if the underlying undirected graph is connected.
pub fn is_weakly_connected(g: &Digraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    let mut sym = g.clone();
    sym.symmetrize();
    reachable_from(&sym, NodeId::new(0)).len() == n
}

/// Strongly connected components in **reverse topological order** of the
/// condensation (Tarjan). Each component is a [`NodeSet`] over the graph's
/// node universe.
pub fn strongly_connected_components(g: &Digraph) -> Vec<NodeSet> {
    // Iterative Tarjan to avoid recursion-depth limits on long paths.
    let n = g.node_count();
    let mut index = vec![usize::MAX; n];
    let mut lowlink = vec![usize::MAX; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS state: (node, iterator position over out-neighbours).
    enum Frame {
        Enter(usize),
        Resume(usize, Vec<usize>, usize),
    }

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame::Enter(root)];
        while let Some(frame) = call.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    let nbrs: Vec<usize> = g
                        .out_neighbors(NodeId::new(v))
                        .iter()
                        .map(|x| x.index())
                        .collect();
                    call.push(Frame::Resume(v, nbrs, 0));
                }
                Frame::Resume(v, nbrs, mut i) => {
                    let mut descended = false;
                    while i < nbrs.len() {
                        let w = nbrs[i];
                        i += 1;
                        if index[w] == usize::MAX {
                            call.push(Frame::Resume(v, nbrs, i));
                            call.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if lowlink[v] == index[v] {
                        let mut comp = NodeSet::with_universe(n);
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp.insert(NodeId::new(w));
                            if w == v {
                                break;
                            }
                        }
                        components.push(comp);
                    }
                    // Propagate lowlink to the parent frame, if any.
                    if let Some(Frame::Resume(p, _, _)) = call.last() {
                        let p = *p;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                }
            }
        }
    }
    components
}

/// The condensation of `g`: one node per SCC, with an edge between distinct
/// components when any original edge crosses them. Returns the condensation
/// and the component list (indexed by condensation node id, in the same
/// reverse-topological order as [`strongly_connected_components`]).
pub fn condensation(g: &Digraph) -> (Digraph, Vec<NodeSet>) {
    let comps = strongly_connected_components(g);
    let n = g.node_count();
    let mut comp_of = vec![usize::MAX; n];
    for (ci, comp) in comps.iter().enumerate() {
        for v in comp.iter() {
            comp_of[v.index()] = ci;
        }
    }
    let mut cg = Digraph::new(comps.len());
    for (u, v) in g.edges() {
        let (cu, cv) = (comp_of[u.index()], comp_of[v.index()]);
        if cu != cv {
            cg.add_edge(NodeId::new(cu), NodeId::new(cv));
        }
    }
    (cg, comps)
}

/// Components of the condensation with no incoming edges ("source SCCs").
///
/// A digraph admits non-fault-tolerant iterative consensus (`f = 0`) iff its
/// condensation has exactly one source component — this is the classical
/// baseline the paper's `f = 0` case degenerates to.
pub fn source_components(g: &Digraph) -> Vec<NodeSet> {
    let (cg, comps) = condensation(g);
    comps
        .iter()
        .enumerate()
        .filter(|(ci, _)| cg.in_degree(NodeId::new(*ci)) == 0)
        .map(|(_, c)| c.clone())
        .collect()
}

/// Maximum number of internally vertex-disjoint directed paths from `s` to
/// `t` (`s ≠ t`), i.e. the `s`–`t` vertex connectivity when `(s, t) ∉ E`
/// (Menger). Computed with unit-capacity max-flow on the split-node graph.
///
/// If the edge `(s, t)` exists the function counts it as one path plus the
/// disjoint paths through the remaining graph, matching the usual convention.
///
/// # Panics
///
/// Panics if `s == t` or either node is out of range.
pub fn vertex_disjoint_paths(g: &Digraph, s: NodeId, t: NodeId) -> usize {
    assert!(s != t, "s and t must differ");
    let n = g.node_count();
    assert!(s.index() < n && t.index() < n, "node out of range");

    // Split each node v into v_in (2v) and v_out (2v+1) with capacity-1 arc
    // v_in → v_out, except s and t which are not split (infinite capacity).
    // Edge (u, v) becomes u_out → v_in with capacity 1.
    // Max-flow from s_out to t_in via BFS augmentation (Edmonds–Karp); all
    // capacities are 0/1 so adjacency-matrix residuals are fine for the
    // n ≤ a-few-hundred graphs we analyse.
    let nn = 2 * n;
    let mut cap = vec![vec![0u8; nn]; nn];
    let v_in = |v: usize| 2 * v;
    let v_out = |v: usize| 2 * v + 1;
    for v in 0..n {
        if v != s.index() && v != t.index() {
            cap[v_in(v)][v_out(v)] = 1;
        } else {
            // "Unsplit" terminals: generous internal capacity.
            cap[v_in(v)][v_out(v)] = u8::MAX;
        }
    }
    for (u, v) in g.edges() {
        cap[v_out(u.index())][v_in(v.index())] = cap[v_out(u.index())][v_in(v.index())].max(1);
    }
    let source = v_out(s.index());
    let sink = v_in(t.index());

    let mut flow = 0usize;
    loop {
        // BFS for an augmenting path in the residual graph.
        let mut parent = vec![usize::MAX; nn];
        parent[source] = source;
        let mut queue = VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            if u == sink {
                break;
            }
            for v in 0..nn {
                if parent[v] == usize::MAX && cap[u][v] > 0 {
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        if parent[sink] == usize::MAX {
            return flow;
        }
        // All augmenting paths here carry exactly 1 unit.
        let mut v = sink;
        while v != source {
            let u = parent[v];
            cap[u][v] -= 1;
            cap[v][u] = cap[v][u].saturating_add(1);
            v = u;
        }
        flow += 1;
    }
}

/// Global vertex connectivity of a digraph: the minimum over ordered pairs
/// `(s, t)`, `s ≠ t`, of [`vertex_disjoint_paths`]. For the complete digraph
/// (where no pair is non-adjacent) this returns `n - 1` by convention.
///
/// This is `O(n²)` max-flow runs — fine for the `n ≤ 64` graphs in the
/// experiments (e.g. verifying hypercube connectivity `= d`, §6.2).
pub fn vertex_connectivity(g: &Digraph) -> usize {
    let n = g.node_count();
    if n <= 1 {
        return 0;
    }
    let mut best = n - 1;
    for s in 0..n {
        for t in 0..n {
            if s != t {
                let k = vertex_disjoint_paths(g, NodeId::new(s), NodeId::new(t));
                best = best.min(k);
            }
        }
    }
    best
}

/// Length (in edges) of the shortest directed path from `s` to `t`, or `None`
/// if unreachable.
pub fn shortest_path_len(g: &Digraph, s: NodeId, t: NodeId) -> Option<usize> {
    let n = g.node_count();
    assert!(s.index() < n && t.index() < n, "node out of range");
    let mut dist = vec![usize::MAX; n];
    dist[s.index()] = 0;
    let mut queue = VecDeque::from([s]);
    while let Some(u) = queue.pop_front() {
        if u == t {
            return Some(dist[t.index()]);
        }
        for v in g.out_neighbors(u).iter() {
            if dist[v.index()] == usize::MAX {
                dist[v.index()] = dist[u.index()] + 1;
                queue.push_back(v);
            }
        }
    }
    None
}

/// Directed diameter: the maximum over reachable ordered pairs of the
/// shortest-path length. Returns `None` if some pair is unreachable.
pub fn diameter(g: &Digraph) -> Option<usize> {
    let n = g.node_count();
    let mut best = 0usize;
    for s in 0..n {
        for t in 0..n {
            if s != t {
                match shortest_path_len(g, NodeId::new(s), NodeId::new(t)) {
                    Some(d) => best = best.max(d),
                    None => return None,
                }
            }
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn reachability_follows_direction() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(reachable_from(&g, nid(0)).to_indices(), vec![0, 1, 2]);
        assert_eq!(reachable_from(&g, nid(2)).to_indices(), vec![2]);
        assert_eq!(reachable_from(&g, nid(3)).to_indices(), vec![3]);
    }

    #[test]
    fn strong_connectivity_cases() {
        assert!(is_strongly_connected(&generators::cycle(5)));
        assert!(!is_strongly_connected(&generators::path(5)));
        assert!(is_strongly_connected(&generators::complete(1)));
        assert!(is_strongly_connected(&Digraph::new(0)));
        assert!(!is_strongly_connected(&Digraph::new(2)));
    }

    #[test]
    fn weak_connectivity_cases() {
        assert!(is_weakly_connected(&generators::path(5)));
        let mut g = Digraph::new(4);
        g.add_edge(nid(0), nid(1));
        g.add_edge(nid(2), nid(3));
        assert!(!is_weakly_connected(&g));
    }

    #[test]
    fn tarjan_finds_components() {
        // Two 2-cycles joined by a one-way edge, plus an isolated node.
        let g = Digraph::from_edges(5, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]).unwrap();
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 3);
        let mut sizes: Vec<usize> = comps.iter().map(NodeSet::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 2]);
        // Reverse topological order: {2,3} (sink side) must precede {0,1}.
        let pos_of = |target: &[usize]| {
            comps
                .iter()
                .position(|c| c.to_indices() == target)
                .expect("component present")
        };
        assert!(pos_of(&[2, 3]) < pos_of(&[0, 1]));
    }

    #[test]
    fn tarjan_on_complete_graph_is_single_component() {
        let comps = strongly_connected_components(&generators::complete(6));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 6);
    }

    #[test]
    fn tarjan_handles_long_path_iteratively() {
        // A 10_000-node path would overflow a recursive implementation.
        let comps = strongly_connected_components(&generators::path(10_000));
        assert_eq!(comps.len(), 10_000);
    }

    #[test]
    fn condensation_structure() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]).unwrap();
        let (cg, comps) = condensation(&g);
        assert_eq!(cg.node_count(), 2);
        assert_eq!(cg.edge_count(), 1);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn source_components_identify_roots() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]).unwrap();
        let sources = source_components(&g);
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].to_indices(), vec![0, 1]);

        // Two disjoint cycles: two sources.
        let g2 = Digraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        assert_eq!(source_components(&g2).len(), 2);
    }

    #[test]
    fn menger_on_hypercube_equals_dimension() {
        // §6.2: the d-dimensional hypercube has connectivity d.
        for d in 1..=4u32 {
            let g = generators::hypercube(d);
            assert_eq!(vertex_connectivity(&g), d as usize, "dimension {d}");
        }
    }

    #[test]
    fn menger_counts_disjoint_paths() {
        // Diamond: 0 → {1, 2} → 3 gives two disjoint paths.
        let g = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(vertex_disjoint_paths(&g, nid(0), nid(3)), 2);
        // Remove one middle node's edge: only one path remains.
        let g2 = Digraph::from_edges(4, [(0, 1), (0, 2), (1, 3)]).unwrap();
        assert_eq!(vertex_disjoint_paths(&g2, nid(0), nid(3)), 1);
    }

    #[test]
    fn menger_with_direct_edge() {
        // Direct edge s→t plus one indirect path.
        let g = Digraph::from_edges(3, [(0, 2), (0, 1), (1, 2)]).unwrap();
        assert_eq!(vertex_disjoint_paths(&g, nid(0), nid(2)), 2);
    }

    #[test]
    fn connectivity_of_complete_graph() {
        assert_eq!(vertex_connectivity(&generators::complete(5)), 4);
    }

    #[test]
    fn connectivity_of_disconnected_graph_is_zero() {
        let mut g = Digraph::new(4);
        g.add_undirected_edge(nid(0), nid(1));
        g.add_undirected_edge(nid(2), nid(3));
        assert_eq!(vertex_connectivity(&g), 0);
    }

    #[test]
    fn shortest_paths_and_diameter() {
        let g = generators::cycle(5);
        assert_eq!(shortest_path_len(&g, nid(0), nid(3)), Some(3));
        assert_eq!(shortest_path_len(&g, nid(3), nid(0)), Some(2));
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(
            diameter(&generators::path(3)),
            None,
            "path is not strongly connected"
        );
        assert_eq!(diameter(&generators::complete(4)), Some(1));
    }
}
