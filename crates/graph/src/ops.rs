//! Structural operations on digraphs: unions, complements, products, and
//! relabelings.
//!
//! These operators build composite topologies for experiments and supply the
//! algebraic identities the property-test suite leans on — e.g. the
//! `d`-dimensional hypercube of the paper's §6.2 is the `d`-fold
//! [`cartesian_product`] of single edges, and Theorem 1 verdicts must be
//! invariant under [`relabel`] (the condition is a graph property, not a
//! labelling property).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Digraph, NodeId};

/// Disjoint union: `a`'s nodes keep their ids, `b`'s nodes are shifted by
/// `a.node_count()`.
///
/// The result has two weakly-separated halves, so for any `f ≥ 0` it
/// violates Theorem 1 (no partition can dominate across the gap) — a handy
/// negative workload.
///
/// # Examples
///
/// ```
/// use iabc_graph::{generators, ops};
///
/// let g = ops::disjoint_union(&generators::cycle(3), &generators::cycle(4));
/// assert_eq!(g.node_count(), 7);
/// assert_eq!(g.edge_count(), 7);
/// ```
pub fn disjoint_union(a: &Digraph, b: &Digraph) -> Digraph {
    let na = a.node_count();
    let mut g = Digraph::new(na + b.node_count());
    for (u, v) in a.edges() {
        g.add_edge(u, v);
    }
    for (u, v) in b.edges() {
        g.add_edge(NodeId::new(na + u.index()), NodeId::new(na + v.index()));
    }
    g
}

/// Edge-wise union of two graphs over the **same** node set.
///
/// # Panics
///
/// Panics if the node counts differ.
pub fn overlay(a: &Digraph, b: &Digraph) -> Digraph {
    assert_eq!(
        a.node_count(),
        b.node_count(),
        "overlay requires equal node counts ({} vs {})",
        a.node_count(),
        b.node_count()
    );
    let mut g = a.clone();
    for (u, v) in b.edges() {
        g.add_edge(u, v);
    }
    g
}

/// Complement graph: `(u, v)` is an edge iff `u ≠ v` and `(u, v) ∉ E`.
///
/// # Examples
///
/// ```
/// use iabc_graph::{generators, ops};
///
/// let g = generators::cycle(5);
/// let c = ops::complement(&g);
/// assert_eq!(g.edge_count() + c.edge_count(), 5 * 4);
/// ```
pub fn complement(g: &Digraph) -> Digraph {
    let n = g.node_count();
    let mut out = Digraph::new(n);
    for u in g.nodes() {
        for v in g.nodes() {
            if u != v && !g.has_edge(u, v) {
                out.add_edge(u, v);
            }
        }
    }
    out
}

/// Cartesian (box) product `a □ b`: node `(u, v)` has id
/// `u * b.node_count() + v`; `(u, v) → (u', v')` iff `u = u'` and
/// `(v, v') ∈ E(b)`, or `v = v'` and `(u, u') ∈ E(a)`.
///
/// The binary hypercube of the paper's §6.2 is the iterated box product of
/// `K₂`s: `hypercube(d) = K₂ □ ... □ K₂` (`d` times) — asserted in the test
/// suite.
///
/// # Examples
///
/// ```
/// use iabc_graph::{generators, ops};
///
/// let k2 = generators::complete(2);
/// let square = ops::cartesian_product(&k2, &k2);
/// assert_eq!(square.node_count(), 4);
/// assert_eq!(square.edge_count(), 8); // the 4-cycle, both directions
/// ```
pub fn cartesian_product(a: &Digraph, b: &Digraph) -> Digraph {
    let (na, nb) = (a.node_count(), b.node_count());
    let mut g = Digraph::new(na * nb);
    let id = |u: usize, v: usize| NodeId::new(u * nb + v);
    for u in 0..na {
        for (x, y) in b.edges() {
            g.add_edge(id(u, x.index()), id(u, y.index()));
        }
    }
    for v in 0..nb {
        for (x, y) in a.edges() {
            g.add_edge(id(x.index(), v), id(y.index(), v));
        }
    }
    g
}

/// Tensor (categorical) product `a × b`: `(u, v) → (u', v')` iff
/// `(u, u') ∈ E(a)` **and** `(v, v') ∈ E(b)`.
pub fn tensor_product(a: &Digraph, b: &Digraph) -> Digraph {
    let nb = b.node_count();
    let mut g = Digraph::new(a.node_count() * nb);
    for (u, x) in a.edges() {
        for (v, y) in b.edges() {
            g.add_edge(
                NodeId::new(u.index() * nb + v.index()),
                NodeId::new(x.index() * nb + y.index()),
            );
        }
    }
    g
}

/// Relabels nodes through a permutation: node `i` of `g` becomes node
/// `perm[i]` of the result.
///
/// The paper's condition is isomorphism-invariant, so Theorem 1 verdicts
/// must agree before and after relabeling — the property-test suite checks
/// exactly this.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n`.
pub fn relabel(g: &Digraph, perm: &[usize]) -> Digraph {
    let n = g.node_count();
    assert_eq!(
        perm.len(),
        n,
        "permutation length {} != n {}",
        perm.len(),
        n
    );
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n && !seen[p], "perm is not a bijection on 0..{n}");
        seen[p] = true;
    }
    let mut out = Digraph::new(n);
    for (u, v) in g.edges() {
        out.add_edge(NodeId::new(perm[u.index()]), NodeId::new(perm[v.index()]));
    }
    out
}

/// Relabels through a uniformly random permutation; returns the permuted
/// graph and the permutation used (`node i → perm[i]`).
pub fn random_relabel<R: Rng + ?Sized>(g: &Digraph, rng: &mut R) -> (Digraph, Vec<usize>) {
    let mut perm: Vec<usize> = (0..g.node_count()).collect();
    perm.shuffle(rng);
    (relabel(g, &perm), perm)
}

/// Returns `true` iff `perm` is an isomorphism from `a` onto `b`
/// (`(u, v) ∈ E(a) ⟺ (perm[u], perm[v]) ∈ E(b)`).
///
/// # Panics
///
/// Panics if node counts differ or `perm` is not a permutation.
pub fn is_isomorphism(a: &Digraph, b: &Digraph, perm: &[usize]) -> bool {
    assert_eq!(
        a.node_count(),
        b.node_count(),
        "graphs must have equal order"
    );
    if a.edge_count() != b.edge_count() {
        return false;
    }
    relabel(a, perm) == *b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn disjoint_union_shifts_second_graph() {
        let a = generators::path(2); // 0 -> 1
        let b = generators::path(3); // 0 -> 1 -> 2
        let g = disjoint_union(&a, &b);
        assert_eq!(g.node_count(), 5);
        assert!(g.has_edge(nid(0), nid(1)));
        assert!(g.has_edge(nid(2), nid(3)));
        assert!(g.has_edge(nid(3), nid(4)));
        assert!(!g.has_edge(nid(1), nid(2)), "halves stay disconnected");
    }

    #[test]
    fn overlay_merges_edges() {
        let a = generators::path(3);
        let b = generators::cycle(3);
        let g = overlay(&a, &b);
        // path edges {01, 12} ⊂ cycle ∪ path = {01, 12, 20}.
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(nid(2), nid(0)));
    }

    #[test]
    #[should_panic(expected = "equal node counts")]
    fn overlay_rejects_mismatched_orders() {
        let _ = overlay(&generators::path(2), &generators::path(3));
    }

    #[test]
    fn complement_of_complete_is_empty() {
        let g = complement(&generators::complete(5));
        assert_eq!(g.edge_count(), 0);
        let e = complement(&Digraph::new(4));
        assert_eq!(e, generators::complete(4));
    }

    #[test]
    fn complement_is_involutive() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::erdos_renyi(7, 0.4, &mut rng);
        assert_eq!(complement(&complement(&g)), g);
    }

    #[test]
    fn hypercube_is_iterated_k2_box_product() {
        let k2 = generators::complete(2);
        let mut prod = k2.clone();
        for _ in 1..3 {
            prod = cartesian_product(&prod, &k2);
        }
        let cube = generators::hypercube(3);
        // The box-product labelling already matches the generator's
        // bit-vector labelling: node (u, v) = u * 2 + v appends one bit.
        assert_eq!(prod.node_count(), cube.node_count());
        assert_eq!(prod.edge_count(), cube.edge_count());
        for (u, v) in prod.edges() {
            assert_eq!(
                (u.index() ^ v.index()).count_ones(),
                1,
                "box product edge {u}->{v} is not a single bit flip"
            );
        }
    }

    #[test]
    fn box_product_degree_is_sum_of_degrees() {
        let a = generators::cycle(3);
        let b = generators::complete(3);
        let g = cartesian_product(&a, &b);
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 1 + 2);
            assert_eq!(g.out_degree(v), 1 + 2);
        }
    }

    #[test]
    fn tensor_product_degree_is_product_of_degrees() {
        let a = generators::cycle(4);
        let b = generators::complete(3);
        let g = tensor_product(&a, &b);
        assert_eq!(g.node_count(), 12);
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 2);
            assert_eq!(g.out_degree(v), 2);
        }
    }

    #[test]
    fn relabel_identity_and_rotation() {
        let g = generators::path(3);
        assert_eq!(relabel(&g, &[0, 1, 2]), g);
        let r = relabel(&g, &[1, 2, 0]); // 0->1 becomes 1->2, 1->2 becomes 2->0
        assert!(r.has_edge(nid(1), nid(2)));
        assert!(r.has_edge(nid(2), nid(0)));
        assert_eq!(r.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn relabel_rejects_non_permutation() {
        let _ = relabel(&generators::path(3), &[0, 0, 1]);
    }

    #[test]
    fn random_relabel_is_isomorphism() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::erdos_renyi(8, 0.35, &mut rng);
        let (h, perm) = random_relabel(&g, &mut rng);
        assert!(is_isomorphism(&g, &h, &perm));
        assert_eq!(g.edge_count(), h.edge_count());
    }

    #[test]
    fn is_isomorphism_detects_mismatch() {
        let a = generators::path(3);
        let b = generators::cycle(3);
        let perm = [0, 1, 2];
        assert!(!is_isomorphism(&a, &b, &perm));
    }

    #[test]
    fn degenerate_products_are_empty() {
        let empty = Digraph::new(0);
        let g = generators::cycle(3);
        assert_eq!(cartesian_product(&empty, &g).node_count(), 0);
        assert_eq!(tensor_product(&g, &empty).node_count(), 0);
        assert_eq!(disjoint_union(&empty, &g), g);
    }
}
