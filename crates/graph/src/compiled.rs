//! Compiled (CSR) topology for allocation-free hot loops.
//!
//! The simulation engines execute the same per-round gather —
//! "for every fault-free node, visit every in-neighbour in ascending id
//! order" — millions of times. [`crate::Digraph`] stores adjacency as
//! bitsets, which is the right shape for the Theorem 1 condition checker
//! (`|N⁻(v) ∩ A|` in a few word ops) but makes the gather pay a
//! trailing-zeros loop per edge plus a bitset membership test per sender.
//!
//! [`CompiledTopology`] is the execution-shaped view: the in-adjacency
//! flattened to CSR arrays (`offsets`/`in_neighbors`, both `u32`) plus the
//! fault set densified to a `Vec<bool>`, built **once** from a
//! `(Digraph, NodeSet)` pair. The per-edge cost drops to one slice load and
//! one byte load, and the layout is sequential — exactly the row gather of
//! the matrix formulation `v[t] = M[t] v[t-1]` (Vaidya, arXiv:1203.1888).
//!
//! Iteration order over `in_neighbors_of` is ascending node id, matching
//! `Digraph::in_neighbors(..).iter()` bit for bit — the engines' goldens
//! rely on this.
//!
//! [`CompiledTopology::rebuild`] re-derives the CSR arrays from a new graph
//! while reusing the allocations — the dynamic-topology engine calls it
//! when its schedule hands out a different graph for the next round.

use crate::{Digraph, NodeId, NodeSet};

/// CSR view of a digraph's in-adjacency plus a dense fault flag per node.
///
/// # Examples
///
/// ```
/// use iabc_graph::{generators, CompiledTopology, NodeSet};
///
/// let g = generators::complete(4);
/// let faults = NodeSet::from_indices(4, [3]);
/// let t = CompiledTopology::compile(&g, &faults);
/// assert_eq!(t.node_count(), 4);
/// assert_eq!(t.in_neighbors_of(0), &[1, 2, 3]);
/// assert!(t.is_faulty(3) && !t.is_faulty(0));
/// assert_eq!(t.max_in_degree(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTopology {
    n: usize,
    /// `offsets[i]..offsets[i + 1]` indexes node `i`'s in-neighbour run.
    offsets: Vec<u32>,
    /// All in-neighbour ids, concatenated per node in ascending order.
    in_neighbors: Vec<u32>,
    /// Dense fault flags (`is_faulty[i]` ⇔ node `i` is Byzantine).
    is_faulty: Vec<bool>,
    /// Sub-CSR of the **faulty** in-edges: `faulty_in[i]` runs hold
    /// `(slot, sender)` pairs, where `slot` is the position inside node
    /// `i`'s full in-neighbour row. Lets the engines gather every
    /// in-neighbour branchlessly and then overwrite just the faulty slots
    /// with adversary values.
    faulty_offsets: Vec<u32>,
    faulty_in: Vec<(u32, u32)>,
    max_in_degree: usize,
}

impl CompiledTopology {
    /// Compiles `graph`'s in-adjacency and `faults` into flat arrays.
    ///
    /// # Panics
    ///
    /// Panics if the fault set universe differs from the graph's node count
    /// or the graph has more than `u32::MAX` nodes/edges (far beyond any
    /// supported workload).
    pub fn compile(graph: &Digraph, faults: &NodeSet) -> Self {
        assert_eq!(
            faults.universe(),
            graph.node_count(),
            "fault set universe must match the graph"
        );
        let n = graph.node_count();
        let mut compiled = CompiledTopology {
            n,
            offsets: Vec::with_capacity(n + 1),
            in_neighbors: Vec::with_capacity(graph.edge_count()),
            is_faulty: (0..n).map(|i| faults.contains(NodeId::new(i))).collect(),
            faulty_offsets: Vec::with_capacity(n + 1),
            faulty_in: Vec::new(),
            max_in_degree: 0,
        };
        compiled.fill_csr(graph);
        compiled
    }

    /// Re-derives the CSR arrays from `graph`, reusing the existing
    /// allocations. The fault flags are kept — topology churn does not move
    /// the Byzantine set (the dynamic engine's model, §2.2: `F` is fixed
    /// for the whole execution while edges come and go).
    ///
    /// # Panics
    ///
    /// Panics if `graph` has a different node count than the compiled one.
    pub fn rebuild(&mut self, graph: &Digraph) {
        assert_eq!(
            graph.node_count(),
            self.n,
            "rebuild requires the same node universe"
        );
        self.offsets.clear();
        self.in_neighbors.clear();
        self.faulty_offsets.clear();
        self.faulty_in.clear();
        self.fill_csr(graph);
    }

    fn fill_csr(&mut self, graph: &Digraph) {
        assert!(u32::try_from(self.n).is_ok(), "node count exceeds u32");
        self.max_in_degree = 0;
        self.offsets.push(0);
        self.faulty_offsets.push(0);
        for v in graph.nodes() {
            for (slot, u) in graph.in_neighbors(v).iter().enumerate() {
                self.in_neighbors.push(u.index() as u32);
                if self.is_faulty[u.index()] {
                    self.faulty_in.push((slot as u32, u.index() as u32));
                }
            }
            let end = u32::try_from(self.in_neighbors.len()).expect("edge count exceeds u32");
            self.max_in_degree = self.max_in_degree.max(graph.in_degree(v));
            self.offsets.push(end);
            self.faulty_offsets.push(self.faulty_in.len() as u32);
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges in the compiled view.
    pub fn edge_count(&self) -> usize {
        self.in_neighbors.len()
    }

    /// Node `i`'s in-neighbours, ascending — the CSR row.
    #[inline]
    pub fn in_neighbors_of(&self, i: usize) -> &[u32] {
        &self.in_neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// `|N⁻(i)|`.
    #[inline]
    pub fn in_degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Largest in-degree — the capacity bound for per-node scratch buffers.
    pub fn max_in_degree(&self) -> usize {
        self.max_in_degree
    }

    /// Whether node `i` is in the compiled fault set.
    #[inline]
    pub fn is_faulty(&self, i: usize) -> bool {
        self.is_faulty[i]
    }

    /// Node `i`'s **faulty** in-edges as `(slot, sender)` pairs, `slot`
    /// indexing into [`CompiledTopology::in_neighbors_of`]'s row. The
    /// branchless-gather companion: gather the whole row, then patch these
    /// slots with adversary values.
    #[inline]
    pub fn faulty_in_edges_of(&self, i: usize) -> &[(u32, u32)] {
        &self.faulty_in[self.faulty_offsets[i] as usize..self.faulty_offsets[i + 1] as usize]
    }

    /// The raw sub-CSR offset of node `i`'s faulty in-edge run — stable
    /// per-edge slot arithmetic for flattened per-faulty-edge state: the
    /// `k`-th entry of [`CompiledTopology::faulty_in_edges_of`]`(i)` has
    /// global faulty-edge index `faulty_in_offset(i) + k`. The two-phase
    /// adversary protocol keys its per-round `RoundPlan` table on exactly
    /// these indices, so the engines' per-edge lookup is an array index
    /// rather than a trait call.
    #[inline]
    pub fn faulty_in_offset(&self, i: usize) -> usize {
        self.faulty_offsets[i] as usize
    }

    /// Total number of faulty in-edges across all receivers — the length
    /// of the flat index space of [`CompiledTopology::faulty_in_offset`].
    #[inline]
    pub fn faulty_edge_count(&self) -> usize {
        self.faulty_in.len()
    }

    /// The raw CSR offset of node `i`'s row — stable slot arithmetic for
    /// flattened per-edge state (e.g. the delay-bounded engine's mailbox:
    /// the value from `i`'s `k`-th in-neighbour lives at
    /// `in_offset(i) + k`).
    #[inline]
    pub fn in_offset(&self, i: usize) -> usize {
        self.offsets[i] as usize
    }

    /// Compiles a topology **directly from per-node in-neighbour rows**,
    /// never materializing a [`Digraph`]. The bitset adjacency costs
    /// `n²/8` bytes — 125 GB at n = 10⁶ — while a sparse deployment only
    /// needs the CSR arrays, whose footprint is `O(n + edges)`. This is
    /// the constructor the million-node runtime tier builds on.
    ///
    /// `row(i, buf)` must fill `buf` with node `i`'s in-neighbours in
    /// **strictly ascending** id order (the adjacency order every engine
    /// golden is pinned to); `buf` arrives cleared.
    ///
    /// # Panics
    ///
    /// Panics if the fault set universe differs from `n`, a row is not
    /// strictly ascending, a neighbour id is out of range or a self-loop,
    /// or counts exceed `u32`.
    pub fn from_in_rows<F>(n: usize, faults: &NodeSet, mut row: F) -> Self
    where
        F: FnMut(usize, &mut Vec<u32>),
    {
        assert_eq!(faults.universe(), n, "fault set universe must match n");
        assert!(u32::try_from(n).is_ok(), "node count exceeds u32");
        let mut compiled = CompiledTopology {
            n,
            offsets: Vec::with_capacity(n + 1),
            in_neighbors: Vec::new(),
            is_faulty: (0..n).map(|i| faults.contains(NodeId::new(i))).collect(),
            faulty_offsets: Vec::with_capacity(n + 1),
            faulty_in: Vec::new(),
            max_in_degree: 0,
        };
        compiled.offsets.push(0);
        compiled.faulty_offsets.push(0);
        let mut buf = Vec::new();
        for i in 0..n {
            buf.clear();
            row(i, &mut buf);
            let mut prev: Option<u32> = None;
            for (slot, &u) in buf.iter().enumerate() {
                assert!((u as usize) < n, "in-neighbour {u} out of range");
                assert_ne!(u as usize, i, "self-loop at node {i}");
                assert!(prev.is_none_or(|p| p < u), "row {i} not strictly ascending");
                prev = Some(u);
                compiled.in_neighbors.push(u);
                if compiled.is_faulty[u as usize] {
                    compiled.faulty_in.push((slot as u32, u));
                }
            }
            let end = u32::try_from(compiled.in_neighbors.len()).expect("edge count exceeds u32");
            compiled.max_in_degree = compiled.max_in_degree.max(buf.len());
            compiled.offsets.push(end);
            compiled
                .faulty_offsets
                .push(compiled.faulty_in.len() as u32);
        }
        compiled
    }

    /// A directed circulant topology `C_n(1..=degree)` compiled straight
    /// to CSR — node `i`'s in-neighbours are `i − 1, …, i − degree`
    /// (mod `n`). Every node has in-degree exactly `degree`, so the
    /// memory footprint is `n × degree` edge slots: the sparse generator
    /// the deployment scale tier runs on (n = 10⁶ at degree 8 is ~100 MB
    /// of CSR, where the bitset [`Digraph`] would need 125 GB).
    ///
    /// # Panics
    ///
    /// Panics if `degree ≥ n` (neighbour offsets would wrap onto
    /// themselves) or the fault universe differs from `n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use iabc_graph::{CompiledTopology, NodeSet};
    ///
    /// let t = CompiledTopology::circulant(5, 2, &NodeSet::with_universe(5));
    /// assert_eq!(t.in_neighbors_of(0), &[3, 4]);
    /// assert_eq!(t.in_neighbors_of(3), &[1, 2]);
    /// assert_eq!(t.max_in_degree(), 2);
    /// ```
    pub fn circulant(n: usize, degree: usize, faults: &NodeSet) -> Self {
        assert!(degree < n, "circulant degree must be < n");
        CompiledTopology::from_in_rows(n, faults, |i, buf| {
            for k in 1..=degree {
                buf.push(((i + n - k) % n) as u32);
            }
            buf.sort_unstable();
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn compile_matches_digraph_adjacency() {
        let g = generators::chord(7, 5);
        let faults = NodeSet::from_indices(7, [5, 6]);
        let t = CompiledTopology::compile(&g, &faults);
        assert_eq!(t.node_count(), 7);
        assert_eq!(t.edge_count(), g.edge_count());
        assert_eq!(t.max_in_degree(), 5);
        for v in g.nodes() {
            let expect: Vec<u32> = g.in_neighbors(v).iter().map(|u| u.index() as u32).collect();
            assert_eq!(t.in_neighbors_of(v.index()), expect.as_slice());
            assert_eq!(t.in_degree(v.index()), g.in_degree(v));
            assert_eq!(t.is_faulty(v.index()), faults.contains(v));
            // The faulty sub-CSR names exactly the faulty slots of the row.
            let expect_faulty: Vec<(u32, u32)> = expect
                .iter()
                .enumerate()
                .filter(|(_, &u)| faults.contains(crate::NodeId::new(u as usize)))
                .map(|(slot, &u)| (slot as u32, u))
                .collect();
            assert_eq!(t.faulty_in_edges_of(v.index()), expect_faulty.as_slice());
        }
    }

    #[test]
    fn faulty_in_offsets_index_the_sub_csr_contiguously() {
        let g = generators::chord(7, 5);
        let faults = NodeSet::from_indices(7, [5, 6]);
        let t = CompiledTopology::compile(&g, &faults);
        let mut expected = 0usize;
        for i in 0..7 {
            assert_eq!(t.faulty_in_offset(i), expected);
            expected += t.faulty_in_edges_of(i).len();
        }
        assert_eq!(expected, t.faulty_edge_count());
        assert!(t.faulty_edge_count() > 0);
    }

    #[test]
    fn in_offsets_are_contiguous() {
        let g = generators::core_network(7, 2);
        let t = CompiledTopology::compile(&g, &NodeSet::with_universe(7));
        let mut expected = 0usize;
        for i in 0..7 {
            assert_eq!(t.in_offset(i), expected);
            expected += t.in_degree(i);
        }
        assert_eq!(expected, t.edge_count());
    }

    #[test]
    fn rebuild_reuses_and_tracks_new_topology() {
        let dense = generators::complete(6);
        let sparse = generators::cycle(6);
        let mut t = CompiledTopology::compile(&dense, &NodeSet::from_indices(6, [0]));
        assert_eq!(t.edge_count(), dense.edge_count());
        t.rebuild(&sparse);
        assert_eq!(t.edge_count(), 6);
        assert_eq!(t.max_in_degree(), 1);
        for v in sparse.nodes() {
            let expect: Vec<u32> = sparse
                .in_neighbors(v)
                .iter()
                .map(|u| u.index() as u32)
                .collect();
            assert_eq!(t.in_neighbors_of(v.index()), expect.as_slice());
        }
        // Fault flags survive the rebuild.
        assert!(t.is_faulty(0));
        assert!(!t.is_faulty(1));
        // And rebuilding back restores the dense view exactly.
        t.rebuild(&dense);
        assert_eq!(
            t,
            CompiledTopology::compile(&dense, &NodeSet::from_indices(6, [0]))
        );
    }

    #[test]
    #[should_panic(expected = "fault set universe")]
    fn mismatched_universe_panics() {
        let g = generators::complete(3);
        let _ = CompiledTopology::compile(&g, &NodeSet::with_universe(4));
    }

    #[test]
    #[should_panic(expected = "same node universe")]
    fn rebuild_rejects_different_node_count() {
        let mut t = CompiledTopology::compile(&generators::complete(3), &NodeSet::with_universe(3));
        t.rebuild(&generators::complete(4));
    }

    #[test]
    fn from_in_rows_matches_compile_on_a_digraph() {
        // Same topology built both ways must produce identical CSR state,
        // faulty sub-CSR included — the sparse constructor is the scale
        // tier's only path, so it must agree with the pinned one exactly.
        let g = generators::chord(9, 4);
        let faults = NodeSet::from_indices(9, [7, 8]);
        let via_digraph = CompiledTopology::compile(&g, &faults);
        let via_rows = CompiledTopology::from_in_rows(9, &faults, |i, buf| {
            buf.extend(
                g.in_neighbors(crate::NodeId::new(i))
                    .iter()
                    .map(|u| u.index() as u32),
            );
        });
        assert_eq!(via_digraph, via_rows);
    }

    #[test]
    fn circulant_rows_are_the_d_predecessors() {
        let faults = NodeSet::from_indices(6, [0]);
        let t = CompiledTopology::circulant(6, 3, &faults);
        assert_eq!(t.in_neighbors_of(0), &[3, 4, 5]);
        assert_eq!(t.in_neighbors_of(1), &[0, 4, 5]);
        assert_eq!(t.in_neighbors_of(4), &[1, 2, 3]);
        assert_eq!(t.edge_count(), 18);
        assert!(t.is_faulty(0) && !t.is_faulty(5));
        // Node 1's faulty in-edge is slot 0 (sender 0).
        assert_eq!(t.faulty_in_edges_of(1), &[(0, 0)]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn from_in_rows_rejects_unsorted_rows() {
        let _ = CompiledTopology::from_in_rows(3, &NodeSet::with_universe(3), |_, buf| {
            buf.extend([2u32, 1]);
        });
    }

    #[test]
    fn empty_graph_compiles() {
        let t = CompiledTopology::compile(&Digraph::new(0), &NodeSet::with_universe(0));
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.edge_count(), 0);
        assert_eq!(t.max_in_degree(), 0);
    }
}
