//! Error types for graph construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building or parsing a [`crate::Digraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node identifier was `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// An edge `(v, v)` was requested; the model excludes self-loops
    /// (paper Section 2.1).
    SelfLoop {
        /// The node with the attempted self-loop.
        node: usize,
    },
    /// A textual graph description could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        assert_eq!(
            GraphError::NodeOutOfRange { node: 7, n: 5 }.to_string(),
            "node 7 out of range for graph with 5 nodes"
        );
        assert_eq!(
            GraphError::SelfLoop { node: 2 }.to_string(),
            "self-loop on node 2 is not allowed"
        );
        assert_eq!(
            GraphError::Parse {
                line: 3,
                message: "expected two integers".into()
            }
            .to_string(),
            "parse error at line 3: expected two integers"
        );
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&GraphError::SelfLoop { node: 0 });
    }
}
