//! Canonical FNV-1a fingerprints for run identity.
//!
//! Every place in the workspace that needs a compact, stable digest — cell
//! seeds in the sweep runner, the large-n state-bit goldens, and the serving
//! tier's content-addressed run keys — hashes through this one module, so
//! the key schema is defined exactly once.
//!
//! The hash is 64-bit FNV-1a (offset basis `0xcbf2_9ce4_8422_2325`, prime
//! `0x0000_0100_0000_01b3`), folded byte-at-a-time. Multi-byte integers are
//! fed little-endian; `f64`s are fed as their IEEE-754 bit patterns, which is
//! what makes fingerprints of final states *bit-for-bit* comparisons rather
//! than approximate ones.
//!
//! # Examples
//!
//! ```
//! use iabc_graph::fingerprint::{self, Fnv64};
//!
//! // Incremental and one-shot hashing agree.
//! let mut h = Fnv64::new();
//! h.write(b"census[n=4,f=1]");
//! assert_eq!(h.finish(), fingerprint::bytes(b"census[n=4,f=1]"));
//! ```

use crate::{CompiledTopology, NodeSet};

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// Not a `std::hash::Hasher`: the std trait reserves the right to change
/// per-type encodings between releases, while run identities must be stable
/// across builds. Every `write_*` method documents its exact byte feed.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds one byte.
    pub fn write_u8(&mut self, v: u8) -> &mut Self {
        self.write(&[v])
    }

    /// Folds a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Folds a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Folds a `usize` widened to `u64` (8 little-endian bytes), so the
    /// fingerprint is identical on 32- and 64-bit hosts.
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Folds an `f64` as the 8 little-endian bytes of its IEEE-754 bit
    /// pattern. Distinguishes `+0.0` from `-0.0` and every NaN payload —
    /// exactly the bit-for-bit contract the engines are pinned to.
    pub fn write_f64_bits(&mut self, v: f64) -> &mut Self {
        self.write(&v.to_bits().to_le_bytes())
    }

    /// Folds a string as its UTF-8 bytes, length-prefixed (u64 LE) so that
    /// adjacent strings can't alias (`"ab", "c"` vs `"a", "bc"`).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write(s.as_bytes())
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a over raw bytes.
pub fn bytes(data: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(data);
    h.finish()
}

/// FNV-1a over a state vector's f64 bit patterns.
///
/// This is the fingerprint the large-n engine goldens pin (per-value
/// `to_bits().to_le_bytes()`, no length prefix — the byte feed predates this
/// module and the goldens must not move).
pub fn state_bits(states: &[f64]) -> u64 {
    let mut h = Fnv64::new();
    for &v in states {
        h.write(&v.to_bits().to_le_bytes());
    }
    h.finish()
}

/// Fingerprint of a compiled topology plus its fault set.
///
/// Covers the CSR exactly as the engines consume it: node count, in-edge
/// offsets, in-neighbor lists, per-node fault flags, and the faulty-edge
/// sub-CSR. Two `(Digraph, NodeSet)` pairs that compile to the same
/// execution shape fingerprint identically; anything that changes a single
/// gather slot changes the digest.
pub fn topology(topo: &CompiledTopology) -> u64 {
    let n = topo.node_count();
    let mut h = Fnv64::new();
    h.write_usize(n);
    for i in 0..n {
        h.write_usize(topo.in_offset(i));
        for &src in topo.in_neighbors_of(i) {
            h.write_u32(src);
        }
        h.write_u8(u8::from(topo.is_faulty(i)));
        h.write_usize(topo.faulty_in_offset(i));
        for &(src, slot) in topo.faulty_in_edges_of(i) {
            h.write_u32(src);
            h.write_u32(slot);
        }
    }
    h.finish()
}

/// Fingerprint of a fault set alone: universe size plus the sorted member
/// indices.
pub fn fault_set(faults: &NodeSet) -> u64 {
    let mut h = Fnv64::new();
    h.write_usize(faults.universe());
    for idx in faults.to_indices() {
        h.write_usize(idx);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn matches_reference_fnv1a_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn state_bits_is_byte_equivalent_to_manual_fold() {
        let states = [1.5f64, -0.0, f64::NAN, 7.25e300];
        let mut hash = FNV_OFFSET;
        for &v in &states {
            for byte in v.to_bits().to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
        }
        assert_eq!(state_bits(&states), hash);
    }

    #[test]
    fn topology_distinguishes_fault_placement() {
        let g = generators::complete(5);
        let a = CompiledTopology::compile(&g, &NodeSet::from_indices(5, [0]));
        let b = CompiledTopology::compile(&g, &NodeSet::from_indices(5, [1]));
        let c = CompiledTopology::compile(&g, &NodeSet::from_indices(5, [0]));
        assert_ne!(topology(&a), topology(&b));
        assert_eq!(topology(&a), topology(&c));
    }

    #[test]
    fn topology_distinguishes_edge_sets() {
        let faults = NodeSet::with_universe(6);
        let ring = CompiledTopology::compile(&generators::circulant(6, [1]), &faults);
        let chord = CompiledTopology::compile(&generators::circulant(6, [1, 2]), &faults);
        assert_ne!(topology(&ring), topology(&chord));
    }

    #[test]
    fn write_str_prefixes_length_against_aliasing() {
        let mut ab_c = Fnv64::new();
        ab_c.write_str("ab").write_str("c");
        let mut a_bc = Fnv64::new();
        a_bc.write_str("a").write_str("bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
    }

    #[test]
    fn fault_set_covers_universe_and_members() {
        let a = fault_set(&NodeSet::from_indices(8, [1, 3]));
        let b = fault_set(&NodeSet::from_indices(9, [1, 3]));
        let c = fault_set(&NodeSet::from_indices(8, [1, 4]));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
