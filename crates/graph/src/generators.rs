//! Generators for the graph families studied in the paper and common
//! synthetic workloads.
//!
//! The families from Section 6 of the paper are [`core_network`] (§6.1),
//! [`hypercube`] (§6.2, Figure 3) and [`chord`] (§6.3). The remaining
//! generators provide workloads for tests, property tests and benchmarks.

use rand::seq::IteratorRandom;
use rand::Rng;

use crate::{Digraph, NodeId};

/// Complete digraph: every ordered pair `(u, v)`, `u ≠ v`, is an edge.
///
/// Classic approximate-agreement algorithms (Dolev et al. \[5\]) assume this
/// topology with `n > 3f`.
///
/// # Examples
///
/// ```
/// let g = iabc_graph::generators::complete(4);
/// assert_eq!(g.edge_count(), 12);
/// ```
pub fn complete(n: usize) -> Digraph {
    let mut g = Digraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
    }
    g
}

/// Directed cycle `0 → 1 → ... → n-1 → 0`.
pub fn cycle(n: usize) -> Digraph {
    let mut g = Digraph::new(n);
    if n < 2 {
        return g;
    }
    for u in 0..n {
        g.add_edge(NodeId::new(u), NodeId::new((u + 1) % n));
    }
    g
}

/// Directed path `0 → 1 → ... → n-1`.
pub fn path(n: usize) -> Digraph {
    let mut g = Digraph::new(n);
    for u in 1..n {
        g.add_edge(NodeId::new(u - 1), NodeId::new(u));
    }
    g
}

/// Undirected star: bidirectional edges between node `0` (the hub) and every
/// other node.
pub fn star(n: usize) -> Digraph {
    let mut g = Digraph::new(n);
    for v in 1..n {
        g.add_undirected_edge(NodeId::new(0), NodeId::new(v));
    }
    g
}

/// Chord network (paper Definition 5): nodes `0..n`, with an edge
/// `(i, (i + k) mod n)` for every `1 ≤ k ≤ succ`.
///
/// The paper instantiates `succ = 2f + 1` and shows (§6.3):
/// * `f = 1, n = 4` — the graph is complete, trivially satisfies Theorem 1;
/// * `f = 2, n = 7` — **fails** Theorem 1 (witness `F={5,6}, L={0,2},
///   R={1,3,4}`);
/// * `f = 1, n = 5` — satisfies Theorem 1.
///
/// # Panics
///
/// Panics if `succ >= n` (every node would need a self-loop or duplicate).
///
/// # Examples
///
/// ```
/// use iabc_graph::{generators, NodeId};
/// let g = generators::chord(7, 5); // f = 2: succ = 2f + 1 = 5
/// assert_eq!(g.in_degree(NodeId::new(0)), 5);
/// ```
pub fn chord(n: usize, succ: usize) -> Digraph {
    assert!(succ < n, "chord requires succ < n (got succ={succ}, n={n})");
    let mut g = Digraph::new(n);
    for i in 0..n {
        for k in 1..=succ {
            g.add_edge(NodeId::new(i), NodeId::new((i + k) % n));
        }
    }
    g
}

/// Core network (paper Definition 4): an undirected graph on `n > 3f` nodes
/// containing a clique `K` of size `2f + 1`, with every node outside `K`
/// bidirectionally connected to all of `K`.
///
/// The paper shows core networks always satisfy Theorem 1, and conjectures
/// that with `n = 3f + 1` they are edge-minimal among undirected graphs
/// admitting iterative consensus.
///
/// Nodes `0..2f+1` form the clique.
///
/// # Panics
///
/// Panics if `n <= 3 * f`.
///
/// # Examples
///
/// ```
/// use iabc_graph::{generators, NodeId};
/// let g = generators::core_network(4, 1); // K = {0,1,2}
/// assert!(g.is_symmetric());
/// assert_eq!(g.in_degree(NodeId::new(3)), 3); // node 3 hears all of K
/// ```
pub fn core_network(n: usize, f: usize) -> Digraph {
    assert!(n > 3 * f, "core network requires n > 3f (got n={n}, f={f})");
    let k = 2 * f + 1;
    let mut g = Digraph::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_undirected_edge(NodeId::new(u), NodeId::new(v));
        }
    }
    for v in k..n {
        for u in 0..k {
            g.add_undirected_edge(NodeId::new(v), NodeId::new(u));
        }
    }
    g
}

/// `d`-dimensional binary hypercube on `2^d` nodes (undirected, i.e. each
/// undirected link is a pair of directed edges).
///
/// Nodes `x` and `y` are adjacent iff they differ in exactly one bit. The
/// paper (§6.2, Figure 3) shows the hypercube has connectivity `d` yet fails
/// Theorem 1 for every `f ≥ 1`: cutting along any one dimension leaves each
/// node with a single cross edge, so neither side can `⇒` the other.
///
/// # Panics
///
/// Panics if `d >= 32` (node count would overflow practical sizes).
pub fn hypercube(d: u32) -> Digraph {
    assert!(d < 32, "hypercube dimension too large: {d}");
    let n = 1usize << d;
    let mut g = Digraph::new(n);
    for x in 0..n {
        for bit in 0..d {
            let y = x ^ (1usize << bit);
            if x < y {
                g.add_undirected_edge(NodeId::new(x), NodeId::new(y));
            }
        }
    }
    g
}

/// Undirected wheel: a cycle on nodes `1..n` plus a hub `0` connected to all.
pub fn wheel(n: usize) -> Digraph {
    assert!(n >= 4, "wheel requires n >= 4 (got {n})");
    let mut g = star(n);
    for i in 1..n {
        let j = if i == n - 1 { 1 } else { i + 1 };
        g.add_undirected_edge(NodeId::new(i), NodeId::new(j));
    }
    g
}

/// Undirected 2-D grid of `rows × cols` nodes; if `wrap` is true the grid is
/// a torus. Node `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize, wrap: bool) -> Digraph {
    let n = rows * cols;
    let mut g = Digraph::new(n);
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_undirected_edge(id(r, c), id(r, c + 1));
            } else if wrap && cols > 2 {
                g.add_undirected_edge(id(r, c), id(r, 0));
            }
            if r + 1 < rows {
                g.add_undirected_edge(id(r, c), id(r + 1, c));
            } else if wrap && rows > 2 {
                g.add_undirected_edge(id(r, c), id(0, c));
            }
        }
    }
    g
}

/// Erdős–Rényi random digraph `G(n, p)`: each ordered pair `(u, v)`, `u ≠ v`,
/// is an edge independently with probability `p`.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Digraph {
    assert!((0.0..=1.0).contains(&p), "probability p={p} outside [0, 1]");
    let mut g = Digraph::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.random_bool(p) {
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
    }
    g
}

/// Random digraph in which every node has **exactly** `k` in-neighbours,
/// chosen uniformly without replacement.
///
/// Useful for probing Corollary 3 (`k = 2f` should always fail, `k ≥ 2f + 1`
/// may succeed).
///
/// # Panics
///
/// Panics if `k >= n`.
pub fn random_k_in_regular<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Digraph {
    assert!(k < n, "in-degree k={k} must be < n={n}");
    let mut g = Digraph::new(n);
    for v in 0..n {
        let sources = (0..n).filter(|&u| u != v).choose_multiple(rng, k);
        for u in sources {
            g.add_edge(NodeId::new(u), NodeId::new(v));
        }
    }
    g
}

/// Two complete digraphs of `k` nodes each (`{0..k}` and `{k..2k}`) joined
/// by `bridges` bidirectional links (`i ↔ k + i` for `i < bridges`).
///
/// With few bridges the two cliques are mutually insular: for `f ≥ 1` and
/// `bridges ≤ f` the graph violates Theorem 1 **with `F = ∅`** — a useful
/// violating workload on which Algorithm 1 is still well-defined
/// (min in-degree `k − 1`).
///
/// # Panics
///
/// Panics if `bridges > k` or `k == 0`.
pub fn bridged_cliques(k: usize, bridges: usize) -> Digraph {
    assert!(k > 0, "cliques must be non-empty");
    assert!(bridges <= k, "cannot have more bridges than clique nodes");
    let mut g = Digraph::new(2 * k);
    for base in [0, k] {
        for u in 0..k {
            for v in 0..k {
                if u != v {
                    g.add_edge(NodeId::new(base + u), NodeId::new(base + v));
                }
            }
        }
    }
    for i in 0..bridges {
        g.add_undirected_edge(NodeId::new(i), NodeId::new(k + i));
    }
    g
}

/// A "lollipop" pathology: a complete digraph on `clique` nodes with a
/// directed path of `tail` extra nodes hanging off node 0
/// (`clique-1+1 → ... → clique-1+tail`). The tail nodes have in-degree 1, so
/// any `f ≥ 1` violates Corollary 3 — handy for negative tests.
pub fn lollipop(clique: usize, tail: usize) -> Digraph {
    let n = clique + tail;
    let mut g = Digraph::new(n);
    for u in 0..clique {
        for v in 0..clique {
            if u != v {
                g.add_edge(NodeId::new(u), NodeId::new(v));
            }
        }
    }
    let mut prev = 0usize;
    for t in 0..tail {
        let v = clique + t;
        g.add_edge(NodeId::new(prev), NodeId::new(v));
        prev = v;
    }
    g
}

/// Circulant digraph: edge `(i, (i + k) mod n)` for every offset
/// `k ∈ offsets`.
///
/// Generalizes [`chord`]: `chord(n, s)` is `circulant(n, 1..=s)`. Negative
/// offsets are expressed as `n − k`. Offsets are deduplicated by the
/// underlying simple graph.
///
/// # Panics
///
/// Panics if any offset is `0` (self-loop) or `≥ n`.
pub fn circulant<I: IntoIterator<Item = usize>>(n: usize, offsets: I) -> Digraph {
    let mut g = Digraph::new(n);
    for k in offsets {
        assert!(k != 0, "offset 0 would create self-loops");
        assert!(k < n, "offset {k} must be < n = {n}");
        for i in 0..n {
            g.add_edge(NodeId::new(i), NodeId::new((i + k) % n));
        }
    }
    g
}

/// De Bruijn digraph `B(k, d)` on `k^d` nodes, **minus self-loops** (the
/// paper's network model excludes them): node `x` has an edge to
/// `(x·k + a) mod k^d` for each symbol `a ∈ 0..k`.
///
/// A sparse, strongly connected workload with logarithmic diameter — a
/// stress case where in-degrees sit at exactly `k` (minus the removed
/// loops at the two fixed points).
///
/// # Panics
///
/// Panics if `k < 2`, `d == 0`, or `k^d` overflows `usize`.
pub fn de_bruijn(k: usize, d: u32) -> Digraph {
    assert!(k >= 2, "de Bruijn alphabet must have at least 2 symbols");
    assert!(d >= 1, "de Bruijn word length must be at least 1");
    let n = k.checked_pow(d).expect("k^d overflows usize");
    let mut g = Digraph::new(n);
    for x in 0..n {
        for a in 0..k {
            let y = (x * k + a) % n;
            if x != y {
                g.add_edge(NodeId::new(x), NodeId::new(y));
            }
        }
    }
    g
}

/// Watts–Strogatz small world (undirected): a ring lattice where every node
/// links to its `k` nearest neighbours on each side, then each lattice edge
/// is rewired to a uniform random target with probability `beta`.
///
/// `beta = 0` returns the pristine lattice; `beta = 1` approaches a random
/// graph while keeping the edge budget. Rewiring never creates self-loops
/// or duplicate undirected edges (such draws are retried or skipped).
///
/// # Panics
///
/// Panics if `2 * k >= n` or `beta ∉ [0, 1]`.
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Digraph {
    assert!(2 * k < n, "lattice degree 2k = {} must be < n = {n}", 2 * k);
    assert!((0.0..=1.0).contains(&beta), "beta = {beta} outside [0, 1]");
    let mut g = Digraph::new(n);
    for i in 0..n {
        for j in 1..=k {
            let (u, v) = (i, (i + j) % n);
            if rng.random_bool(beta) {
                // Rewire: keep endpoint u, draw a fresh partner.
                let mut tries = 0;
                loop {
                    let w = rng.random_range(0..n);
                    if w != u && !g.has_edge(NodeId::new(u), NodeId::new(w)) {
                        g.add_undirected_edge(NodeId::new(u), NodeId::new(w));
                        break;
                    }
                    tries += 1;
                    if tries > 4 * n {
                        // Saturated neighbourhood; fall back to the lattice edge.
                        if !g.has_edge(NodeId::new(u), NodeId::new(v)) {
                            g.add_undirected_edge(NodeId::new(u), NodeId::new(v));
                        }
                        break;
                    }
                }
            } else if !g.has_edge(NodeId::new(u), NodeId::new(v)) {
                g.add_undirected_edge(NodeId::new(u), NodeId::new(v));
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment (undirected): starts from a
/// complete graph on `m + 1` seed nodes; each subsequent node attaches to
/// `m` distinct existing nodes sampled with probability proportional to
/// their current degree.
///
/// Produces hub-heavy degree distributions — the worst case for conditions
/// like Theorem 1 that require *every* node to keep `2f + 1` independent
/// sources.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Digraph {
    assert!(m >= 1, "attachment count m must be positive");
    assert!(n > m, "need n > m (got n={n}, m={m})");
    let mut g = Digraph::new(n);
    for u in 0..=m {
        for v in (u + 1)..=m {
            g.add_undirected_edge(NodeId::new(u), NodeId::new(v));
        }
    }
    // Repeated-endpoints urn: each edge contributes both endpoints.
    let mut urn: Vec<usize> = Vec::new();
    for (u, v) in g.edges() {
        urn.push(u.index());
        urn.push(v.index());
    }
    for v in (m + 1)..n {
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let pick = if urn.is_empty() {
                rng.random_range(0..v)
            } else {
                urn[rng.random_range(0..urn.len())]
            };
            if !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        for &u in &targets {
            g.add_undirected_edge(NodeId::new(v), NodeId::new(u));
            urn.push(u);
            urn.push(v);
        }
    }
    g
}

/// Random tournament: for every unordered pair `{u, v}` exactly one of the
/// directed edges `(u, v)`, `(v, u)` is present, chosen by a fair coin.
pub fn random_tournament<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Digraph {
    let mut g = Digraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(0.5) {
                g.add_edge(NodeId::new(u), NodeId::new(v));
            } else {
                g.add_edge(NodeId::new(v), NodeId::new(u));
            }
        }
    }
    g
}

/// Balanced rooted tree with bidirectional edges: the root `0` has `arity`
/// children, each internal node has `arity` children, to the given `depth`
/// (a `depth` of 0 is the single root).
///
/// Trees have leaves of degree 1 — with any `f ≥ 1` they violate
/// Corollary 3 at every leaf, making them canonical negative workloads.
pub fn balanced_tree(arity: usize, depth: u32) -> Digraph {
    assert!(arity >= 1, "arity must be positive");
    // n = 1 + arity + arity^2 + ... + arity^depth
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level = level.checked_mul(arity).expect("tree too large");
        n = n.checked_add(level).expect("tree too large");
    }
    let mut g = Digraph::new(n);
    let mut next = 1usize; // next unused id
    let mut frontier = vec![0usize];
    for _ in 0..depth {
        let mut new_frontier = Vec::with_capacity(frontier.len() * arity);
        for &parent in &frontier {
            for _ in 0..arity {
                g.add_undirected_edge(NodeId::new(parent), NodeId::new(next));
                new_frontier.push(next);
                next += 1;
            }
        }
        frontier = new_frontier;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn complete_graph_degrees() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 20);
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 4);
            assert_eq!(g.out_degree(v), 4);
        }
        assert!(g.is_symmetric());
    }

    #[test]
    fn complete_small_cases() {
        assert_eq!(complete(0).edge_count(), 0);
        assert_eq!(complete(1).edge_count(), 0);
        assert_eq!(complete(2).edge_count(), 2);
    }

    #[test]
    fn cycle_and_path_shapes() {
        let c = cycle(4);
        assert_eq!(c.edge_count(), 4);
        assert!(c.has_edge(nid(3), nid(0)));
        let p = path(4);
        assert_eq!(p.edge_count(), 3);
        assert!(!p.has_edge(nid(3), nid(0)));
        assert_eq!(cycle(1).edge_count(), 0, "no self-loop for n=1");
    }

    #[test]
    fn chord_structure_matches_definition5() {
        // f = 2 => succ = 5, n = 7: the paper's counterexample graph.
        let g = chord(7, 5);
        for i in 0..7 {
            assert_eq!(g.out_degree(nid(i)), 5);
            assert_eq!(g.in_degree(nid(i)), 5);
            for k in 1..=5 {
                assert!(g.has_edge(nid(i), nid((i + k) % 7)));
            }
            assert!(!g.has_edge(nid(i), nid((i + 6) % 7)));
        }
    }

    #[test]
    fn chord_f1_n4_is_complete() {
        // Paper: "The case when f = 1 and n = 4 results in a fully connected graph".
        let g = chord(4, 3);
        assert_eq!(g, complete(4));
    }

    #[test]
    #[should_panic(expected = "succ < n")]
    fn chord_rejects_succ_too_large() {
        let _ = chord(4, 4);
    }

    #[test]
    fn core_network_structure_matches_definition4() {
        let f = 2;
        let n = 9;
        let g = core_network(n, f);
        let k = 2 * f + 1;
        assert!(g.is_symmetric());
        // Clique nodes hear all other clique nodes and all outer nodes.
        for u in 0..k {
            assert_eq!(g.in_degree(nid(u)), n - 1);
        }
        // Outer nodes hear exactly the clique.
        for v in k..n {
            assert_eq!(g.in_degree(nid(v)), k);
            for u in 0..k {
                assert!(g.has_edge(nid(v), nid(u)) && g.has_edge(nid(u), nid(v)));
            }
            for w in k..n {
                if v != w {
                    assert!(!g.has_edge(nid(v), nid(w)));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn core_network_rejects_small_n() {
        let _ = core_network(6, 2);
    }

    #[test]
    fn hypercube_has_degree_d() {
        for d in 1..=5u32 {
            let g = hypercube(d);
            assert_eq!(g.node_count(), 1 << d);
            for v in g.nodes() {
                assert_eq!(g.in_degree(v), d as usize);
                assert_eq!(g.out_degree(v), d as usize);
            }
            assert!(g.is_symmetric());
        }
    }

    #[test]
    fn hypercube_adjacency_is_single_bit_flip() {
        let g = hypercube(3);
        for (u, v) in g.edges() {
            assert_eq!((u.index() ^ v.index()).count_ones(), 1);
        }
    }

    #[test]
    fn wheel_hub_and_rim() {
        let g = wheel(6);
        assert_eq!(g.in_degree(nid(0)), 5);
        for v in 1..6 {
            assert_eq!(g.in_degree(nid(v)), 3); // hub + two rim neighbours
        }
        assert!(g.is_symmetric());
    }

    #[test]
    fn grid_and_torus_degrees() {
        let g = grid(3, 3, false);
        assert_eq!(g.in_degree(nid(4)), 4); // centre
        assert_eq!(g.in_degree(nid(0)), 2); // corner
        let t = grid(3, 3, true);
        for v in t.nodes() {
            assert_eq!(t.in_degree(v), 4);
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        let empty = erdos_renyi(6, 0.0, &mut rng);
        assert_eq!(empty.edge_count(), 0);
        let full = erdos_renyi(6, 1.0, &mut rng);
        assert_eq!(full.edge_count(), 30);
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let g1 = erdos_renyi(10, 0.3, &mut StdRng::seed_from_u64(42));
        let g2 = erdos_renyi(10, 0.3, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
    }

    #[test]
    fn random_k_in_regular_has_exact_in_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_k_in_regular(12, 5, &mut rng);
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 5);
        }
    }

    #[test]
    fn bridged_cliques_structure() {
        let g = bridged_cliques(4, 1);
        assert_eq!(g.node_count(), 8);
        // Clique edges: 2 * 12; bridge: 2.
        assert_eq!(g.edge_count(), 26);
        assert!(g.has_edge(nid(0), nid(4)) && g.has_edge(nid(4), nid(0)));
        assert!(!g.has_edge(nid(1), nid(5)));
        assert_eq!(g.in_degree(nid(0)), 4);
        assert_eq!(g.in_degree(nid(1)), 3);
    }

    #[test]
    #[should_panic(expected = "more bridges")]
    fn bridged_cliques_rejects_excess_bridges() {
        let _ = bridged_cliques(2, 3);
    }

    #[test]
    fn circulant_generalizes_chord() {
        assert_eq!(circulant(7, 1..=5), chord(7, 5));
        let g = circulant(6, [1, 3]);
        for i in 0..6 {
            assert!(g.has_edge(nid(i), nid((i + 1) % 6)));
            assert!(g.has_edge(nid(i), nid((i + 3) % 6)));
            assert_eq!(g.out_degree(nid(i)), 2);
        }
    }

    #[test]
    #[should_panic(expected = "offset 0")]
    fn circulant_rejects_zero_offset() {
        let _ = circulant(5, [0]);
    }

    #[test]
    fn de_bruijn_structure() {
        let g = de_bruijn(2, 3); // 8 nodes
        assert_eq!(g.node_count(), 8);
        // Node x points at 2x mod 8 and 2x+1 mod 8, minus self-loops at 0 and 7.
        assert!(g.has_edge(nid(3), nid(6)));
        assert!(g.has_edge(nid(3), nid(7)));
        assert!(!g.has_edge(nid(0), nid(0)));
        assert_eq!(g.out_degree(nid(0)), 1, "loop at 0 removed");
        assert_eq!(g.out_degree(nid(7)), 1, "loop at 7 removed");
        assert_eq!(g.out_degree(nid(3)), 2);
        assert!(crate::algorithms::is_strongly_connected(&g));
    }

    #[test]
    fn watts_strogatz_beta_zero_is_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(10, 2, 0.0, &mut rng);
        assert!(g.is_symmetric());
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 4);
        }
    }

    #[test]
    fn watts_strogatz_preserves_symmetry_when_rewired() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = watts_strogatz(20, 3, 0.5, &mut rng);
        assert!(g.is_symmetric());
        // Every node keeps at least its own outgoing attachment budget.
        assert!(
            g.edge_count() >= 2 * 20,
            "rewiring must not lose many edges"
        );
    }

    #[test]
    fn barabasi_albert_degrees_and_symmetry() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(30, 3, &mut rng);
        assert!(g.is_symmetric());
        // Every non-seed node attached to exactly 3 targets, so min degree >= 3.
        for v in g.nodes() {
            assert!(
                g.in_degree(v) >= 3,
                "node {v} has degree {}",
                g.in_degree(v)
            );
        }
        // Edge count: seed K4 has 12 directed; each of 26 newcomers adds 6.
        assert_eq!(g.edge_count(), 12 + 26 * 6);
    }

    #[test]
    fn random_tournament_has_one_edge_per_pair() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_tournament(9, &mut rng);
        assert_eq!(g.edge_count(), 9 * 8 / 2);
        for u in 0..9 {
            for v in (u + 1)..9 {
                assert!(g.has_edge(nid(u), nid(v)) ^ g.has_edge(nid(v), nid(u)));
            }
        }
    }

    #[test]
    fn balanced_tree_shape() {
        let g = balanced_tree(2, 2); // 1 + 2 + 4 = 7 nodes
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 2 * 6, "6 undirected tree edges");
        assert!(g.is_symmetric());
        assert_eq!(g.in_degree(nid(0)), 2);
        assert_eq!(g.in_degree(nid(1)), 3); // parent + 2 children
        assert_eq!(g.in_degree(nid(3)), 1); // leaf
        let root_only = balanced_tree(3, 0);
        assert_eq!(root_only.node_count(), 1);
    }

    #[test]
    fn lollipop_tail_has_in_degree_one() {
        let g = lollipop(4, 3);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.in_degree(nid(4)), 1);
        assert_eq!(g.in_degree(nid(5)), 1);
        assert_eq!(g.in_degree(nid(6)), 1);
        assert_eq!(g.in_degree(nid(0)), 3);
    }
}
