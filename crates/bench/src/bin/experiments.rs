//! Regenerates every table and figure of the paper (experiments E1–E12)
//! and the extension experiments (X1–X13).
//!
//! Usage:
//!
//! ```text
//! experiments              # run everything
//! experiments e7 e8        # run a subset by id
//! experiments --out DIR    # also write DOT artifacts to DIR (default: experiments_out)
//! ```
//!
//! Output is the per-experiment table plus a PASS/FAIL verdict; the recorded
//! results live in `EXPERIMENTS.md`.

use std::path::PathBuf;
use std::process::ExitCode;

use iabc_analysis::experiments::{self, ExperimentResult};

fn main() -> ExitCode {
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("experiments_out");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let Some(dir) = args.next() else {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                };
                out_dir = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                eprintln!("usage: experiments [--out DIR] [E1 .. E12 | X1 .. X13]");
                return ExitCode::SUCCESS;
            }
            id => ids.push(id.to_ascii_uppercase()),
        }
    }

    let mut all = experiments::run_all();
    all.extend(experiments::run_extensions());
    let selected: Vec<&ExperimentResult> = if ids.is_empty() {
        all.iter().collect()
    } else {
        all.iter()
            .filter(|r| ids.contains(&r.id.to_string()))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiments matched {ids:?}; valid ids are E1..E12, X1..X13");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for result in &selected {
        println!("== {} — {}", result.id, result.title);
        for note in &result.notes {
            println!("   note: {note}");
        }
        println!();
        print!("{}", result.table);
        println!();
        if !result.artifacts.is_empty() {
            if let Err(e) = std::fs::create_dir_all(&out_dir) {
                eprintln!("cannot create {}: {e}", out_dir.display());
                return ExitCode::FAILURE;
            }
            for (name, content) in &result.artifacts {
                let path = out_dir.join(name);
                match std::fs::write(&path, content) {
                    Ok(()) => println!("   wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("cannot write {}: {e}", path.display());
                        failures += 1;
                    }
                }
            }
        }
        println!("   verdict: {}", if result.pass { "PASS" } else { "FAIL" });
        println!();
        if !result.pass {
            failures += 1;
        }
    }

    println!("{} experiment(s) run, {} failed", selected.len(), failures);
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
