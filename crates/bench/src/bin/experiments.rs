//! Regenerates every table and figure of the paper (experiments E1–E12)
//! and the extension experiments (X1–X13).
//!
//! Usage:
//!
//! ```text
//! experiments              # run everything
//! experiments e7 e8        # run a subset by id
//! experiments --out DIR    # also write DOT artifacts to DIR (default: experiments_out)
//! experiments --addr HOST:PORT   # fetch through a running `iabc serve` daemon
//! ```
//!
//! With `--addr`, the whole regeneration becomes a thin client of the
//! serving daemon: the id set is submitted as one content-addressed sweep
//! job, so the first run computes and every repeated run (CI re-runs,
//! local iteration) collapses to cache reads — byte-identical results,
//! guaranteed by the engines' determinism.
//!
//! Output is the per-experiment table plus a PASS/FAIL verdict; the recorded
//! results live in `EXPERIMENTS.md`.

use std::path::PathBuf;
use std::process::ExitCode;

use iabc_analysis::experiments::{self, ExperimentResult};

fn main() -> ExitCode {
    let mut ids: Vec<String> = Vec::new();
    let mut out_dir = PathBuf::from("experiments_out");
    let mut addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                let Some(dir) = args.next() else {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                };
                out_dir = PathBuf::from(dir);
            }
            "--addr" => {
                let Some(a) = args.next() else {
                    eprintln!("--addr requires a HOST:PORT argument");
                    return ExitCode::FAILURE;
                };
                addr = Some(a);
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--out DIR] [--addr HOST:PORT] [E1 .. E12 | X1 .. X13]"
                );
                return ExitCode::SUCCESS;
            }
            id => ids.push(id.to_ascii_uppercase()),
        }
    }

    let all = match &addr {
        // Thin-client path: one sweep job against the daemon. An empty id
        // list means "everything" here, which the daemon's canonical
        // resolution does not (it pins E1..E12 for key stability), so
        // expand it explicitly.
        Some(addr) => {
            let job_ids = if ids.is_empty() {
                (1..=12)
                    .map(|i| format!("E{i}"))
                    .chain((1..=13).map(|i| format!("X{i}")))
                    .collect()
            } else {
                ids.clone()
            };
            let job = iabc_serve::JobSpec::Sweep { ids: job_ids };
            let outcome = match iabc_serve::submit(addr, &job) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("submit to {addr} failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "fetched via {addr}: cache {} (key {}, {} cell hit(s), {} miss(es))",
                if outcome.cache_hit { "hit" } else { "miss" },
                outcome.key.hex(),
                outcome.hits,
                outcome.misses
            );
            match iabc_serve::decode_sweep_payload(&outcome.payload) {
                Ok(results) => results,
                Err(e) => {
                    eprintln!("cannot decode sweep payload: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let mut all = experiments::run_all();
            all.extend(experiments::run_extensions());
            all
        }
    };
    let selected: Vec<&ExperimentResult> = if ids.is_empty() {
        all.iter().collect()
    } else {
        all.iter()
            .filter(|r| ids.contains(&r.id.to_string()))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiments matched {ids:?}; valid ids are E1..E12, X1..X13");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for result in &selected {
        println!("== {} — {}", result.id, result.title);
        for note in &result.notes {
            println!("   note: {note}");
        }
        println!();
        print!("{}", result.table);
        println!();
        if !result.artifacts.is_empty() {
            if let Err(e) = std::fs::create_dir_all(&out_dir) {
                eprintln!("cannot create {}: {e}", out_dir.display());
                return ExitCode::FAILURE;
            }
            for (name, content) in &result.artifacts {
                let path = out_dir.join(name);
                match std::fs::write(&path, content) {
                    Ok(()) => println!("   wrote {}", path.display()),
                    Err(e) => {
                        eprintln!("cannot write {}: {e}", path.display());
                        failures += 1;
                    }
                }
            }
        }
        println!("   verdict: {}", if result.pass { "PASS" } else { "FAIL" });
        println!();
        if !result.pass {
            failures += 1;
        }
    }

    println!("{} experiment(s) run, {} failed", selected.len(), failures);
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
