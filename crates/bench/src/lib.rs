//! Benchmark workloads shared by the Criterion benches.
//!
//! The benches themselves live in `benches/`; this library provides the
//! graph/parameter grids they sweep so that the same workloads are used
//! consistently (and can be unit-tested for shape).

use iabc_graph::{generators, Digraph};

/// A named benchmark workload: a graph plus the fault bound to check/run.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (used as the Criterion bench id).
    pub name: String,
    /// The graph.
    pub graph: Digraph,
    /// Fault bound `f`.
    pub f: usize,
}

/// Grid for the Theorem 1 checker scaling bench: condition-satisfying and
/// violating graphs of growing size.
pub fn checker_grid() -> Vec<Workload> {
    let mut out = Vec::new();
    for n in [7usize, 9, 11, 13] {
        out.push(Workload {
            name: format!("complete/n{n}/f2"),
            graph: generators::complete(n),
            f: 2,
        });
    }
    for f in [1usize, 2] {
        let n = 3 * f + 4;
        out.push(Workload {
            name: format!("core_network/n{n}/f{f}"),
            graph: generators::core_network(n, f),
            f,
        });
    }
    out.push(Workload {
        name: "chord/n7/f2 (violated)".into(),
        graph: generators::chord(7, 5),
        f: 2,
    });
    out.push(Workload {
        name: "hypercube/d3/f1 (violated)".into(),
        graph: generators::hypercube(3),
        f: 1,
    });
    out
}

/// Grid for the simulation-throughput bench.
pub fn simulation_grid() -> Vec<Workload> {
    [8usize, 16, 32, 64]
        .into_iter()
        .map(|n| Workload {
            name: format!("core_network/n{n}/f2"),
            graph: generators::core_network(n, 2),
            f: 2,
        })
        .collect()
}

/// Grid for the propagation bench: growing core networks.
pub fn propagation_grid() -> Vec<Workload> {
    [10usize, 20, 40, 80]
        .into_iter()
        .map(|n| Workload {
            name: format!("core_network/n{n}/f2"),
            graph: generators::core_network(n, 2),
            f: 2,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_nonempty_and_well_formed() {
        for w in checker_grid()
            .into_iter()
            .chain(simulation_grid())
            .chain(propagation_grid())
        {
            assert!(w.graph.node_count() > 0, "{}", w.name);
            assert!(!w.name.is_empty());
            assert!(w.graph.node_count() > w.f, "{}", w.name);
        }
    }

    #[test]
    fn checker_grid_mixes_verdicts() {
        let grid = checker_grid();
        let verdicts: Vec<bool> = grid
            .iter()
            .map(|w| iabc_core::theorem1::check(&w.graph, w.f).is_satisfied())
            .collect();
        assert!(verdicts.iter().any(|&v| v), "grid needs satisfying graphs");
        assert!(verdicts.iter().any(|&v| !v), "grid needs violating graphs");
    }
}
