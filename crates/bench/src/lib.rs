//! Benchmark workloads shared by the Criterion benches.
//!
//! The benches themselves live in `benches/`; this library provides the
//! graph/parameter grids they sweep so that the same workloads are used
//! consistently (and can be unit-tested for shape).

use iabc_graph::{generators, Digraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named benchmark workload: a graph plus the fault bound to check/run.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name (used as the Criterion bench id).
    pub name: String,
    /// The graph.
    pub graph: Digraph,
    /// Fault bound `f`.
    pub f: usize,
}

/// Grid for the Theorem 1 checker scaling bench: condition-satisfying and
/// violating graphs of growing size.
pub fn checker_grid() -> Vec<Workload> {
    let mut out = Vec::new();
    for n in [7usize, 9, 11, 13] {
        out.push(Workload {
            name: format!("complete/n{n}/f2"),
            graph: generators::complete(n),
            f: 2,
        });
    }
    for f in [1usize, 2] {
        let n = 3 * f + 4;
        out.push(Workload {
            name: format!("core_network/n{n}/f{f}"),
            graph: generators::core_network(n, f),
            f,
        });
    }
    out.push(Workload {
        name: "chord/n7/f2 (violated)".into(),
        graph: generators::chord(7, 5),
        f: 2,
    });
    out.push(Workload {
        name: "hypercube/d3/f1 (violated)".into(),
        graph: generators::hypercube(3),
        f: 1,
    });
    out
}

/// Grid for the simulation-throughput bench.
pub fn simulation_grid() -> Vec<Workload> {
    [8usize, 16, 32, 64]
        .into_iter()
        .map(|n| Workload {
            name: format!("core_network/n{n}/f2"),
            graph: generators::core_network(n, 2),
            f: 2,
        })
        .collect()
}

/// Grid for the hot-path bench (`benches/hotpath.rs`, `iabc perf`):
/// rounds/sec of the compiled synchronous engine at production scale, on
/// three topology families per size:
///
/// * `complete/n{N}` — the dense worst case; `f = (n - 1) / 30` faults
///   (n = 1000 lands on the acceptance workload `f = 33`);
/// * `random/n{N}` — seeded Erdős–Rényi with `f` derived from the realized
///   minimum in-degree so the trimming rule stays total;
/// * `kite/n{N}` — a lollipop (clique + directed tail): skewed degrees,
///   `f = 0` because tail nodes have in-degree 1.
///
/// `quick` limits sizes to {100, 1000} for CI smoke runs; the full grid
/// adds n = 5000.
pub fn hotpath_grid(quick: bool) -> Vec<Workload> {
    let sizes: &[usize] = if quick {
        &[100, 1000]
    } else {
        &[100, 1000, 5000]
    };
    let mut out = Vec::new();
    for &n in sizes {
        out.push(Workload {
            name: format!("complete/n{n}"),
            graph: generators::complete(n),
            f: (n - 1) / 30,
        });
        let p = (20.0 / n as f64).clamp(0.02, 0.3);
        let mut rng = StdRng::seed_from_u64(0xB00B5 ^ n as u64);
        let g = generators::erdos_renyi(n, p, &mut rng);
        let f = g.min_in_degree() / 3;
        out.push(Workload {
            name: format!("random/n{n}"),
            graph: g,
            f,
        });
        let tail = n / 10;
        out.push(Workload {
            name: format!("kite/n{n}"),
            graph: generators::lollipop(n - tail, tail),
            f: 0,
        });
    }
    out
}

/// Initial states shared by every hot-path measurement (`benches/
/// hotpath.rs` and `iabc perf`): a fixed spread over `[0, 100]` so both
/// consumers provably time the same workload.
pub fn hotpath_inputs(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i % 101) as f64).collect()
}

/// Fault placement shared by the hot-path measurements: the `f`
/// highest-numbered nodes.
pub fn hotpath_fault_nodes(n: usize, f: usize) -> std::ops::Range<usize> {
    n - f..n
}

/// Grid for the propagation bench: growing core networks.
pub fn propagation_grid() -> Vec<Workload> {
    [10usize, 20, 40, 80]
        .into_iter()
        .map(|n| Workload {
            name: format!("core_network/n{n}/f2"),
            graph: generators::core_network(n, 2),
            f: 2,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_nonempty_and_well_formed() {
        for w in checker_grid()
            .into_iter()
            .chain(simulation_grid())
            .chain(propagation_grid())
        {
            assert!(w.graph.node_count() > 0, "{}", w.name);
            assert!(!w.name.is_empty());
            assert!(w.graph.node_count() > w.f, "{}", w.name);
        }
    }

    #[test]
    fn hotpath_grid_is_runnable_and_quick_is_a_prefix_family() {
        let quick = hotpath_grid(true);
        let full = hotpath_grid(false);
        assert_eq!(quick.len(), 6, "quick grid: 2 sizes x 3 families");
        assert_eq!(full.len(), 9, "full grid: 3 sizes x 3 families");
        for w in &full {
            // Trimming must be total: every node's in-degree supports 2f.
            assert!(
                w.graph.min_in_degree() >= 2 * w.f,
                "{}: min in-degree {} < 2f = {}",
                w.name,
                w.graph.min_in_degree(),
                2 * w.f
            );
        }
        // The acceptance workload is present: complete graph, n=1000, f=33.
        let accept = full
            .iter()
            .find(|w| w.name == "complete/n1000")
            .expect("acceptance workload");
        assert_eq!(accept.f, 33);
        // Determinism: the random family reproduces across calls.
        let again = hotpath_grid(false);
        for (a, b) in full.iter().zip(&again) {
            assert_eq!(a.graph.edge_count(), b.graph.edge_count(), "{}", a.name);
            assert_eq!(a.f, b.f);
        }
    }

    #[test]
    fn checker_grid_mixes_verdicts() {
        let grid = checker_grid();
        let verdicts: Vec<bool> = grid
            .iter()
            .map(|w| iabc_core::theorem1::check(&w.graph, w.f).is_satisfied())
            .collect();
        assert!(verdicts.iter().any(|&v| v), "grid needs satisfying graphs");
        assert!(verdicts.iter().any(|&v| !v), "grid needs violating graphs");
    }
}
