//! Bench: exact Theorem 1 checking cost across families and sizes, plus the
//! sequential/parallel and heuristic variants. This regenerates the
//! "condition-checking scalability" series of EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_bench::checker_grid;
use iabc_core::{search, theorem1, Threshold};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_exact_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_exact");
    for w in checker_grid() {
        group.bench_function(&w.name, |b| {
            b.iter(|| black_box(theorem1::check(black_box(&w.graph), w.f)))
        });
    }
    group.finish();
}

fn bench_parallel_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_parallel4");
    // Only the largest satisfying workloads, where parallelism matters.
    for w in checker_grid()
        .into_iter()
        .filter(|w| w.graph.node_count() >= 11)
    {
        group.bench_function(&w.name, |b| {
            b.iter(|| {
                black_box(theorem1::check_parallel(
                    black_box(&w.graph),
                    w.f,
                    Threshold::synchronous(w.f),
                    4,
                ))
            })
        });
    }
    group.finish();
}

fn bench_falsifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("falsifier_100trials");
    for w in checker_grid() {
        group.bench_function(&w.name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(search::falsify(
                    black_box(&w.graph),
                    w.f,
                    Threshold::synchronous(w.f),
                    100,
                    &mut rng,
                ))
            })
        });
    }
    group.finish();
}

fn bench_quick_checks(c: &mut Criterion) {
    let mut group = c.benchmark_group("corollary_fast_paths");
    for w in checker_grid() {
        group.bench_function(&w.name, |b| {
            b.iter(|| {
                black_box(iabc_core::corollaries::quick_violation(
                    black_box(&w.graph),
                    w.f,
                    Threshold::synchronous(w.f),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_checker,
    bench_parallel_checker,
    bench_falsifier,
    bench_quick_checks
);
criterion_main!(benches);
