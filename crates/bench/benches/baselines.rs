//! Bench: the baseline rules (Dolev \[5\], W-MSR \[11\]) against Algorithm 1 —
//! per-update cost by in-degree, and end-to-end rounds on a fixed workload.
//! Regenerates the X5 cost series of EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_baselines::{DolevMidpoint, DolevSelectMean, Wmsr};
use iabc_core::rules::{TrimmedMean, UpdateRule};
use iabc_graph::{generators, NodeSet};
use iabc_sim::adversary::PolarizingAdversary;
use iabc_sim::Scenario;
use iabc_sim::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn received_values(len: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(len as u64);
    (0..len).map(|_| rng.random_range(-100.0..100.0)).collect()
}

fn bench_update_cost(c: &mut Criterion) {
    let f = 2usize;
    let rules: Vec<(&str, Box<dyn UpdateRule>)> = vec![
        ("algorithm1", Box::new(TrimmedMean::new(f))),
        ("dolev_midpoint", Box::new(DolevMidpoint::new(f))),
        ("dolev_select_mean", Box::new(DolevSelectMean::new(f))),
        ("w_msr", Box::new(Wmsr::new(f))),
    ];
    for in_degree in [8usize, 64, 512] {
        let base = received_values(in_degree);
        let mut group = c.benchmark_group(format!("baseline_update/deg{in_degree}"));
        for (name, rule) in &rules {
            group.bench_function(*name, |b| {
                b.iter_batched(
                    || base.clone(),
                    |mut recv| black_box(rule.update(black_box(0.5), &mut recv)),
                    criterion::BatchSize::SmallInput,
                )
            });
        }
        group.finish();
    }
}

fn bench_end_to_end(c: &mut Criterion) {
    let f = 2usize;
    let g = generators::complete(10);
    let n = g.node_count();
    let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let faults = || NodeSet::from_indices(n, [n - 2, n - 1]);
    let config = SimConfig {
        record_states: false,
        epsilon: 1e-6,
        max_rounds: 10_000,
    };
    let rules: Vec<(&str, Box<dyn UpdateRule>)> = vec![
        ("algorithm1", Box::new(TrimmedMean::new(f))),
        ("dolev_midpoint", Box::new(DolevMidpoint::new(f))),
        ("w_msr", Box::new(Wmsr::new(f))),
    ];
    let mut group = c.benchmark_group("baseline_run/K10_f2_polarizing");
    group.sample_size(30);
    for (name, rule) in &rules {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let out = Scenario::on(&g)
                    .inputs(&inputs)
                    .faults(faults())
                    .rule(rule.as_ref())
                    .adversary(Box::new(PolarizingAdversary::new()))
                    .synchronous()
                    .and_then(|mut sim| sim.run(&config))
                    .expect("run succeeds");
                black_box(out.rounds)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_cost, bench_end_to_end);
criterion_main!(benches);
