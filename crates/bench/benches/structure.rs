//! Bench: the structural probes beyond the core checker — (r, s)-robustness,
//! vertex connectivity, minimality pruning, and satisfying-by-construction
//! growth. Regenerates the X4/X7 cost series of EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_core::construction::{grow_satisfying, Attachment};
use iabc_core::{minimality, robustness};
use iabc_graph::{algorithms, generators};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_robustness(c: &mut Criterion) {
    let mut group = c.benchmark_group("robustness");
    for n in [7usize, 9, 11] {
        let g = generators::core_network(n, 2);
        group.bench_function(format!("is_robust_5_1/core{n}"), |b| {
            b.iter(|| black_box(robustness::is_robust(&g, 5, 1)))
        });
    }
    let g = generators::chord(9, 5);
    group.bench_function("max_r/chord9", |b| {
        b.iter(|| black_box(robustness::max_r_robustness(&g)))
    });
    group.finish();
}

fn bench_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("connectivity");
    for d in [3u32, 4, 5] {
        let g = generators::hypercube(d);
        group.bench_function(format!("hypercube_d{d}"), |b| {
            b.iter(|| black_box(algorithms::vertex_connectivity(&g)))
        });
    }
    group.finish();
}

fn bench_minimality(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimality");
    group.sample_size(20);
    let k5 = generators::complete(5);
    group.bench_function("critical_edges/K5_f1", |b| {
        b.iter(|| black_box(minimality::critical_edges(&k5, 1).len()))
    });
    group.bench_function("prune/K5_f1", |b| {
        b.iter(|| black_box(minimality::prune_to_minimal(&k5, 1)))
    });
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    for n in [16usize, 64, 256] {
        group.bench_function(format!("grow_uniform/n{n}_f2"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                black_box(grow_satisfying(n, 2, Attachment::Uniform, &mut rng))
            })
        });
    }
    group.bench_function("grow_preferential/n64_f2", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            black_box(grow_satisfying(64, 2, Attachment::Preferential, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_robustness,
    bench_connectivity,
    bench_minimality,
    bench_construction
);
criterion_main!(benches);
