//! Bench: the two deployment tiers head to head — one OS thread per node
//! vs every node multiplexed onto a small worker pool — plus the
//! multiplexed tier alone at a scale no threaded deployment can host.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_graph::{generators, CompiledTopology, NodeSet};
use iabc_runtime::{
    run_threaded, ConstantLiar, LocalTransport, MultiplexConfig, MultiplexedDeployment,
};

const DEGREE: usize = 8;
const F: usize = 2;
const ROUNDS: usize = 20;

fn inputs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37) % 1000) as f64).collect()
}

fn run_multiplexed_circulant(n: usize, jobs: usize) -> f64 {
    let faults = NodeSet::from_indices(n, 0..F);
    let topology = CompiledTopology::circulant(n, DEGREE, &faults);
    let inputs = inputs(n);
    let mut deployment = MultiplexedDeployment::new(
        &topology,
        &inputs,
        F,
        ROUNDS,
        |_| Box::new(ConstantLiar { value: 1e6 }),
        LocalTransport,
        MultiplexConfig {
            jobs,
            ..Default::default()
        },
    )
    .expect("deployment constructs");
    deployment.run().expect("run").honest_range()
}

/// Same circulant workload, both tiers. At n = 1024 the threaded tier is
/// comfortably within its range, so the comparison isolates what the
/// multiplexing buys: no thread spawn, no channel wakeups, pure pooled
/// arithmetic over mailboxes.
fn bench_threaded_vs_multiplexed(c: &mut Criterion) {
    let n = 1024usize;
    let g = generators::circulant(n, 1..=DEGREE);
    let inputs = inputs(n);
    let faults = || NodeSet::from_indices(n, 0..F);

    let mut group = c.benchmark_group(format!("deploy_tiers_{ROUNDS}rounds/n{n}"));
    group.sample_size(10);
    group.bench_function("threaded", |b| {
        b.iter(|| {
            let report = run_threaded(&g, &inputs, &faults(), F, ROUNDS, |_| {
                Box::new(ConstantLiar { value: 1e6 })
            })
            .expect("threaded run");
            black_box(report.honest_range())
        })
    });
    for jobs in [1usize, 4] {
        group.bench_function(format!("multiplexed_jobs{jobs}"), |b| {
            b.iter(|| black_box(run_multiplexed_circulant(n, jobs)))
        });
    }
    group.finish();
}

/// The multiplexed tier alone, past the threaded ceiling: the CSR comes
/// straight from the circulant structure, so there is no n x n adjacency
/// anywhere and the only OS threads are the pool's.
fn bench_multiplexed_at_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group(format!("deploy_scale_{ROUNDS}rounds"));
    group.sample_size(10);
    for n in [32_768usize, 131_072] {
        group.bench_function(format!("multiplexed_jobs4/n{n}"), |b| {
            b.iter(|| black_box(run_multiplexed_circulant(n, 4)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_threaded_vs_multiplexed,
    bench_multiplexed_at_scale
);
criterion_main!(benches);
