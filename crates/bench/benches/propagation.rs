//! Bench: propagation machinery (Definition 3 closures) and the (r, s)-
//! robustness checker, across sizes. Regenerates the "propagation cost"
//! series of EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_bench::propagation_grid;
use iabc_core::{propagate, robustness, Threshold};
use iabc_graph::{generators, NodeSet};

fn bench_propagates_to(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagates_to");
    for w in propagation_grid() {
        let n = w.graph.node_count();
        // A = the clique (2f + 1 nodes), B = everything else.
        let a = NodeSet::from_indices(n, 0..(2 * w.f + 1));
        let b = a.complement();
        let t = Threshold::synchronous(w.f);
        group.bench_function(&w.name, |bch| {
            bch.iter(|| black_box(propagate::propagates_to(&w.graph, &a, &b, t)))
        });
    }
    group.finish();
}

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure");
    for w in propagation_grid() {
        let n = w.graph.node_count();
        let pool = NodeSet::full(n);
        let seed = NodeSet::from_indices(n, 0..(2 * w.f + 1));
        let t = Threshold::synchronous(w.f);
        group.bench_function(&w.name, |bch| {
            bch.iter(|| black_box(propagate::closure(&w.graph, &pool, &seed, t)))
        });
    }
    group.finish();
}

fn bench_robustness(c: &mut Criterion) {
    let mut group = c.benchmark_group("robustness_2f1");
    group.sample_size(10);
    // Exponential checker: keep to small graphs.
    for n in [7usize, 9, 11] {
        let g = generators::core_network(n, 2);
        group.bench_function(format!("core_network/n{n}"), |b| {
            b.iter(|| black_box(robustness::is_robust(&g, 5, 1)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_propagates_to,
    bench_closure,
    bench_robustness
);
criterion_main!(benches);
