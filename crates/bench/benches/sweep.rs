//! Bench: serial vs parallel sweep throughput on the Monte-Carlo
//! tolerance grid and the exhaustive census grid.
//!
//! On a multi-core host the `jobs=all` rows should beat `jobs=1` roughly
//! linearly in core count (cells are independent and CPU-bound); on a
//! single-core host they tie. Output tables are bit-identical either way —
//! that's asserted by `tests/sweep_parallel.rs`, not here.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_analysis::sweep::{run_census_sweep, run_monte_carlo_sweep, MonteCarloSpec};

fn spec() -> MonteCarloSpec {
    MonteCarloSpec {
        ns: vec![6, 7, 8, 9],
        fs: vec![1, 2],
        edge_prob: 0.55,
        trials: 25,
        replicas: 0,
    }
}

fn bench_monte_carlo(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("sweep_monte_carlo");
    group.sample_size(10);
    group.bench_function("jobs1", |b| {
        b.iter(|| black_box(run_monte_carlo_sweep(&spec(), 1).to_string()))
    });
    group.bench_function(format!("jobs{cores}"), |b| {
        b.iter(|| black_box(run_monte_carlo_sweep(&spec(), cores).to_string()))
    });
    group.finish();
}

fn bench_census(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut group = c.benchmark_group("sweep_census");
    group.sample_size(10);
    group.bench_function("jobs1", |b| {
        b.iter(|| black_box(run_census_sweep(4, &[0, 1, 2], 1).to_string()))
    });
    group.bench_function(format!("jobs{cores}"), |b| {
        b.iter(|| black_box(run_census_sweep(4, &[0, 1, 2], cores).to_string()))
    });
    group.finish();
}

criterion_group!(benches, bench_monte_carlo, bench_census);
criterion_main!(benches);
