//! Bench: the threaded deployment vs the single-threaded engine on the same
//! workload — what real channels and OS threads cost per round at paper
//! scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_core::rules::TrimmedMean;
use iabc_graph::{generators, NodeSet};
use iabc_runtime::{run_threaded, ConstantLiar};
use iabc_sim::adversary::ConstantAdversary;
use iabc_sim::Scenario;

fn bench_threads_vs_engine(c: &mut Criterion) {
    let rounds = 30usize;
    for n in [7usize, 13] {
        let g = generators::complete(n);
        let inputs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let f = (n - 1) / 3;
        let faults = || NodeSet::from_indices(n, [n - 1]);

        let mut group = c.benchmark_group(format!("deploy_30rounds/n{n}"));
        group.sample_size(20);
        group.bench_function("threaded", |b| {
            b.iter(|| {
                let report = run_threaded(&g, &inputs, &faults(), f, rounds, |_| {
                    Box::new(ConstantLiar { value: 1e6 })
                })
                .expect("threaded run");
                black_box(report.honest_range())
            })
        });
        group.bench_function("engine", |b| {
            b.iter(|| {
                let rule = TrimmedMean::new(f);
                let mut sim = Scenario::on(&g)
                    .inputs(&inputs)
                    .faults(faults())
                    .rule(&rule)
                    .adversary(Box::new(ConstantAdversary::new(1e6)))
                    .synchronous()
                    .expect("engine run");
                for _ in 0..rounds {
                    sim.step().expect("step");
                }
                black_box(sim.honest_range())
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_threads_vs_engine);
criterion_main!(benches);
