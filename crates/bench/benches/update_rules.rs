//! Bench: per-iteration cost of the update rules (Algorithm 1 vs variants)
//! as a function of in-degree. Regenerates the "rule cost" series of
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_core::rules::{Mean, TrimmedMean, TrimmedMidpoint, UpdateRule, WeightedTrimmedMean};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn received_values(len: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(len as u64);
    (0..len).map(|_| rng.random_range(-100.0..100.0)).collect()
}

fn bench_rules(c: &mut Criterion) {
    let f = 2usize;
    let weighted = WeightedTrimmedMean::new(f, 0.5).expect("valid weight");
    let rules: Vec<(&str, Box<dyn UpdateRule>)> = vec![
        ("trimmed_mean", Box::new(TrimmedMean::new(f))),
        ("mean", Box::new(Mean::new())),
        ("trimmed_midpoint", Box::new(TrimmedMidpoint::new(f))),
        ("weighted_trimmed_mean", Box::new(weighted)),
    ];
    for in_degree in [8usize, 64, 512] {
        let base = received_values(in_degree);
        let mut group = c.benchmark_group(format!("update_rule/deg{in_degree}"));
        for (name, rule) in &rules {
            group.bench_function(*name, |b| {
                b.iter_batched(
                    || base.clone(),
                    |mut recv| black_box(rule.update(black_box(0.5), &mut recv)),
                    criterion::BatchSize::SmallInput,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);
