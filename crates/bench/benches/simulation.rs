//! Bench: full-simulation throughput (rounds of Algorithm 1 per second)
//! under a stateful adversary, across network sizes. Regenerates the
//! "simulation throughput" series of EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_bench::simulation_grid;
use iabc_core::rules::TrimmedMean;
use iabc_graph::NodeSet;
use iabc_sim::adversary::{ExtremesAdversary, PullAdversary};
use iabc_sim::Scenario;

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_20rounds");
    for w in simulation_grid() {
        let n = w.graph.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        // Fault the two highest-numbered nodes (outer nodes of the core network).
        let faults = NodeSet::from_indices(n, [n - 1, n - 2]);
        let rule = TrimmedMean::new(w.f);
        group.bench_function(&w.name, |b| {
            b.iter(|| {
                let mut sim = Scenario::on(&w.graph)
                    .inputs(&inputs)
                    .faults(faults.clone())
                    .rule(&rule)
                    .adversary(Box::new(ExtremesAdversary::new(10.0)))
                    .synchronous()
                    .expect("valid sim");
                for _ in 0..20 {
                    sim.step().expect("step succeeds");
                }
                black_box(sim.honest_range())
            })
        });
    }
    group.finish();
}

fn bench_convergence_to_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_to_eps1e-3");
    group.sample_size(20);
    for w in simulation_grid().into_iter().take(3) {
        let n = w.graph.node_count();
        let inputs: Vec<f64> = (0..n).map(|i| (i % 10) as f64).collect();
        let faults = NodeSet::from_indices(n, [n - 1, n - 2]);
        let rule = TrimmedMean::new(w.f);
        group.bench_function(&w.name, |b| {
            b.iter(|| {
                let mut sim = Scenario::on(&w.graph)
                    .inputs(&inputs)
                    .faults(faults.clone())
                    .rule(&rule)
                    .adversary(Box::new(PullAdversary::new(false)))
                    .synchronous()
                    .expect("valid sim");
                let mut rounds = 0usize;
                while sim.honest_range() > 1e-3 && rounds < 10_000 {
                    sim.step().expect("step succeeds");
                    rounds += 1;
                }
                black_box(rounds)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rounds, bench_convergence_to_eps);
criterion_main!(benches);
