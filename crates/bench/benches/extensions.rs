//! Bench: the second-wave extensions — generalized fault-model checking
//! (X10), the dynamic engine's per-round cost vs the static engine (X11),
//! the quantized rule's overhead over the exact rule (X12), and the vector
//! engine's scaling in the dimension (X13).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_core::fault_model::{check_model, AdversaryStructure, FaultModel};
use iabc_core::quantized::{QuantizedTrimmedMean, Rounding};
use iabc_core::rules::{TrimmedMean, UpdateRule};
use iabc_graph::{generators, NodeSet};
use iabc_sim::adversary::ExtremesAdversary;
use iabc_sim::dynamic::{RoundRobinSchedule, StaticSchedule, TopologySchedule};
use iabc_sim::vector::{CoordinateWise, VectorSimulation};
use iabc_sim::Scenario;

/// Fault-model checking: the same graph under Total, a small structure,
/// and Local — the cost spread of coverage-based checking.
fn bench_fault_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_model_check");
    group.sample_size(20);
    let g = generators::core_network(9, 2);
    let n = g.node_count();

    let total = FaultModel::Total(2);
    group.bench_function("total/core9", |b| {
        b.iter(|| black_box(check_model(&g, &total).is_satisfied()))
    });

    let structure = FaultModel::Structure(
        AdversaryStructure::new(
            n,
            vec![
                NodeSet::from_indices(n, [0, 1]),
                NodeSet::from_indices(n, [4, 5]),
                NodeSet::from_indices(n, [8]),
            ],
        )
        .expect("universe agrees"),
    );
    group.bench_function("structure3/core9", |b| {
        b.iter(|| black_box(check_model(&g, &structure).is_satisfied()))
    });

    let local = FaultModel::Local(1);
    let small = generators::core_network(7, 1);
    group.bench_function("local/core7", |b| {
        b.iter(|| black_box(check_model(&small, &local).is_satisfied()))
    });
    group.finish();
}

/// Dynamic vs static engine: the per-run cost of schedule indirection.
fn bench_dynamic_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_engine_30rounds");
    let g = generators::complete(9);
    let inputs: Vec<f64> = (0..9).map(|i| i as f64).collect();
    let faults = NodeSet::from_indices(9, [7, 8]);
    let rule = TrimmedMean::new(2);

    group.bench_function("static_engine", |b| {
        b.iter(|| {
            let mut sim = Scenario::on(&g)
                .inputs(&inputs)
                .faults(faults.clone())
                .rule(&rule)
                .adversary(Box::new(ExtremesAdversary::new(1e6)))
                .synchronous()
                .expect("sim");
            for _ in 0..30 {
                sim.step().expect("step");
            }
            black_box(sim.honest_range())
        })
    });

    let static_schedule = StaticSchedule::new(g.clone());
    group.bench_function("dynamic_engine/static_schedule", |b| {
        b.iter(|| {
            let mut sim = Scenario::on(static_schedule.graph_at(1))
                .inputs(&inputs)
                .faults(faults.clone())
                .rule(&rule)
                .adversary(Box::new(ExtremesAdversary::new(1e6)))
                .dynamic(&static_schedule)
                .expect("sim");
            for _ in 0..30 {
                sim.step().expect("step");
            }
            black_box(sim.honest_range())
        })
    });

    let robin = RoundRobinSchedule::new(
        vec![generators::complete(9), generators::core_network(9, 2)],
        1,
    )
    .expect("schedule");
    group.bench_function("dynamic_engine/round_robin", |b| {
        b.iter(|| {
            let mut sim = Scenario::on(robin.graph_at(1))
                .inputs(&inputs)
                .faults(faults.clone())
                .rule(&rule)
                .adversary(Box::new(ExtremesAdversary::new(1e6)))
                .dynamic(&robin)
                .expect("sim");
            for _ in 0..30 {
                sim.step().expect("step");
            }
            black_box(sim.honest_range())
        })
    });
    group.finish();
}

/// Quantized and structure-aware rules vs the exact rule: per-update
/// overhead of lattice rounding and of coverable-prefix trimming.
fn bench_quantized_rule(c: &mut Criterion) {
    use iabc_core::fault_model::{IdentifiedRule, ModelTrimmedMean};
    use iabc_graph::NodeId;

    let mut group = c.benchmark_group("rule_update_deg16");
    let exact = TrimmedMean::new(2);
    let quantized = QuantizedTrimmedMean::new(2, 1.0 / 256.0, Rounding::Nearest).expect("valid");
    let base: Vec<f64> = (0..16).map(|i| (i as f64) * 0.25 - 2.0).collect();

    group.bench_function("trimmed_mean", |b| {
        b.iter(|| {
            let mut r = base.clone();
            black_box(exact.update(0.5, &mut r).expect("update"))
        })
    });
    group.bench_function("quantized_trimmed_mean", |b| {
        b.iter(|| {
            let mut r = base.clone();
            black_box(quantized.update(0.5, &mut r).expect("update"))
        })
    });

    let g = generators::complete(17);
    let aware = ModelTrimmedMean::new(FaultModel::Structure(
        AdversaryStructure::new(
            17,
            vec![
                NodeSet::from_indices(17, [1, 2]),
                NodeSet::from_indices(17, [5, 6]),
            ],
        )
        .expect("universe"),
    ));
    let with_ids: Vec<(NodeId, f64)> = base
        .iter()
        .enumerate()
        .map(|(i, &v)| (NodeId::new(i), v))
        .collect();
    group.bench_function("model_trimmed_mean/two_racks", |b| {
        b.iter(|| {
            let mut r = with_ids.clone();
            black_box(
                aware
                    .update(&g, NodeId::new(16), 0.5, &mut r)
                    .expect("update"),
            )
        })
    });
    group.finish();
}

/// Vector engine scaling in the dimension `d` (30 rounds on K9).
fn bench_vector_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_engine_30rounds");
    let g = generators::complete(9);
    let faults = NodeSet::from_indices(9, [7, 8]);
    let rule = TrimmedMean::new(2);
    for d in [1usize, 2, 4, 8] {
        let inputs: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..d).map(|k| (i * (k + 1)) as f64).collect())
            .collect();
        group.bench_function(format!("d{d}"), |b| {
            b.iter(|| {
                let advs: Vec<Box<dyn iabc_sim::adversary::Adversary>> = (0..d)
                    .map(|_| Box::new(ExtremesAdversary::new(1e6)) as Box<_>)
                    .collect();
                let mut sim = VectorSimulation::new(
                    &g,
                    &inputs,
                    faults.clone(),
                    &rule,
                    Box::new(CoordinateWise::new(advs)),
                )
                .expect("sim");
                for _ in 0..30 {
                    sim.step().expect("step");
                }
                black_box(sim.honest_ranges())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_models,
    bench_dynamic_engine,
    bench_quantized_rule,
    bench_vector_engine
);
criterion_main!(benches);
