//! Bench: compiled hot-path step throughput (rounds/sec) vs the retained
//! pre-refactor reference stepper, across the [`iabc_bench::hotpath_grid`]
//! workloads (complete / random / kite at n ∈ {100, 1000, 5000}).
//!
//! Set `IABC_HOTPATH_QUICK=1` to restrict to the n ∈ {100, 1000} quick
//! grid (the CI `perf-smoke` mode). `iabc perf` runs the same workloads
//! and writes the machine-readable `BENCH_hotpath.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use iabc_bench::{hotpath_fault_nodes, hotpath_grid, hotpath_inputs};
use iabc_core::rules::TrimmedMean;
use iabc_graph::NodeSet;
use iabc_sim::adversary::ConstantAdversary;
use iabc_sim::reference::{ReferenceStepper, ReferenceTrimmedMean};
use iabc_sim::Simulation;

fn quick() -> bool {
    std::env::var_os("IABC_HOTPATH_QUICK").is_some()
}

fn fault_set_for(n: usize, f: usize) -> NodeSet {
    NodeSet::from_indices(n, hotpath_fault_nodes(n, f))
}

/// Steps per timed sample: enough to amortize timer overhead, small enough
/// that n = 5000 complete (a ~25M-edge gather + 5000 sorts per step) stays
/// benchable.
fn steps_for(n: usize) -> usize {
    if n >= 5000 {
        2
    } else {
        10
    }
}

fn bench_compiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_compiled");
    group.sample_size(10);
    for w in hotpath_grid(quick()) {
        let n = w.graph.node_count();
        let inputs = hotpath_inputs(n);
        let faults = fault_set_for(n, w.f);
        let rule = TrimmedMean::new(w.f);
        let steps = steps_for(n);
        let mut sim = Simulation::new(
            &w.graph,
            &inputs,
            faults,
            &rule,
            Box::new(ConstantAdversary::new(1e9)),
        )
        .expect("valid workload");
        group.bench_function(format!("{}/f{}/{}steps", w.name, w.f, steps), |b| {
            b.iter(|| {
                for _ in 0..steps {
                    sim.step().expect("step succeeds");
                }
                black_box(sim.honest_range())
            })
        });
    }
    group.finish();
}

fn bench_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_reference");
    group.sample_size(10);
    for w in hotpath_grid(quick()) {
        let n = w.graph.node_count();
        // The reference stepper is the pre-refactor engine: skip n = 5000
        // outside quick mode comparisons only if it would dominate wall
        // time — it is the baseline the speedup is measured against, so we
        // keep it for every size the compiled bench runs.
        let inputs = hotpath_inputs(n);
        let faults = fault_set_for(n, w.f);
        let rule = ReferenceTrimmedMean::new(w.f);
        let steps = steps_for(n);
        let mut sim = ReferenceStepper::new(
            &w.graph,
            &inputs,
            faults,
            &rule,
            Box::new(ConstantAdversary::new(1e9)),
        )
        .expect("valid workload");
        group.bench_function(format!("{}/f{}/{}steps", w.name, w.f, steps), |b| {
            b.iter(|| {
                for _ in 0..steps {
                    sim.step().expect("step succeeds");
                }
                black_box(sim.states()[0])
            })
        });
    }
    group.finish();
}

/// Parallel round execution: the same compiled engine at 1 vs 2 vs 4
/// workers on the densest workload of each size. The trajectories are
/// bit-identical by construction (two-phase adversary plan + pure
/// per-node phase 2), so this group measures pure scheduling overhead /
/// speedup; on a single-core host expect ~1x.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_parallel");
    group.sample_size(10);
    for w in hotpath_grid(quick()) {
        let n = w.graph.node_count();
        if !w.name.starts_with("complete") || n < 1000 {
            continue;
        }
        let inputs = hotpath_inputs(n);
        let rule = TrimmedMean::new(w.f);
        let steps = steps_for(n);
        for jobs in [1usize, 2, 4] {
            let mut sim = Simulation::new(
                &w.graph,
                &inputs,
                fault_set_for(n, w.f),
                &rule,
                Box::new(ConstantAdversary::new(1e9)),
            )
            .expect("valid workload")
            .with_jobs(jobs);
            group.bench_function(
                format!("{}/f{}/jobs{}/{}steps", w.name, w.f, jobs, steps),
                |b| {
                    b.iter(|| {
                        for _ in 0..steps {
                            sim.step().expect("step succeeds");
                        }
                        black_box(sim.honest_range())
                    })
                },
            );
        }
    }
    group.finish();
}

/// Pool vs per-step spawn: the persistent executor against respawning its
/// workers before every step (`set_jobs` drops and rebuilds the pool —
/// the cost model of the old scoped-thread-per-`step()` design), at small
/// n where the spawn cost dominates the round arithmetic. Trajectories
/// are bit-identical; only the thread lifecycle differs. `iabc perf`
/// records the same comparison as the `"pool"` JSON datapoint.
fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_pool");
    group.sample_size(10);
    let n = 128;
    let f = n / 30;
    let graph = iabc_graph::generators::complete(n);
    let inputs = hotpath_inputs(n);
    let rule = TrimmedMean::new(f);
    let steps = 50;
    let jobs = 4;
    let build = || {
        Simulation::new(
            &graph,
            &inputs,
            fault_set_for(n, f),
            &rule,
            Box::new(ConstantAdversary::new(1e9)),
        )
        .expect("valid workload")
        .with_jobs(jobs)
    };
    let mut sim = build();
    group.bench_function(
        format!("complete_n{n}/retained/jobs{jobs}/{steps}steps"),
        |b| {
            b.iter(|| {
                for _ in 0..steps {
                    sim.step().expect("step succeeds");
                }
                black_box(sim.honest_range())
            })
        },
    );
    let mut sim = build();
    group.bench_function(
        format!("complete_n{n}/respawn/jobs{jobs}/{steps}steps"),
        |b| {
            b.iter(|| {
                for _ in 0..steps {
                    sim.set_jobs(jobs); // per-step pool rebuild: the old cost
                    sim.step().expect("step succeeds");
                }
                black_box(sim.honest_range())
            })
        },
    );
    group.finish();
}

/// FastMath tier: the scalar trim kernel (exact vs FastMath) and the
/// replica-batched SoA engine vs dispatching the same replicas one
/// engine at a time. `iabc perf` records the scalar faceoff as the
/// informational `"fastmath_scalar"` JSON line and the replica batching
/// as the `"replica_batch"` datapoint.
fn bench_fastmath(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_fastmath");
    group.sample_size(10);
    // Scalar kernel faceoff: one row of in-degree 16, f = 2, fresh values
    // per update (the kernel sorts in place).
    let rows = if quick() { 500 } else { 2000 };
    let len = 16;
    let f = 2;
    let values: Vec<f64> = (0..rows * len)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 * 1e-12)
        .collect();
    let mut scratch = vec![0.0f64; len];
    group.bench_function(format!("kernel_exact/{rows}rows/len{len}"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in values.chunks_exact(len) {
                scratch.copy_from_slice(row);
                acc += iabc_core::rules::trim_kernel(0.5, &mut scratch, f);
            }
            black_box(acc)
        })
    });
    group.bench_function(format!("kernel_fast/{rows}rows/len{len}"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for row in values.chunks_exact(len) {
                scratch.copy_from_slice(row);
                acc += iabc_core::fastmath::trim_kernel_fast(0.5, &mut scratch, f);
            }
            black_box(acc)
        })
    });
    // Replica batching: 32 lockstep replicas on an in-degree-16 circulant
    // (rows fit the vertical sorting network) vs 32 scalar engines.
    let replicas = 32;
    let n = if quick() { 128 } else { 256 };
    let rb_f = 2;
    let rounds = 10;
    let graph = iabc_graph::generators::circulant(n, 1..=16);
    let faults = fault_set_for(n, rb_f);
    let inputs: Vec<f64> = (0..n * replicas)
        .map(|i| ((i * 37) % 1000) as f64)
        .collect();
    group.bench_function(format!("batched/n{n}/x{replicas}/{rounds}rounds"), |b| {
        b.iter(|| {
            let mut batch = iabc_sim::fastmath::BatchedSimulation::new(
                &graph,
                &inputs,
                faults.clone(),
                iabc_core::fastmath::FastRule::TrimmedMean(rb_f),
                replicas,
                |_| Box::new(ConstantAdversary::new(1e9)),
            )
            .expect("valid workload");
            for _ in 0..rounds {
                batch.step().expect("step succeeds");
            }
            black_box(batch.states()[0])
        })
    });
    group.bench_function(format!("dispatched/n{n}/x{replicas}/{rounds}rounds"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for r in 0..replicas {
                let rule = TrimmedMean::new(rb_f);
                let replica_inputs: Vec<f64> = (0..n).map(|i| inputs[i * replicas + r]).collect();
                let mut sim = Simulation::new(
                    &graph,
                    &replica_inputs,
                    faults.clone(),
                    &rule,
                    Box::new(ConstantAdversary::new(1e9)),
                )
                .expect("valid workload");
                for _ in 0..rounds {
                    sim.step().expect("step succeeds");
                }
                acc += sim.states()[0];
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// Merge-network columnar sort: blocks of 32 lane-parallel columns of
/// in-degree 64 — past `NETWORK_MAX_LEN = 32`, so the block-sort +
/// Batcher merge-stage schedule runs — against gathering each lane into
/// a row and sorting it exactly. `iabc perf` records the same faceoff
/// as the enforced `"fastmath"` JSON datapoint.
fn bench_merge_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_merge_network");
    group.sample_size(10);
    let lanes = 32;
    let len = 64;
    let blocks = if quick() { 50 } else { 200 };
    let columns: Vec<f64> = (0..blocks * len * lanes)
        .map(|i| ((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 * 1e-12)
        .collect();
    let mut block = vec![0.0f64; len * lanes];
    group.bench_function(format!("columnar/{blocks}blocks/len{len}/x{lanes}"), |b| {
        b.iter(|| {
            for src in columns.chunks_exact(len * lanes) {
                block.copy_from_slice(src);
                iabc_core::fastmath::sort_columns_total_fast(&mut block, lanes);
            }
            black_box(block[0])
        })
    });
    let mut rowbuf = vec![0.0f64; len];
    group.bench_function(
        format!("per_lane_exact/{blocks}blocks/len{len}/x{lanes}"),
        |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for src in columns.chunks_exact(len * lanes) {
                    for lane in 0..lanes {
                        for (s, slot) in rowbuf.iter_mut().enumerate() {
                            *slot = src[s * lanes + lane];
                        }
                        rowbuf.sort_unstable_by(|a, b| a.total_cmp(b));
                        acc += rowbuf[len / 2];
                    }
                }
                black_box(acc)
            })
        },
    );
    group.finish();
}

/// Batched sweep execution: the same 32-cell census slice (complete
/// topology, trimmed-mean, constant adversary, fixed round cap) run
/// one `Simulation` per cell vs grouped into a single width-32
/// `BatchedSimulation` — the `sweep ... --batch` dispatch decision.
/// Tables are byte-identical by construction; `iabc perf` records the
/// same comparison as the `"batched_sweep"` JSON datapoint.
fn bench_batched_sweep(c: &mut Criterion) {
    use iabc_analysis::batched::{AdversarySpec, SimCell, SimCellSpec, Topology};
    let mut group = c.benchmark_group("hotpath_batched_sweep");
    group.sample_size(10);
    let cells_count = 32usize;
    let n = if quick() { 48 } else { 96 };
    let f = n / 30;
    let rounds = if quick() { 8 } else { 15 };
    let spec = SimCellSpec {
        topology: Topology::Complete(n),
        f,
        rule: iabc_core::fastmath::FastRule::TrimmedMean(f),
        adversary: AdversarySpec::Constant(1e9),
        // Epsilon 0 keeps every cell stepping to the round cap: fixed
        // work on both sides, stable timing window.
        epsilon: 0.0,
        max_rounds: rounds,
    };
    let cells: Vec<SimCell> = (0..cells_count)
        .map(|i| SimCell {
            coords: iabc_analysis::sweep::CellCoords::new("bench-batched-sweep").with("i", i),
            spec: spec.clone(),
        })
        .collect();
    group.bench_function(
        format!("dispatched/n{n}/x{cells_count}/{rounds}rounds"),
        |b| b.iter(|| black_box(iabc_analysis::batched::run_sim_cells(&cells, 1, false))),
    );
    group.bench_function(format!("grouped/n{n}/x{cells_count}/{rounds}rounds"), |b| {
        b.iter(|| black_box(iabc_analysis::batched::run_sim_cells(&cells, 1, true)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_compiled,
    bench_reference,
    bench_parallel,
    bench_pool,
    bench_fastmath,
    bench_merge_network,
    bench_batched_sweep
);
criterion_main!(benches);
