//! Minimal hand-rolled JSON.
//!
//! The workspace's vendored `serde` is a no-op stand-in (derives compile,
//! nothing serializes), and the container forbids new dependencies — so
//! the wire protocol carries this ~200-line JSON instead. It covers
//! exactly what the protocol needs: objects, arrays, strings with escape
//! handling, finite numbers, booleans, null.
//!
//! Numbers render through Rust's shortest-roundtrip `{:?}` float
//! formatting, so an `epsilon` survives a client→server trip bit-for-bit.
//! Values that may exceed 2⁵³ (seeds, keys) travel as strings; the typed
//! accessors ([`Json::as_u64`]) accept either form.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// A `u64`, from either an integral number or a decimal string
    /// (the wire form for values that may exceed 2⁵³).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// A `usize` via [`Json::as_u64`].
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A `u64` rendered as a decimal string (exact at any magnitude).
    pub fn u64(v: u64) -> Json {
        Json::Str(v.to_string())
    }

    /// Renders to canonical text (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                // {:?} is Rust's shortest round-trip form; JSON has no
                // non-finite literals, so those are rejected at build time
                // by the protocol layer and never reach here in practice.
                if v.is_finite() {
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing data", pos));
    }
    Ok(value)
}

fn err(message: &str, at: usize) -> JsonError {
    JsonError {
        message: message.to_string(),
        at,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected {:?}", b as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(&format!("expected {lit}"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err("bad number", start))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err("bad number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err("bad \\u escape", *pos))?,
                            16,
                        )
                        .map_err(|_| err("bad \\u escape", *pos))?;
                        // Surrogate pairs are not needed by this protocol;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run of unescaped bytes in one slice:
                // validating from `pos` to end-of-input per character
                // would make string parsing quadratic in the frame size.
                let start = *pos;
                while *pos < bytes.len() && !matches!(bytes[*pos], b'"' | b'\\') {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| err("invalid utf-8", start))?;
                out.push_str(run);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Json::obj([
            ("type", Json::Str("submit".into())),
            ("n", Json::Num(7.0)),
            ("eps", Json::Num(1e-6)),
            ("seed", Json::u64(u64::MAX)),
            (
                "ids",
                Json::Arr(vec![Json::Str("E1".into()), Json::Str("E2".into())]),
            ),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back.get("eps").unwrap().as_f64(), Some(1e-6));
    }

    #[test]
    fn floats_roundtrip_bit_for_bit() {
        for v in [1e-6, 0.1 + 0.2, f64::MIN_POSITIVE, 12345.678901234567] {
            let text = Json::Num(v).render();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "line1\nline\"2\"\\ tab\t unicode é";
        let text = Json::Str(s.into()).render();
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn multibyte_runs_between_escapes_roundtrip() {
        // The run-based scanner must stop exactly at quote/backslash
        // bytes and stitch multi-byte runs back together around escapes.
        let s = "αβγ\\δε\"ζ\nηθ🎯 plain tail";
        let text = Json::Str(s.into()).render();
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
        let big = "x".repeat(200_000) + "→" + &"y".repeat(200_000);
        let text = Json::Str(big.clone()).render();
        assert_eq!(parse(&text).unwrap().as_str(), Some(big.as_str()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }
}
