//! The wire protocol: length-prefixed JSON frames.
//!
//! # Frame format
//!
//! ```text
//! len   u32 LE    byte length of the JSON text (≤ 64 MiB)
//! body  len bytes UTF-8 JSON, one value per frame
//! ```
//!
//! # Requests (client → server, one per connection)
//!
//! ```text
//! {"type":"submit","job":{...}}     run or fetch a job (see crate::job)
//! {"type":"query","key":"<16hex>"}  fetch a stored payload by key
//! {"type":"compact"}                rewrite the journal to live records
//! {"type":"shutdown"}               stop the daemon after this connection
//! ```
//!
//! # Responses (server → client, streamed)
//!
//! ```text
//! {"type":"progress","done":k,"total":t,"label":"..."}   per-cell progress
//! {"type":"result","cache":"hit"|"miss","key":"<16hex>",
//!  "hits":h,"misses":m,"payload":"<hex>"}                terminal
//! {"type":"absent","key":"<16hex>"}                      query miss
//! {"type":"compacted","records_before":a,"records_after":b,
//!  "bytes_before":x,"bytes_after":y,"orphans_removed":o} compact done
//! {"type":"error","message":"..."}                       terminal
//! ```
//!
//! Payload bytes travel hex-encoded, so a client can byte-compare two
//! responses without decoding the payload format at all — exactly what the
//! CI smoke test does.

use std::io::{Read, Write};

use crate::job::JobSpec;
use crate::json::{self, Json};
use crate::store::RunKey;
use crate::ServeError;

/// Upper bound on a frame body, guarding the daemon against hostile or
/// corrupt length prefixes.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one frame. The length prefix and body go out in a single
/// `write_all` — two small writes on a Nagle-enabled socket cost a
/// delayed-ACK round trip (~40 ms) per frame, which dwarfs a cache hit.
pub fn write_frame(w: &mut impl Write, value: &Json) -> std::io::Result<()> {
    let body = value.render();
    let len = body.len() as u32;
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(body.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on clean EOF before a length prefix.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, ServeError> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(ServeError::Io(e.to_string())),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(ServeError::Protocol(format!(
            "frame of {len} bytes exceeds cap"
        )));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)
        .map_err(|e| ServeError::Io(e.to_string()))?;
    let text = String::from_utf8(body)
        .map_err(|_| ServeError::Protocol("frame body is not UTF-8".into()))?;
    json::parse(&text)
        .map(Some)
        .map_err(|e| ServeError::Protocol(e.to_string()))
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run (or fetch) a job.
    Submit(JobSpec),
    /// Fetch a stored payload by key.
    Query(RunKey),
    /// Rewrite the journal to live records and sweep orphaned objects.
    Compact,
    /// Stop the daemon after this connection closes.
    Shutdown,
}

impl Request {
    /// Renders to the wire form.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit(job) => {
                Json::obj([("type", Json::Str("submit".into())), ("job", job.to_json())])
            }
            Request::Query(key) => Json::obj([
                ("type", Json::Str("query".into())),
                ("key", Json::Str(key.hex())),
            ]),
            Request::Compact => Json::obj([("type", Json::Str("compact".into()))]),
            Request::Shutdown => Json::obj([("type", Json::Str("shutdown".into()))]),
        }
    }

    /// Parses the wire form.
    pub fn from_json(json: &Json) -> Result<Request, ServeError> {
        match json.get("type").and_then(Json::as_str) {
            Some("submit") => {
                let job = json
                    .get("job")
                    .ok_or_else(|| ServeError::Protocol("submit missing \"job\"".into()))?;
                Ok(Request::Submit(JobSpec::from_json(job)?))
            }
            Some("query") => {
                let key = json
                    .get("key")
                    .and_then(Json::as_str)
                    .and_then(RunKey::from_hex)
                    .ok_or_else(|| ServeError::Protocol("query needs a 16-hex \"key\"".into()))?;
                Ok(Request::Query(key))
            }
            Some("compact") => Ok(Request::Compact),
            Some("shutdown") => Ok(Request::Shutdown),
            other => Err(ServeError::Protocol(format!(
                "unknown request type {other:?}"
            ))),
        }
    }
}

/// A server frame as seen by a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Per-cell progress while a miss computes.
    Progress {
        /// Cells finished so far.
        done: usize,
        /// Total cells in the job.
        total: usize,
        /// The cell being reported.
        label: String,
    },
    /// Terminal success.
    Result {
        /// `true` iff the payload came from the store.
        cache_hit: bool,
        /// The job's run key.
        key: RunKey,
        /// Per-cell store hits while executing (sweep jobs).
        hits: usize,
        /// Per-cell store misses while executing (sweep jobs).
        misses: usize,
        /// The payload bytes.
        payload: Vec<u8>,
    },
    /// Query miss: the key names no stored object.
    Absent {
        /// The queried key.
        key: RunKey,
    },
    /// Compaction finished (see [`crate::store::CompactionStats`]).
    Compacted {
        /// Journal records before the rewrite.
        records_before: usize,
        /// Journal records after (= live objects).
        records_after: usize,
        /// Journal file size before, in bytes.
        bytes_before: u64,
        /// Journal file size after, in bytes.
        bytes_after: u64,
        /// Orphaned object files removed.
        orphans_removed: usize,
    },
    /// Terminal failure.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

/// Hex-encodes payload bytes for the wire.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes wire hex back to bytes.
pub fn from_hex(text: &str) -> Result<Vec<u8>, ServeError> {
    if !text.len().is_multiple_of(2) {
        return Err(ServeError::Protocol("odd-length hex payload".into()));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&text[i..i + 2], 16)
                .map_err(|_| ServeError::Protocol("bad hex payload".into()))
        })
        .collect()
}

impl Response {
    /// Renders to the wire form.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Progress { done, total, label } => Json::obj([
                ("type", Json::Str("progress".into())),
                ("done", Json::Num(*done as f64)),
                ("total", Json::Num(*total as f64)),
                ("label", Json::Str(label.clone())),
            ]),
            Response::Result {
                cache_hit,
                key,
                hits,
                misses,
                payload,
            } => Json::obj([
                ("type", Json::Str("result".into())),
                (
                    "cache",
                    Json::Str(if *cache_hit { "hit" } else { "miss" }.into()),
                ),
                ("key", Json::Str(key.hex())),
                ("hits", Json::Num(*hits as f64)),
                ("misses", Json::Num(*misses as f64)),
                ("payload", Json::Str(to_hex(payload))),
            ]),
            Response::Absent { key } => Json::obj([
                ("type", Json::Str("absent".into())),
                ("key", Json::Str(key.hex())),
            ]),
            Response::Compacted {
                records_before,
                records_after,
                bytes_before,
                bytes_after,
                orphans_removed,
            } => Json::obj([
                ("type", Json::Str("compacted".into())),
                ("records_before", Json::Num(*records_before as f64)),
                ("records_after", Json::Num(*records_after as f64)),
                ("bytes_before", Json::Num(*bytes_before as f64)),
                ("bytes_after", Json::Num(*bytes_after as f64)),
                ("orphans_removed", Json::Num(*orphans_removed as f64)),
            ]),
            Response::Error { message } => Json::obj([
                ("type", Json::Str("error".into())),
                ("message", Json::Str(message.clone())),
            ]),
        }
    }

    /// Parses the wire form.
    pub fn from_json(json: &Json) -> Result<Response, ServeError> {
        match json.get("type").and_then(Json::as_str) {
            Some("progress") => Ok(Response::Progress {
                done: json.get("done").and_then(Json::as_usize).unwrap_or(0),
                total: json.get("total").and_then(Json::as_usize).unwrap_or(0),
                label: json
                    .get("label")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string(),
            }),
            Some("result") => Ok(Response::Result {
                cache_hit: json.get("cache").and_then(Json::as_str) == Some("hit"),
                key: json
                    .get("key")
                    .and_then(Json::as_str)
                    .and_then(RunKey::from_hex)
                    .ok_or_else(|| ServeError::Protocol("result missing key".into()))?,
                hits: json.get("hits").and_then(Json::as_usize).unwrap_or(0),
                misses: json.get("misses").and_then(Json::as_usize).unwrap_or(0),
                payload: from_hex(
                    json.get("payload")
                        .and_then(Json::as_str)
                        .ok_or_else(|| ServeError::Protocol("result missing payload".into()))?,
                )?,
            }),
            Some("absent") => Ok(Response::Absent {
                key: json
                    .get("key")
                    .and_then(Json::as_str)
                    .and_then(RunKey::from_hex)
                    .ok_or_else(|| ServeError::Protocol("absent missing key".into()))?,
            }),
            Some("compacted") => Ok(Response::Compacted {
                records_before: json
                    .get("records_before")
                    .and_then(Json::as_usize)
                    .unwrap_or(0),
                records_after: json
                    .get("records_after")
                    .and_then(Json::as_usize)
                    .unwrap_or(0),
                bytes_before: json
                    .get("bytes_before")
                    .and_then(Json::as_usize)
                    .unwrap_or(0) as u64,
                bytes_after: json
                    .get("bytes_after")
                    .and_then(Json::as_usize)
                    .unwrap_or(0) as u64,
                orphans_removed: json
                    .get("orphans_removed")
                    .and_then(Json::as_usize)
                    .unwrap_or(0),
            }),
            Some("error") => Ok(Response::Error {
                message: json
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_string(),
            }),
            other => Err(ServeError::Protocol(format!(
                "unknown response type {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        let req = Request::Submit(JobSpec::Sweep {
            ids: vec!["E1".into()],
        });
        write_frame(&mut buf, &req.to_json()).unwrap();
        write_frame(&mut buf, &Request::Compact.to_json()).unwrap();
        write_frame(&mut buf, &Request::Shutdown.to_json()).unwrap();
        let mut cursor = &buf[..];
        let first = Request::from_json(&read_frame(&mut cursor).unwrap().unwrap()).unwrap();
        let second = Request::from_json(&read_frame(&mut cursor).unwrap().unwrap()).unwrap();
        let third = Request::from_json(&read_frame(&mut cursor).unwrap().unwrap()).unwrap();
        assert_eq!(first, req);
        assert_eq!(second, Request::Compact);
        assert_eq!(third, Request::Shutdown);
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn responses_roundtrip() {
        let responses = [
            Response::Progress {
                done: 3,
                total: 12,
                label: "experiments[id=E4]".into(),
            },
            Response::Result {
                cache_hit: true,
                key: RunKey(0xffee_0011_2233_4455),
                hits: 12,
                misses: 0,
                payload: vec![0, 1, 2, 0xff, 0x80],
            },
            Response::Absent { key: RunKey(99) },
            Response::Compacted {
                records_before: 40,
                records_after: 7,
                bytes_before: 1320,
                bytes_after: 231,
                orphans_removed: 2,
            },
            Response::Error {
                message: "bad job".into(),
            },
        ];
        for response in responses {
            let back =
                Response::from_json(&crate::json::parse(&response.to_json().render()).unwrap())
                    .unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn hex_roundtrips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("0g").is_err());
        assert!(from_hex("abc").is_err());
    }
}
