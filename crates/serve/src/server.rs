//! The `iabc serve` daemon: a bounded thread-per-connection accept loop
//! over the frame protocol, backed by the content-addressed [`Store`] and
//! the process-level shared executor.
//!
//! # Concurrency model
//!
//! No async runtime (std::net only): the accept loop hands each
//! connection to a spawned handler thread, bounded by a connection
//! semaphore (`max_connections`; `1` reproduces the PR 7 sequential
//! loop). All handlers share one [`Store`] — hits take only its read
//! lock, so any number of cache hits answer concurrently while a miss
//! computes. Misses compute under the shared pool's **job-level compute
//! permit** ([`iabc_exec::SharedExecutor::with_compute_permit`]): one
//! compute lock, many read locks, and the host is never oversubscribed
//! by concurrent misses.
//!
//! # Single-flight
//!
//! N identical in-flight submissions trigger exactly **one** compute:
//! the first becomes the leader and computes; the rest park on a
//! [`SingleFlight`] entry and are served the leader's bytes when it
//! publishes. The journal records exactly one miss (the leader's) and
//! one hit per coalesced follower, and every connection receives a
//! byte-identical payload.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::job::{
    decode_experiment, encode_experiment, experiment_cell_key, resolve_experiment_ids, JobSpec,
};
use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::store::Store;
use crate::ServeError;
use iabc_analysis::experiments::ExperimentResult;
use iabc_analysis::sweep::{run_cells_memo, CellCoords, CellMemo};

/// Default connection-thread bound when the config leaves it at `0`.
pub const DEFAULT_MAX_CONNECTIONS: usize = 8;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker budget misses execute with (`0` = all cores). The budget
    /// sizes the *process-level shared pool*, so a daemon and an in-process
    /// sweep never stack their thread counts.
    pub jobs: usize,
    /// Store directory.
    pub store_dir: std::path::PathBuf,
    /// Stop after this many connections (`None` = run until a shutdown
    /// request). CI smoke tests use a bounded accept count for clean exit.
    pub accept_limit: Option<usize>,
    /// Concurrent connection-handler bound (`0` =
    /// [`DEFAULT_MAX_CONNECTIONS`]; `1` = the sequential loop).
    pub max_connections: usize,
    /// Object-byte budget for the store (`None` = unbounded); see
    /// [`Store::open_with_budget`].
    pub max_store_bytes: Option<u64>,
}

/// Counters reported when the accept loop exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections handled.
    pub connections: usize,
    /// Jobs answered entirely from the store.
    pub job_hits: usize,
    /// Jobs executed.
    pub job_misses: usize,
    /// Jobs coalesced onto an identical in-flight compute (served the
    /// leader's bytes; journaled as hits).
    pub job_coalesced: usize,
}

/// One in-flight compute that identical submissions can park on.
#[derive(Debug, Default)]
struct Flight {
    /// `None` while the leader computes; the published outcome after.
    done: Mutex<Option<Result<FlightResult, ServeError>>>,
    cv: Condvar,
}

#[derive(Debug, Clone)]
struct FlightResult {
    payload: Vec<u8>,
    hits: usize,
    misses: usize,
}

/// The single-flight table: at most one entry per run key is computing
/// at any moment. Construct one per store and pass it to every
/// [`answer_submit`] call that should coalesce.
#[derive(Debug, Default)]
pub struct SingleFlight {
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
}

impl SingleFlight {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

/// How a submission was answered — feeds [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitDisposition {
    /// Served from the store.
    Hit,
    /// Computed fresh (this submission was the flight leader).
    Miss,
    /// Parked on an identical in-flight compute and served its bytes.
    Coalesced,
}

/// A counting semaphore bounding concurrent connection handlers.
#[derive(Debug)]
struct Semaphore {
    permits: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore {
            permits: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock().unwrap();
        while *permits == 0 {
            permits = self.cv.wait(permits).unwrap();
        }
        *permits -= 1;
    }

    fn release(&self) {
        *self.permits.lock().unwrap() += 1;
        self.cv.notify_one();
    }
}

/// State shared by the accept loop and every connection handler.
#[derive(Debug)]
struct Shared {
    store: Store,
    flights: SingleFlight,
    jobs: usize,
    stats: Mutex<ServerStats>,
    shutdown: AtomicBool,
}

/// The daemon: a bound listener plus the handler-shared state.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    accept_limit: Option<usize>,
    max_connections: usize,
}

/// A [`CellMemo`] over the store for experiment cells: the same key schema
/// and payload encoding whether the cell is computed by the daemon, by
/// `iabc sweep experiments --store`, or replayed from the journal.
#[derive(Debug)]
pub struct StoreMemo<'a> {
    store: &'a Store,
    jobs: u32,
    started: Instant,
}

impl<'a> StoreMemo<'a> {
    /// Wraps a store; `jobs` is recorded in the journal for provenance.
    pub fn new(store: &'a Store, jobs: usize) -> Self {
        StoreMemo {
            store,
            jobs: jobs as u32,
            started: Instant::now(),
        }
    }
}

impl CellMemo<ExperimentResult> for StoreMemo<'_> {
    fn lookup(&mut self, coords: &CellCoords) -> Option<ExperimentResult> {
        let key = experiment_cell_key(&coords.label());
        let bytes = self.store.get(key)?;
        // An undecodable object (schema drift) falls through to a fresh
        // recomputation, which then overwrites it.
        let result = decode_experiment(&bytes).ok()?;
        let _ = self.store.record_hit(key, self.jobs);
        Some(result)
    }

    fn record(&mut self, coords: &CellCoords, value: &ExperimentResult) {
        let key = experiment_cell_key(&coords.label());
        let wall_ms = self.started.elapsed().as_millis() as u64;
        self.started = Instant::now();
        let _ = self
            .store
            .insert(key, &encode_experiment(value), wall_ms, self.jobs);
    }
}

/// Executes a sweep job's cells against the store, streaming one progress
/// frame per cell, and returns `(payload, hits, misses)`. The payload is
/// the concatenation of the per-experiment `IABCEXP1` records, each
/// u32-LE length-prefixed — stable because the cell order is the canonical
/// resolved id order and each record encoder is deterministic.
fn run_sweep_job(
    store: &Store,
    ids: &[String],
    jobs: usize,
    mut progress: impl FnMut(usize, usize, &str),
) -> Result<(Vec<u8>, usize, usize), ServeError> {
    let resolved = resolve_experiment_ids(ids)?;
    let effective: Vec<String> = if resolved.is_empty() {
        (1..=12).map(|i| format!("E{i}")).collect()
    } else {
        resolved
    };
    let total = effective.len();
    let mut payload = Vec::new();
    let mut hits = 0usize;
    let mut misses = 0usize;
    // One memoized sweep per experiment id, so progress frames interleave
    // with execution instead of arriving all at once.
    for (done, id) in effective.iter().enumerate() {
        progress(done, total, &format!("experiments[id={id}]"));
        let (outcomes, cell_hits, cell_misses) = {
            let mut memo = StoreMemo::new(store, jobs);
            let cells = iabc_analysis::sweep::experiment_cells(std::slice::from_ref(id));
            run_cells_memo(cells, jobs, &mut memo)
        };
        hits += cell_hits;
        misses += cell_misses;
        for outcome in &outcomes {
            let record = encode_experiment(&outcome.value);
            payload.extend_from_slice(&(record.len() as u32).to_le_bytes());
            payload.extend_from_slice(&record);
        }
    }
    progress(total, total, "done");
    Ok((payload, hits, misses))
}

/// Decodes a sweep-job payload back into its per-experiment records.
pub fn decode_sweep_payload(mut bytes: &[u8]) -> Result<Vec<ExperimentResult>, ServeError> {
    let mut results = Vec::new();
    while !bytes.is_empty() {
        if bytes.len() < 4 {
            return Err(ServeError::Job("sweep payload truncated".into()));
        }
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        bytes = &bytes[4..];
        if bytes.len() < len {
            return Err(ServeError::Job("sweep payload truncated".into()));
        }
        results.push(decode_experiment(&bytes[..len])?);
        bytes = &bytes[len..];
    }
    Ok(results)
}

/// Executes one submitted job against the store (shared by the daemon and
/// in-process callers like `iabc perf`'s cache datapoints).
///
/// Hits are pure store reads; misses compute under the shared pool's
/// job-level compute permit and are deduplicated through `flights`: if an
/// identical job is already computing, this call parks until the leader
/// publishes and returns the same bytes as a journaled hit
/// ([`SubmitDisposition::Coalesced`]).
pub fn answer_submit(
    store: &Store,
    flights: &SingleFlight,
    job: &JobSpec,
    jobs: usize,
    mut progress: impl FnMut(usize, usize, &str),
) -> Result<(Response, SubmitDisposition), ServeError> {
    let key = job.key()?;
    if let Some(payload) = store.get(key) {
        store
            .record_hit(key, jobs as u32)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        return Ok((
            Response::Result {
                cache_hit: true,
                key,
                hits: 1,
                misses: 0,
                payload,
            },
            SubmitDisposition::Hit,
        ));
    }
    enum Role {
        Leader(Arc<Flight>),
        Follower(Arc<Flight>),
    }
    let role = {
        let mut map = flights.flights.lock().unwrap();
        match map.entry(key.0) {
            std::collections::hash_map::Entry::Occupied(e) => Role::Follower(Arc::clone(e.get())),
            std::collections::hash_map::Entry::Vacant(v) => {
                Role::Leader(Arc::clone(v.insert(Arc::new(Flight::default()))))
            }
        }
    };
    match role {
        Role::Leader(flight) => {
            // Double-check under leadership: a previous leader may have
            // published between this thread's store probe and winning the
            // table slot. Re-probing here makes "exactly one journaled
            // miss per key" a hard invariant, not a likelihood.
            let (outcome, disposition) = match store.get(key) {
                Some(payload) => (
                    store
                        .record_hit(key, jobs as u32)
                        .map_err(|e| ServeError::Io(e.to_string()))
                        .map(|()| FlightResult {
                            payload,
                            hits: 1,
                            misses: 0,
                        }),
                    SubmitDisposition::Hit,
                ),
                None => (
                    compute_and_insert(store, job, key, jobs, &mut progress),
                    SubmitDisposition::Miss,
                ),
            };
            // Publish order matters: drop the table entry first so a
            // submission arriving after the publish finds the store
            // object (already inserted) instead of a dead flight, then
            // wake every parked follower.
            flights.flights.lock().unwrap().remove(&key.0);
            *flight.done.lock().unwrap() = Some(outcome.clone());
            flight.cv.notify_all();
            outcome.map(|result| {
                (
                    Response::Result {
                        cache_hit: disposition == SubmitDisposition::Hit,
                        key,
                        hits: result.hits,
                        misses: result.misses,
                        payload: result.payload,
                    },
                    disposition,
                )
            })
        }
        Role::Follower(flight) => {
            let mut done = flight.done.lock().unwrap();
            while done.is_none() {
                done = flight.cv.wait(done).unwrap();
            }
            let outcome = done.as_ref().unwrap().clone();
            drop(done);
            let result = outcome?;
            // The follower was served from (what is now) the store: one
            // journaled hit, byte-identical payload.
            store
                .record_hit(key, jobs as u32)
                .map_err(|e| ServeError::Io(e.to_string()))?;
            Ok((
                Response::Result {
                    cache_hit: true,
                    key,
                    hits: 1,
                    misses: 0,
                    payload: result.payload,
                },
                SubmitDisposition::Coalesced,
            ))
        }
    }
}

/// The leader path: compute the job under the shared pool's compute
/// permit, then insert the payload (exactly one journaled miss).
fn compute_and_insert(
    store: &Store,
    job: &JobSpec,
    key: crate::store::RunKey,
    jobs: usize,
    progress: &mut impl FnMut(usize, usize, &str),
) -> Result<FlightResult, ServeError> {
    let pool = iabc_exec::process_executor(jobs);
    let started = Instant::now();
    let computed = pool.with_compute_permit(|| match job {
        JobSpec::Scenario(spec) => {
            progress(0, 1, "scenario");
            spec.execute().map(|payload| (payload, 0, 1))
        }
        JobSpec::Sweep { ids } => run_sweep_job(store, ids, jobs, &mut *progress),
    });
    let (payload, hits, misses) = computed?;
    let wall_ms = started.elapsed().as_millis() as u64;
    store
        .insert(key, &payload, wall_ms, jobs as u32)
        .map_err(|e| ServeError::Io(e.to_string()))?;
    Ok(FlightResult {
        payload,
        hits,
        misses,
    })
}

/// Handles one accepted connection against the shared state. `addr` is
/// the listener's own address, used to wake a blocked `accept()` when a
/// shutdown request arrives.
fn handle_connection(mut stream: TcpStream, shared: &Shared, addr: SocketAddr) {
    let request = match read_frame(&mut stream) {
        Ok(Some(json)) => Request::from_json(&json),
        Ok(None) => return,
        Err(e) => Err(e),
    };
    match request {
        Ok(Request::Shutdown) => {
            let _ = write_frame(
                &mut stream,
                &Response::Error {
                    message: "shutting down".into(),
                }
                .to_json(),
            );
            shared.shutdown.store(true, Ordering::SeqCst);
            // The accept loop may be parked in accept(); a throwaway
            // connection unblocks it so it can observe the flag.
            let _ = TcpStream::connect(addr);
        }
        Ok(Request::Query(key)) => {
            let response = match shared.store.get(key) {
                Some(payload) => {
                    let _ = shared.store.record_hit(key, shared.jobs as u32);
                    Response::Result {
                        cache_hit: true,
                        key,
                        hits: 1,
                        misses: 0,
                        payload,
                    }
                }
                None => Response::Absent { key },
            };
            let _ = write_frame(&mut stream, &response.to_json());
        }
        Ok(Request::Compact) => {
            let response = match shared.store.compact() {
                Ok(stats) => Response::Compacted {
                    records_before: stats.records_before,
                    records_after: stats.records_after,
                    bytes_before: stats.bytes_before,
                    bytes_after: stats.bytes_after,
                    orphans_removed: stats.orphans_removed,
                },
                Err(e) => Response::Error {
                    message: format!("compaction failed: {e}"),
                },
            };
            let _ = write_frame(&mut stream, &response.to_json());
        }
        Ok(Request::Submit(job)) => {
            let result = answer_submit(
                &shared.store,
                &shared.flights,
                &job,
                shared.jobs,
                |done, total, label| {
                    let _ = write_frame(
                        &mut stream,
                        &Response::Progress {
                            done,
                            total,
                            label: label.to_string(),
                        }
                        .to_json(),
                    );
                },
            );
            match result {
                Ok((response, disposition)) => {
                    {
                        let mut stats = shared.stats.lock().unwrap();
                        match disposition {
                            SubmitDisposition::Hit => stats.job_hits += 1,
                            SubmitDisposition::Miss => stats.job_misses += 1,
                            SubmitDisposition::Coalesced => stats.job_coalesced += 1,
                        }
                    }
                    let _ = write_frame(&mut stream, &response.to_json());
                }
                Err(e) => {
                    let _ = write_frame(
                        &mut stream,
                        &Response::Error {
                            message: e.to_string(),
                        }
                        .to_json(),
                    );
                }
            }
        }
        Err(e) => {
            let _ = write_frame(
                &mut stream,
                &Response::Error {
                    message: e.to_string(),
                }
                .to_json(),
            );
        }
    }
}

impl Server {
    /// Binds the listener and opens (or creates) the store. Warming the
    /// process pool happens lazily on the first miss.
    pub fn bind(config: &ServerConfig) -> Result<Server, ServeError> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| ServeError::Io(e.to_string()))?;
        let store = Store::open_with_budget(&config.store_dir, config.max_store_bytes)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                store,
                flights: SingleFlight::new(),
                jobs: config.jobs,
                stats: Mutex::new(ServerStats::default()),
                shutdown: AtomicBool::new(false),
            }),
            accept_limit: config.accept_limit,
            max_connections: if config.max_connections == 0 {
                DEFAULT_MAX_CONNECTIONS
            } else {
                config.max_connections
            },
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))
    }

    /// Read access to the store (tests inspect journal state through it).
    pub fn store(&self) -> &Store {
        &self.shared.store
    }

    /// Runs the accept loop until the accept limit is reached or a
    /// shutdown request arrives; handlers run on bounded threads and are
    /// all joined before the final counters are returned.
    pub fn run(&mut self) -> Result<ServerStats, ServeError> {
        let addr = self.local_addr()?;
        let semaphore = Arc::new(Semaphore::new(self.max_connections));
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut accepted = 0usize;
        loop {
            if let Some(limit) = self.accept_limit {
                if accepted >= limit {
                    break;
                }
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| ServeError::Io(e.to_string()))?;
            // Responses are single small frames; Nagle would hold them
            // for a delayed-ACK round trip.
            let _ = stream.set_nodelay(true);
            if self.shared.shutdown.load(Ordering::SeqCst) {
                // The wake-up connection from the shutdown handler; not a
                // client, not counted.
                break;
            }
            accepted += 1;
            semaphore.acquire();
            let shared = Arc::clone(&self.shared);
            let semaphore_for_handler = Arc::clone(&semaphore);
            handles.push(std::thread::spawn(move || {
                handle_connection(stream, &shared, addr);
                semaphore_for_handler.release();
            }));
            // Reap finished handlers so the handle list stays bounded on
            // long-lived daemons.
            let (done, running): (Vec<_>, Vec<_>) =
                handles.drain(..).partition(|h| h.is_finished());
            handles = running;
            for handle in done {
                handle.join().expect("connection handler panicked");
            }
        }
        for handle in handles {
            handle.join().expect("connection handler panicked");
        }
        let mut stats = *self.shared.stats.lock().unwrap();
        stats.connections = accepted;
        Ok(stats)
    }
}
