//! The `iabc serve` daemon: a `std::net::TcpListener` accept loop over the
//! frame protocol, backed by the content-addressed [`Store`] and the
//! process-level shared executor.
//!
//! No async runtime: connections are handled sequentially (one request per
//! connection, responses streamed), which is all the deterministic,
//! CPU-bound workload needs — a job either answers instantly from the
//! store or owns the shared pool while it computes.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Instant;

use crate::job::{
    decode_experiment, encode_experiment, experiment_cell_key, resolve_experiment_ids, JobSpec,
};
use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::store::Store;
use crate::ServeError;
use iabc_analysis::experiments::ExperimentResult;
use iabc_analysis::sweep::{run_cells_memo, CellCoords, CellMemo};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker budget misses execute with (`0` = all cores). The budget
    /// sizes the *process-level shared pool*, so a daemon and an in-process
    /// sweep never stack their thread counts.
    pub jobs: usize,
    /// Store directory.
    pub store_dir: std::path::PathBuf,
    /// Stop after this many connections (`None` = run until a shutdown
    /// request). CI smoke tests use a bounded accept count for clean exit.
    pub accept_limit: Option<usize>,
}

/// Counters reported when the accept loop exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections handled.
    pub connections: usize,
    /// Jobs answered entirely from the store.
    pub job_hits: usize,
    /// Jobs executed.
    pub job_misses: usize,
}

/// The daemon: a bound listener plus its store.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    store: Store,
    jobs: usize,
    accept_limit: Option<usize>,
}

/// A [`CellMemo`] over the store for experiment cells: the same key schema
/// and payload encoding whether the cell is computed by the daemon, by
/// `iabc sweep experiments --store`, or replayed from the journal.
#[derive(Debug)]
pub struct StoreMemo<'a> {
    store: &'a mut Store,
    jobs: u32,
    started: Instant,
}

impl<'a> StoreMemo<'a> {
    /// Wraps a store; `jobs` is recorded in the journal for provenance.
    pub fn new(store: &'a mut Store, jobs: usize) -> Self {
        StoreMemo {
            store,
            jobs: jobs as u32,
            started: Instant::now(),
        }
    }
}

impl CellMemo<ExperimentResult> for StoreMemo<'_> {
    fn lookup(&mut self, coords: &CellCoords) -> Option<ExperimentResult> {
        let key = experiment_cell_key(&coords.label());
        let bytes = self.store.get(key)?;
        // An undecodable object (schema drift) falls through to a fresh
        // recomputation, which then overwrites it.
        let result = decode_experiment(&bytes).ok()?;
        let _ = self.store.record_hit(key, self.jobs);
        Some(result)
    }

    fn record(&mut self, coords: &CellCoords, value: &ExperimentResult) {
        let key = experiment_cell_key(&coords.label());
        let wall_ms = self.started.elapsed().as_millis() as u64;
        self.started = Instant::now();
        let _ = self
            .store
            .insert(key, &encode_experiment(value), wall_ms, self.jobs);
    }
}

/// Executes a sweep job's cells against the store, streaming one progress
/// frame per cell, and returns `(payload, hits, misses)`. The payload is
/// the concatenation of the per-experiment `IABCEXP1` records, each
/// u32-LE length-prefixed — stable because the cell order is the canonical
/// resolved id order and each record encoder is deterministic.
fn run_sweep_job(
    store: &mut Store,
    ids: &[String],
    jobs: usize,
    mut progress: impl FnMut(usize, usize, &str),
) -> Result<(Vec<u8>, usize, usize), ServeError> {
    let resolved = resolve_experiment_ids(ids)?;
    let total = if resolved.is_empty() {
        12
    } else {
        resolved.len()
    };
    let mut payload = Vec::new();
    let mut hits = 0usize;
    let mut misses = 0usize;
    // One memoized sweep per experiment id, so progress frames interleave
    // with execution instead of arriving all at once.
    let effective: Vec<String> = if resolved.is_empty() {
        (1..=12).map(|i| format!("E{i}")).collect()
    } else {
        resolved
    };
    for (done, id) in effective.iter().enumerate() {
        progress(done, total, &format!("experiments[id={id}]"));
        let (outcomes, cell_hits, cell_misses) = {
            let mut memo = StoreMemo::new(store, jobs);
            let cells = iabc_analysis::sweep::experiment_cells(std::slice::from_ref(id));
            run_cells_memo(cells, jobs, &mut memo)
        };
        hits += cell_hits;
        misses += cell_misses;
        for outcome in &outcomes {
            let record = encode_experiment(&outcome.value);
            payload.extend_from_slice(&(record.len() as u32).to_le_bytes());
            payload.extend_from_slice(&record);
        }
    }
    progress(total, total, "done");
    Ok((payload, hits, misses))
}

/// Decodes a sweep-job payload back into its per-experiment records.
pub fn decode_sweep_payload(mut bytes: &[u8]) -> Result<Vec<ExperimentResult>, ServeError> {
    let mut results = Vec::new();
    while !bytes.is_empty() {
        if bytes.len() < 4 {
            return Err(ServeError::Job("sweep payload truncated".into()));
        }
        let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        bytes = &bytes[4..];
        if bytes.len() < len {
            return Err(ServeError::Job("sweep payload truncated".into()));
        }
        results.push(decode_experiment(&bytes[..len])?);
        bytes = &bytes[len..];
    }
    Ok(results)
}

/// Executes one submitted job against the store (shared by the daemon and
/// in-process callers like `iabc perf`'s cache datapoint). Returns the
/// terminal [`Response::Result`] and whether it was a job-level hit.
pub fn answer_submit(
    store: &mut Store,
    job: &JobSpec,
    jobs: usize,
    mut progress: impl FnMut(usize, usize, &str),
) -> Result<Response, ServeError> {
    let key = job.key()?;
    if let Some(payload) = store.get(key) {
        store
            .record_hit(key, jobs as u32)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        return Ok(Response::Result {
            cache_hit: true,
            key,
            hits: 1,
            misses: 0,
            payload,
        });
    }
    let started = Instant::now();
    let (payload, hits, misses) = match job {
        JobSpec::Scenario(spec) => {
            progress(0, 1, "scenario");
            let payload = spec.execute()?;
            (payload, 0, 1)
        }
        JobSpec::Sweep { ids } => run_sweep_job(store, ids, jobs, &mut progress)?,
    };
    let wall_ms = started.elapsed().as_millis() as u64;
    store
        .insert(key, &payload, wall_ms, jobs as u32)
        .map_err(|e| ServeError::Io(e.to_string()))?;
    Ok(Response::Result {
        cache_hit: false,
        key,
        hits,
        misses,
        payload,
    })
}

impl Server {
    /// Binds the listener and opens (or creates) the store. Warming the
    /// process pool happens lazily on the first miss.
    pub fn bind(config: &ServerConfig) -> Result<Server, ServeError> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| ServeError::Io(e.to_string()))?;
        let store = Store::open(&config.store_dir).map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(Server {
            listener,
            store,
            jobs: config.jobs,
            accept_limit: config.accept_limit,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))
    }

    /// Read access to the store (tests inspect journal state through it).
    pub fn store(&self) -> &Store {
        &self.store
    }

    fn handle(&mut self, mut stream: TcpStream, stats: &mut ServerStats) -> bool {
        let request = match read_frame(&mut stream) {
            Ok(Some(json)) => Request::from_json(&json),
            Ok(None) => return false,
            Err(e) => Err(e),
        };
        match request {
            Ok(Request::Shutdown) => {
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        message: "shutting down".into(),
                    }
                    .to_json(),
                );
                true
            }
            Ok(Request::Query(key)) => {
                let response = match self.store.get(key) {
                    Some(payload) => {
                        let _ = self.store.record_hit(key, self.jobs as u32);
                        Response::Result {
                            cache_hit: true,
                            key,
                            hits: 1,
                            misses: 0,
                            payload,
                        }
                    }
                    None => Response::Absent { key },
                };
                let _ = write_frame(&mut stream, &response.to_json());
                false
            }
            Ok(Request::Submit(job)) => {
                let jobs = self.jobs;
                let store = &mut self.store;
                let result = answer_submit(store, &job, jobs, |done, total, label| {
                    let _ = write_frame(
                        &mut stream,
                        &Response::Progress {
                            done,
                            total,
                            label: label.to_string(),
                        }
                        .to_json(),
                    );
                });
                match result {
                    Ok(response) => {
                        if let Response::Result { cache_hit, .. } = &response {
                            if *cache_hit {
                                stats.job_hits += 1;
                            } else {
                                stats.job_misses += 1;
                            }
                        }
                        let _ = write_frame(&mut stream, &response.to_json());
                    }
                    Err(e) => {
                        let _ = write_frame(
                            &mut stream,
                            &Response::Error {
                                message: e.to_string(),
                            }
                            .to_json(),
                        );
                    }
                }
                false
            }
            Err(e) => {
                let _ = write_frame(
                    &mut stream,
                    &Response::Error {
                        message: e.to_string(),
                    }
                    .to_json(),
                );
                false
            }
        }
    }

    /// Runs the accept loop until the accept limit is reached or a
    /// shutdown request arrives. Returns the final counters.
    pub fn run(&mut self) -> Result<ServerStats, ServeError> {
        let mut stats = ServerStats::default();
        loop {
            if let Some(limit) = self.accept_limit {
                if stats.connections >= limit {
                    return Ok(stats);
                }
            }
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| ServeError::Io(e.to_string()))?;
            stats.connections += 1;
            if self.handle(stream, &mut stats) {
                return Ok(stats);
            }
        }
    }
}
