//! Thin TCP clients for the frame protocol — what `iabc submit` and
//! `iabc query` call.

use std::net::TcpStream;

use crate::job::JobSpec;
use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::store::{CompactionStats, RunKey};
use crate::ServeError;

/// Everything a submit returns: the terminal result plus any progress
/// labels streamed while a miss computed.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// `true` iff the daemon answered from its store.
    pub cache_hit: bool,
    /// The job's run key (hex form is the on-disk object name).
    pub key: RunKey,
    /// Per-cell store hits while the job executed.
    pub hits: usize,
    /// Per-cell store misses while the job executed.
    pub misses: usize,
    /// The payload bytes.
    pub payload: Vec<u8>,
    /// Progress labels, in arrival order.
    pub progress: Vec<String>,
}

fn connect(addr: &str) -> Result<TcpStream, ServeError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| ServeError::Io(format!("connect {addr}: {e}")))?;
    // Request/response frames must not sit in Nagle's buffer waiting for
    // a delayed ACK: a cache hit is a single small exchange.
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

/// Submits a job and collects the streamed response.
pub fn submit(addr: &str, job: &JobSpec) -> Result<SubmitOutcome, ServeError> {
    let mut stream = connect(addr)?;
    write_frame(&mut stream, &Request::Submit(job.clone()).to_json())
        .map_err(|e| ServeError::Io(e.to_string()))?;
    let mut progress = Vec::new();
    loop {
        let frame = read_frame(&mut stream)?
            .ok_or_else(|| ServeError::Protocol("connection closed mid-response".into()))?;
        match Response::from_json(&frame)? {
            Response::Progress { label, .. } => progress.push(label),
            Response::Result {
                cache_hit,
                key,
                hits,
                misses,
                payload,
            } => {
                return Ok(SubmitOutcome {
                    cache_hit,
                    key,
                    hits,
                    misses,
                    payload,
                    progress,
                })
            }
            Response::Absent { key } => {
                return Err(ServeError::Protocol(format!(
                    "unexpected absent frame for {key}"
                )))
            }
            Response::Compacted { .. } => {
                return Err(ServeError::Protocol("unexpected compacted frame".into()))
            }
            Response::Error { message } => return Err(ServeError::Server(message)),
        }
    }
}

/// Fetches a stored payload by key; `Ok(None)` when the key is absent.
pub fn query(addr: &str, key: RunKey) -> Result<Option<Vec<u8>>, ServeError> {
    let mut stream = connect(addr)?;
    write_frame(&mut stream, &Request::Query(key).to_json())
        .map_err(|e| ServeError::Io(e.to_string()))?;
    let frame = read_frame(&mut stream)?
        .ok_or_else(|| ServeError::Protocol("connection closed mid-response".into()))?;
    match Response::from_json(&frame)? {
        Response::Result { payload, .. } => Ok(Some(payload)),
        Response::Absent { .. } => Ok(None),
        Response::Error { message } => Err(ServeError::Server(message)),
        other => Err(ServeError::Protocol(format!("unexpected frame {other:?}"))),
    }
}

/// Asks the daemon to compact its journal (rewrite to live records and
/// sweep orphaned objects); returns the rewrite stats.
pub fn compact(addr: &str) -> Result<CompactionStats, ServeError> {
    let mut stream = connect(addr)?;
    write_frame(&mut stream, &Request::Compact.to_json())
        .map_err(|e| ServeError::Io(e.to_string()))?;
    let frame = read_frame(&mut stream)?
        .ok_or_else(|| ServeError::Protocol("connection closed mid-response".into()))?;
    match Response::from_json(&frame)? {
        Response::Compacted {
            records_before,
            records_after,
            bytes_before,
            bytes_after,
            orphans_removed,
        } => Ok(CompactionStats {
            records_before,
            records_after,
            bytes_before,
            bytes_after,
            orphans_removed,
        }),
        Response::Error { message } => Err(ServeError::Server(message)),
        other => Err(ServeError::Protocol(format!("unexpected frame {other:?}"))),
    }
}

/// Asks the daemon to stop after this connection.
pub fn shutdown(addr: &str) -> Result<(), ServeError> {
    let mut stream = connect(addr)?;
    write_frame(&mut stream, &Request::Shutdown.to_json())
        .map_err(|e| ServeError::Io(e.to_string()))?;
    // The daemon acknowledges with a terminal frame; ignore its content.
    let _ = read_frame(&mut stream);
    Ok(())
}
