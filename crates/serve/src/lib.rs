//! **iabc-serve** — the sweep-as-a-service tier.
//!
//! Every engine in this workspace is bit-for-bit deterministic at any job
//! count (pinned by goldens and proptests since PR 3–5). That turns result
//! caching from a heuristic into a theorem: a result stored under a key
//! that fingerprints *every* output-determining ingredient is **provably
//! identical** to recomputation. This crate spends that property in three
//! layers:
//!
//! * [`store`] — a content-addressed result store (`RunKey` → payload
//!   object on disk) with an append-only run journal whose replay
//!   reconstructs the index: every table the daemon ever served has
//!   addressable, replayable provenance;
//! * [`server`] — the `iabc serve` daemon: a bounded thread-per-connection
//!   `std::net::TcpListener` accept loop speaking length-prefixed JSON
//!   frames ([`protocol`]; hand-rolled [`json`], since the vendored serde
//!   is a no-op stand-in), answering hits concurrently from the store's
//!   read lock, executing misses under the **process-level shared
//!   executor**'s compute permit ([`iabc_exec::process_executor`]), and
//!   coalescing identical in-flight submissions ([`server::SingleFlight`]);
//! * [`client`] — `iabc submit` / `iabc query`, plus the in-process
//!   [`server::StoreMemo`] fast path that lets `iabc sweep experiments
//!   --store DIR` memoize through the identical key schema without a
//!   socket.
//!
//! The key schema lives in [`job`]: FNV-1a (via the canonical
//! [`iabc_graph::fingerprint`] module) over `(topology fingerprint, fault
//! set, adversary family + params, rule, seed, engine kind, RunConfig)`
//! for scenario jobs, and the canonicalized experiment-id list for sweep
//! jobs. Payloads are explicit little-endian records
//! ([`iabc_sim::wire`]'s `IABCOUT1` for outcomes, [`job`]'s `IABCEXP1`
//! for experiment tables), so cache equality is byte equality.

#![warn(missing_docs)]

pub mod client;
pub mod job;
pub mod json;
pub mod protocol;
pub mod server;
pub mod store;

pub use client::{compact, query, shutdown, submit, SubmitOutcome};
pub use job::{EngineSpec, InputSpec, JobSpec, ScenarioSpec};
pub use server::{
    answer_submit, decode_sweep_payload, Server, ServerConfig, ServerStats, SingleFlight,
    StoreMemo, SubmitDisposition, DEFAULT_MAX_CONNECTIONS,
};
pub use store::{replay_journal, CompactionStats, JournalRecord, RecordKind, RunKey, Store};

/// Unified error for the serving tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Socket / filesystem failure.
    Io(String),
    /// Malformed frame, JSON, or request.
    Protocol(String),
    /// Invalid or failing job (unknown rule, bad graph, engine error).
    Job(String),
    /// The server answered with an error frame.
    Server(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "io error: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Job(m) => write!(f, "job error: {m}"),
            ServeError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
