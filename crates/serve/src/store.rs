//! The content-addressed result store and its append-only run journal.
//!
//! # Layout
//!
//! ```text
//! <dir>/
//!   objects/<16-hex-key>.bin    one serialized result per run key
//!   journal.log                 append-only, one record per store event
//! ```
//!
//! # Journal record
//!
//! Each record is length-prefixed so the journal survives torn tails
//! (a record cut short by a crash is detected and ignored):
//!
//! ```text
//! len      u32 LE   payload length (= 21)
//! key      u64 LE   the run key
//! wall_ms  u64 LE   wall-clock duration of the compute (0 for hits)
//! jobs     u32 LE   worker count the job ran with
//! hit      u8       0 = miss (object inserted), 1 = cache hit served
//! ```
//!
//! Replaying miss records in order reconstructs the exact index (the set
//! of addressable objects); hit records are provenance — who was served
//! what, without recomputation. [`Store::open`] performs exactly this
//! replay, so the journal *is* the index's source of truth.

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// A content address: the FNV-1a fingerprint of every run ingredient
/// (see [`crate::job`] for the schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey(pub u64);

impl RunKey {
    /// 16-char lower-hex rendering — the on-disk object name and the wire
    /// form.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the 16-char hex form.
    pub fn from_hex(s: &str) -> Option<RunKey> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(RunKey)
    }
}

impl std::fmt::Display for RunKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// One replayed journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRecord {
    /// The run key the event concerns.
    pub key: RunKey,
    /// Wall-clock milliseconds the compute took (0 for hits).
    pub wall_ms: u64,
    /// Worker count the job ran with.
    pub jobs: u32,
    /// `false` = miss (insert), `true` = hit served from the store.
    pub hit: bool,
}

const RECORD_LEN: usize = 8 + 8 + 4 + 1;

/// Decodes every complete record in `journal.log` bytes, in order. A
/// truncated tail (torn final write) is ignored, matching the append-only
/// crash model.
pub fn decode_journal(bytes: &[u8]) -> Vec<JournalRecord> {
    let mut records = Vec::new();
    let mut rest = bytes;
    while rest.len() >= 4 {
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if rest.len() < 4 + len || len < RECORD_LEN {
            break;
        }
        let payload = &rest[4..4 + len];
        records.push(JournalRecord {
            key: RunKey(u64::from_le_bytes(payload[..8].try_into().unwrap())),
            wall_ms: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
            jobs: u32::from_le_bytes(payload[16..20].try_into().unwrap()),
            hit: payload[20] != 0,
        });
        rest = &rest[4 + len..];
    }
    records
}

/// Reads and decodes a journal file; an absent file is an empty journal.
pub fn replay_journal(path: &Path) -> std::io::Result<Vec<JournalRecord>> {
    match fs::read(path) {
        Ok(bytes) => Ok(decode_journal(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

fn encode_record(record: &JournalRecord) -> [u8; 4 + RECORD_LEN] {
    let mut buf = [0u8; 4 + RECORD_LEN];
    buf[..4].copy_from_slice(&(RECORD_LEN as u32).to_le_bytes());
    buf[4..12].copy_from_slice(&record.key.0.to_le_bytes());
    buf[12..20].copy_from_slice(&record.wall_ms.to_le_bytes());
    buf[20..24].copy_from_slice(&record.jobs.to_le_bytes());
    buf[24] = u8::from(record.hit);
    buf
}

/// The content-addressed store: an on-disk object directory plus the
/// in-memory key index rebuilt from the journal on open.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    index: HashSet<u64>,
    journal: File,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir` and rebuilds the
    /// index by replaying `journal.log`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("objects"))?;
        let index = replay_journal(&dir.join("journal.log"))?
            .into_iter()
            .filter(|r| !r.hit)
            .map(|r| r.key.0)
            .collect();
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("journal.log"))?;
        Ok(Store {
            dir,
            index,
            journal,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.log")
    }

    /// Path of the object holding `key`'s payload.
    pub fn object_path(&self, key: RunKey) -> PathBuf {
        self.dir.join("objects").join(format!("{}.bin", key.hex()))
    }

    /// Number of addressable objects.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` iff no object has been inserted.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// All addressable keys, sorted.
    pub fn keys(&self) -> Vec<RunKey> {
        let mut keys: Vec<RunKey> = self.index.iter().copied().map(RunKey).collect();
        keys.sort();
        keys
    }

    /// `true` iff `key` is addressable.
    pub fn contains(&self, key: RunKey) -> bool {
        self.index.contains(&key.0)
    }

    /// Reads `key`'s payload, or `None` if it was never inserted. Does
    /// **not** journal — pair with [`Store::record_hit`] when the read
    /// answers a job.
    pub fn get(&self, key: RunKey) -> Option<Vec<u8>> {
        if !self.index.contains(&key.0) {
            return None;
        }
        let mut buf = Vec::new();
        File::open(self.object_path(key))
            .and_then(|mut f| f.read_to_end(&mut buf))
            .ok()?;
        Some(buf)
    }

    /// Inserts `key → payload` and appends a **miss** record to the
    /// journal (object first, record second: a key the journal names is
    /// always readable).
    pub fn insert(
        &mut self,
        key: RunKey,
        payload: &[u8],
        wall_ms: u64,
        jobs: u32,
    ) -> std::io::Result<()> {
        fs::write(self.object_path(key), payload)?;
        self.journal.write_all(&encode_record(&JournalRecord {
            key,
            wall_ms,
            jobs,
            hit: false,
        }))?;
        self.journal.flush()?;
        self.index.insert(key.0);
        Ok(())
    }

    /// Appends a **hit** record: `key` was served from the store.
    pub fn record_hit(&mut self, key: RunKey, jobs: u32) -> std::io::Result<()> {
        self.journal.write_all(&encode_record(&JournalRecord {
            key,
            wall_ms: 0,
            jobs,
            hit: true,
        }))?;
        self.journal.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iabc-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn insert_get_roundtrip_and_reopen() {
        let dir = temp_dir("roundtrip");
        let key = RunKey(0xdead_beef_0123_4567);
        {
            let mut store = Store::open(&dir).unwrap();
            assert!(store.get(key).is_none());
            store.insert(key, b"payload-bytes", 12, 4).unwrap();
            assert_eq!(store.get(key).unwrap(), b"payload-bytes");
        }
        // Reopen: the journal replay rebuilds the index.
        let store = Store::open(&dir).unwrap();
        assert!(store.contains(key));
        assert_eq!(store.get(key).unwrap(), b"payload-bytes");
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_orders_miss_then_hit() {
        let dir = temp_dir("order");
        let key = RunKey(42);
        let mut store = Store::open(&dir).unwrap();
        store.insert(key, b"x", 5, 1).unwrap();
        store.record_hit(key, 1).unwrap();
        let records = replay_journal(&store.journal_path()).unwrap();
        assert_eq!(records.len(), 2);
        assert!(!records[0].hit, "first record must be the miss");
        assert!(records[1].hit, "second record must be the hit");
        assert_eq!(records[0].key, key);
        assert_eq!(records[1].key, key);
        assert_eq!(records[0].wall_ms, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = temp_dir("torn");
        let key = RunKey(7);
        let mut store = Store::open(&dir).unwrap();
        store.insert(key, b"x", 1, 1).unwrap();
        drop(store);
        // Append half a record.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("journal.log"))
            .unwrap();
        f.write_all(&[21, 0, 0, 0, 1, 2, 3]).unwrap();
        drop(f);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.contains(key));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hex_roundtrip() {
        let key = RunKey(0x0123_4567_89ab_cdef);
        assert_eq!(key.hex(), "0123456789abcdef");
        assert_eq!(RunKey::from_hex(&key.hex()), Some(key));
        assert_eq!(RunKey::from_hex("xyz"), None);
        assert_eq!(RunKey::from_hex("0123"), None);
    }
}
