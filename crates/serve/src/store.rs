//! The content-addressed result store and its append-only run journal.
//!
//! # Layout
//!
//! ```text
//! <dir>/
//!   objects/<16-hex-key>.bin    one serialized result per run key
//!   journal.log                 append-only, one record per store event
//! ```
//!
//! # Journal record
//!
//! Each record is length-prefixed so the journal survives torn tails
//! (a record cut short by a crash is detected and ignored):
//!
//! ```text
//! len      u32 LE   payload length (= 29; legacy stores wrote 21)
//! key      u64 LE   the run key
//! wall_ms  u64 LE   wall-clock duration of the compute (0 for hits/evicts)
//! jobs     u32 LE   worker count the job ran with (0 for evicts)
//! kind     u8       0 = miss (object inserted), 1 = hit served, 2 = evicted
//! bytes    u64 LE   object size (absent in legacy 21-byte records)
//! ```
//!
//! Replaying the records in order reconstructs the exact index: misses
//! insert, evicts remove, and hits advance the LRU clock so recency
//! survives a restart. [`Store::open`] performs exactly this replay, so
//! the journal *is* the index's source of truth. Legacy 21-byte records
//! (no `bytes` field) are accepted; their object size is recovered by
//! stat-ing the object file.
//!
//! # Concurrency
//!
//! The store is internally synchronized and shared by reference: the
//! index lives behind a [`RwLock`] (cache hits are pure reads), the
//! journal file behind a [`Mutex`]. Lock order is always index before
//! journal. Object reads happen outside both locks — a read racing an
//! eviction degrades to a miss, never to a torn payload.
//!
//! # Eviction and compaction
//!
//! [`Store::open_with_budget`] caps the total object bytes: every insert
//! evicts least-recently-used objects until the total is within budget
//! (the invariant is strict — the store never exceeds the cap, even
//! transiently after the insert completes). Evictions journal `evict`
//! records so replay stays exact. [`Store::compact`] rewrites the
//! journal to one miss record per live object (in LRU→MRU order, so
//! recency is replay-equivalent by construction) and sweeps orphaned
//! object files.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, RwLock};

/// A content address: the FNV-1a fingerprint of every run ingredient
/// (see [`crate::job`] for the schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey(pub u64);

impl RunKey {
    /// 16-char lower-hex rendering — the on-disk object name and the wire
    /// form.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the 16-char hex form.
    pub fn from_hex(s: &str) -> Option<RunKey> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(RunKey)
    }
}

impl std::fmt::Display for RunKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// What a journal record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Object inserted (computed fresh).
    Miss,
    /// Object served from the store.
    Hit,
    /// Object evicted to stay within the byte budget.
    Evict,
}

/// One replayed journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalRecord {
    /// The run key the event concerns.
    pub key: RunKey,
    /// Wall-clock milliseconds the compute took (0 for hits/evicts).
    pub wall_ms: u64,
    /// Worker count the job ran with (0 for evicts).
    pub jobs: u32,
    /// What happened.
    pub kind: RecordKind,
    /// Object size in bytes ([`BYTES_UNKNOWN`] for legacy records).
    pub bytes: u64,
}

impl JournalRecord {
    /// `true` iff this is a hit record.
    pub fn is_hit(&self) -> bool {
        self.kind == RecordKind::Hit
    }

    /// `true` iff this is a miss (insert) record.
    pub fn is_miss(&self) -> bool {
        self.kind == RecordKind::Miss
    }
}

/// Sentinel object size for legacy 21-byte records that predate the
/// `bytes` field; replay recovers the real size from the object file.
pub const BYTES_UNKNOWN: u64 = u64::MAX;

const RECORD_LEN_V1: usize = 8 + 8 + 4 + 1;
const RECORD_LEN: usize = RECORD_LEN_V1 + 8;

/// Decodes every complete record in `journal.log` bytes, in order. A
/// truncated tail (torn final write) is ignored, matching the append-only
/// crash model. Records with an unknown kind byte are skipped (forward
/// compatibility), as are legacy-length records.
pub fn decode_journal(bytes: &[u8]) -> Vec<JournalRecord> {
    let mut records = Vec::new();
    let mut rest = bytes;
    while rest.len() >= 4 {
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if rest.len() < 4 + len || len < RECORD_LEN_V1 {
            break;
        }
        let payload = &rest[4..4 + len];
        rest = &rest[4 + len..];
        let kind = match payload[20] {
            0 => RecordKind::Miss,
            1 => RecordKind::Hit,
            2 => RecordKind::Evict,
            _ => continue,
        };
        let bytes = if len >= RECORD_LEN {
            u64::from_le_bytes(payload[21..29].try_into().unwrap())
        } else {
            BYTES_UNKNOWN
        };
        records.push(JournalRecord {
            key: RunKey(u64::from_le_bytes(payload[..8].try_into().unwrap())),
            wall_ms: u64::from_le_bytes(payload[8..16].try_into().unwrap()),
            jobs: u32::from_le_bytes(payload[16..20].try_into().unwrap()),
            kind,
            bytes,
        });
    }
    records
}

/// Reads and decodes a journal file; an absent file is an empty journal.
pub fn replay_journal(path: &Path) -> std::io::Result<Vec<JournalRecord>> {
    match fs::read(path) {
        Ok(bytes) => Ok(decode_journal(&bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

fn encode_record(record: &JournalRecord) -> [u8; 4 + RECORD_LEN] {
    let mut buf = [0u8; 4 + RECORD_LEN];
    buf[..4].copy_from_slice(&(RECORD_LEN as u32).to_le_bytes());
    buf[4..12].copy_from_slice(&record.key.0.to_le_bytes());
    buf[12..20].copy_from_slice(&record.wall_ms.to_le_bytes());
    buf[20..24].copy_from_slice(&record.jobs.to_le_bytes());
    buf[24] = match record.kind {
        RecordKind::Miss => 0,
        RecordKind::Hit => 1,
        RecordKind::Evict => 2,
    };
    buf[25..33].copy_from_slice(&record.bytes.to_le_bytes());
    buf
}

/// Per-object index entry: size plus the LRU clock value of its most
/// recent touch (insert or journaled hit).
#[derive(Debug, Clone, Copy)]
struct ObjectMeta {
    bytes: u64,
    wall_ms: u64,
    jobs: u32,
    last_touch: u64,
}

#[derive(Debug, Default)]
struct Index {
    map: HashMap<u64, ObjectMeta>,
    /// Monotonic LRU clock; every insert/hit advances it.
    clock: u64,
    total_bytes: u64,
    /// Objects evicted over this store handle's lifetime (replayed evict
    /// records do not count).
    evictions: u64,
}

/// What [`Store::compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionStats {
    /// Journal records before the rewrite.
    pub records_before: usize,
    /// Journal records after (= live objects).
    pub records_after: usize,
    /// Journal file size before, in bytes.
    pub bytes_before: u64,
    /// Journal file size after, in bytes.
    pub bytes_after: u64,
    /// Orphaned object files removed from `objects/`.
    pub orphans_removed: usize,
}

/// The content-addressed store: an on-disk object directory plus the
/// in-memory key index rebuilt from the journal on open. Internally
/// synchronized — share it by reference across connection threads.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    max_bytes: Option<u64>,
    index: RwLock<Index>,
    journal: Mutex<File>,
}

fn object_path_in(dir: &Path, key: RunKey) -> PathBuf {
    dir.join("objects").join(format!("{}.bin", key.hex()))
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir` with no byte
    /// budget and rebuilds the index by replaying `journal.log`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Store> {
        Store::open_with_budget(dir, None)
    }

    /// Opens a store with an optional object-byte budget. When the replay
    /// already exceeds the budget (e.g. the store was written unbounded
    /// and reopened capped), least-recently-used objects are evicted
    /// immediately so the invariant holds from the first request.
    pub fn open_with_budget(
        dir: impl Into<PathBuf>,
        max_bytes: Option<u64>,
    ) -> std::io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("objects"))?;
        let mut index = Index::default();
        for r in replay_journal(&dir.join("journal.log"))? {
            match r.kind {
                RecordKind::Miss => {
                    let bytes = if r.bytes == BYTES_UNKNOWN {
                        // Legacy record: recover the size from disk. An
                        // unreadable object cannot be served, so drop it.
                        match fs::metadata(object_path_in(&dir, r.key)) {
                            Ok(m) => m.len(),
                            Err(_) => continue,
                        }
                    } else {
                        r.bytes
                    };
                    index.clock += 1;
                    let meta = ObjectMeta {
                        bytes,
                        wall_ms: r.wall_ms,
                        jobs: r.jobs,
                        last_touch: index.clock,
                    };
                    if let Some(old) = index.map.insert(r.key.0, meta) {
                        index.total_bytes -= old.bytes;
                    }
                    index.total_bytes += bytes;
                }
                RecordKind::Hit => {
                    if let Some(meta) = index.map.get_mut(&r.key.0) {
                        index.clock += 1;
                        meta.last_touch = index.clock;
                    }
                }
                RecordKind::Evict => {
                    if let Some(old) = index.map.remove(&r.key.0) {
                        index.total_bytes -= old.bytes;
                    }
                }
            }
        }
        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("journal.log"))?;
        let store = Store {
            dir,
            max_bytes,
            index: RwLock::new(index),
            journal: Mutex::new(journal),
        };
        // A freshly capped (or re-capped) store may replay over budget.
        let evicted = {
            let mut index = store.index.write().unwrap();
            let mut journal = store.journal.lock().unwrap();
            store.evict_over_budget(&mut index, &mut journal)?
        };
        store.remove_object_files(&evicted);
        Ok(store)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the journal file.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal.log")
    }

    /// Path of the object holding `key`'s payload.
    pub fn object_path(&self, key: RunKey) -> PathBuf {
        object_path_in(&self.dir, key)
    }

    /// The configured object-byte budget, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Total bytes across all live objects.
    pub fn total_bytes(&self) -> u64 {
        self.index.read().unwrap().total_bytes
    }

    /// Objects evicted by this store handle (budget enforcement).
    pub fn evictions(&self) -> u64 {
        self.index.read().unwrap().evictions
    }

    /// Number of addressable objects.
    pub fn len(&self) -> usize {
        self.index.read().unwrap().map.len()
    }

    /// `true` iff no object is addressable.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All addressable keys, sorted.
    pub fn keys(&self) -> Vec<RunKey> {
        let mut keys: Vec<RunKey> = self
            .index
            .read()
            .unwrap()
            .map
            .keys()
            .copied()
            .map(RunKey)
            .collect();
        keys.sort();
        keys
    }

    /// All addressable keys in recency order, least recently used first —
    /// the order eviction would take them.
    pub fn keys_by_recency(&self) -> Vec<RunKey> {
        let index = self.index.read().unwrap();
        let mut entries: Vec<(u64, u64)> =
            index.map.iter().map(|(&k, m)| (m.last_touch, k)).collect();
        entries.sort_unstable();
        entries.into_iter().map(|(_, k)| RunKey(k)).collect()
    }

    /// `true` iff `key` is addressable.
    pub fn contains(&self, key: RunKey) -> bool {
        self.index.read().unwrap().map.contains_key(&key.0)
    }

    /// Reads `key`'s payload, or `None` if it was never inserted (or has
    /// been evicted). Does **not** journal — pair with
    /// [`Store::record_hit`] when the read answers a job. Takes only the
    /// read lock, so any number of hits are served concurrently.
    pub fn get(&self, key: RunKey) -> Option<Vec<u8>> {
        if !self.contains(key) {
            return None;
        }
        // File read outside the lock: a concurrent eviction turns this
        // into a clean miss (open fails), never a torn read.
        let mut buf = Vec::new();
        File::open(self.object_path(key))
            .and_then(|mut f| f.read_to_end(&mut buf))
            .ok()?;
        Some(buf)
    }

    /// Inserts `key → payload`, appends a **miss** record to the journal
    /// (object first, record second: a key the journal names is always
    /// readable), then evicts LRU objects until the byte budget holds.
    pub fn insert(
        &self,
        key: RunKey,
        payload: &[u8],
        wall_ms: u64,
        jobs: u32,
    ) -> std::io::Result<()> {
        fs::write(self.object_path(key), payload)?;
        let bytes = payload.len() as u64;
        let evicted = {
            let mut index = self.index.write().unwrap();
            let mut journal = self.journal.lock().unwrap();
            journal.write_all(&encode_record(&JournalRecord {
                key,
                wall_ms,
                jobs,
                kind: RecordKind::Miss,
                bytes,
            }))?;
            journal.flush()?;
            index.clock += 1;
            let meta = ObjectMeta {
                bytes,
                wall_ms,
                jobs,
                last_touch: index.clock,
            };
            if let Some(old) = index.map.insert(key.0, meta) {
                index.total_bytes -= old.bytes;
            }
            index.total_bytes += bytes;
            self.evict_over_budget(&mut index, &mut journal)?
        };
        self.remove_object_files(&evicted);
        Ok(())
    }

    /// Appends a **hit** record (`key` was served from the store) and
    /// promotes the object to most-recently-used.
    pub fn record_hit(&self, key: RunKey, jobs: u32) -> std::io::Result<()> {
        let mut index = self.index.write().unwrap();
        if index.map.contains_key(&key.0) {
            index.clock += 1;
            let touch = index.clock;
            index.map.get_mut(&key.0).unwrap().last_touch = touch;
        }
        let mut journal = self.journal.lock().unwrap();
        journal.write_all(&encode_record(&JournalRecord {
            key,
            wall_ms: 0,
            jobs,
            kind: RecordKind::Hit,
            bytes: 0,
        }))?;
        journal.flush()
    }

    /// Evicts least-recently-used objects until `total_bytes` is within
    /// budget, journaling one evict record each. Returns the evicted keys
    /// (their files are removed by the caller, outside the locks).
    fn evict_over_budget(
        &self,
        index: &mut Index,
        journal: &mut File,
    ) -> std::io::Result<Vec<RunKey>> {
        let Some(budget) = self.max_bytes else {
            return Ok(Vec::new());
        };
        let mut evicted = Vec::new();
        while index.total_bytes > budget {
            let Some((&key, &meta)) = index.map.iter().min_by_key(|(_, m)| m.last_touch) else {
                break;
            };
            journal.write_all(&encode_record(&JournalRecord {
                key: RunKey(key),
                wall_ms: 0,
                jobs: 0,
                kind: RecordKind::Evict,
                bytes: meta.bytes,
            }))?;
            index.map.remove(&key);
            index.total_bytes -= meta.bytes;
            index.evictions += 1;
            evicted.push(RunKey(key));
        }
        if !evicted.is_empty() {
            journal.flush()?;
        }
        Ok(evicted)
    }

    fn remove_object_files(&self, keys: &[RunKey]) {
        for &key in keys {
            let _ = fs::remove_file(self.object_path(key));
        }
    }

    /// Rewrites the journal to live records only: one miss record per
    /// addressable object, emitted in LRU→MRU order so a replay
    /// reconstructs both the index *and* its recency order — compaction
    /// is replay-equivalent by construction. Also sweeps object files the
    /// index no longer names (evicted or superseded). The rewrite is
    /// atomic (temp file + rename); both locks are held throughout.
    pub fn compact(&self) -> std::io::Result<CompactionStats> {
        let mut index = self.index.write().unwrap();
        let mut journal = self.journal.lock().unwrap();
        let path = self.journal_path();
        let old = fs::read(&path)?;
        let records_before = decode_journal(&old).len();
        let bytes_before = old.len() as u64;

        let mut entries: Vec<(u64, ObjectMeta)> = index.map.iter().map(|(&k, &m)| (k, m)).collect();
        entries.sort_unstable_by_key(|(_, m)| m.last_touch);
        let mut buf = Vec::with_capacity(entries.len() * (4 + RECORD_LEN));
        for (i, (key, meta)) in entries.iter_mut().enumerate() {
            meta.last_touch = (i + 1) as u64;
            buf.extend_from_slice(&encode_record(&JournalRecord {
                key: RunKey(*key),
                wall_ms: meta.wall_ms,
                jobs: meta.jobs,
                kind: RecordKind::Miss,
                bytes: meta.bytes,
            }));
        }
        let tmp = self.dir.join("journal.log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        *journal = OpenOptions::new().append(true).open(&path)?;
        index.clock = entries.len() as u64;
        for (key, meta) in &entries {
            index.map.insert(*key, *meta);
        }

        // Orphan sweep: object files the index no longer names.
        let mut orphans_removed = 0usize;
        if let Ok(dirents) = fs::read_dir(self.dir.join("objects")) {
            for entry in dirents.flatten() {
                let name = entry.file_name();
                let live = name
                    .to_str()
                    .and_then(|s| s.strip_suffix(".bin"))
                    .and_then(RunKey::from_hex)
                    .is_some_and(|k| index.map.contains_key(&k.0));
                if !live && fs::remove_file(entry.path()).is_ok() {
                    orphans_removed += 1;
                }
            }
        }
        Ok(CompactionStats {
            records_before,
            records_after: entries.len(),
            bytes_before,
            bytes_after: buf.len() as u64,
            orphans_removed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iabc-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn insert_get_roundtrip_and_reopen() {
        let dir = temp_dir("roundtrip");
        let key = RunKey(0xdead_beef_0123_4567);
        {
            let store = Store::open(&dir).unwrap();
            assert!(store.get(key).is_none());
            store.insert(key, b"payload-bytes", 12, 4).unwrap();
            assert_eq!(store.get(key).unwrap(), b"payload-bytes");
            assert_eq!(store.total_bytes(), 13);
        }
        // Reopen: the journal replay rebuilds the index.
        let store = Store::open(&dir).unwrap();
        assert!(store.contains(key));
        assert_eq!(store.get(key).unwrap(), b"payload-bytes");
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 13);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_orders_miss_then_hit() {
        let dir = temp_dir("order");
        let key = RunKey(42);
        let store = Store::open(&dir).unwrap();
        store.insert(key, b"x", 5, 1).unwrap();
        store.record_hit(key, 1).unwrap();
        let records = replay_journal(&store.journal_path()).unwrap();
        assert_eq!(records.len(), 2);
        assert!(records[0].is_miss(), "first record must be the miss");
        assert!(records[1].is_hit(), "second record must be the hit");
        assert_eq!(records[0].key, key);
        assert_eq!(records[1].key, key);
        assert_eq!(records[0].wall_ms, 5);
        assert_eq!(records[0].bytes, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = temp_dir("torn");
        let key = RunKey(7);
        let store = Store::open(&dir).unwrap();
        store.insert(key, b"x", 1, 1).unwrap();
        drop(store);
        // Append half a record.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join("journal.log"))
            .unwrap();
        f.write_all(&[29, 0, 0, 0, 1, 2, 3]).unwrap();
        drop(f);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.contains(key));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_21_byte_records_replay_via_stat() {
        let dir = temp_dir("legacy");
        let key = RunKey(0xabc);
        fs::create_dir_all(dir.join("objects")).unwrap();
        fs::write(object_path_in(&dir, key), b"old-payload").unwrap();
        // Hand-craft a legacy miss record (21-byte payload, no bytes field).
        let mut rec = Vec::new();
        rec.extend_from_slice(&21u32.to_le_bytes());
        rec.extend_from_slice(&key.0.to_le_bytes());
        rec.extend_from_slice(&9u64.to_le_bytes());
        rec.extend_from_slice(&2u32.to_le_bytes());
        rec.push(0);
        fs::write(dir.join("journal.log"), &rec).unwrap();
        let store = Store::open(&dir).unwrap();
        assert!(store.contains(key));
        assert_eq!(
            store.total_bytes(),
            11,
            "size recovered from the object file"
        );
        assert_eq!(store.get(key).unwrap(), b"old-payload");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_respects_budget_and_replays() {
        let dir = temp_dir("evict");
        let store = Store::open_with_budget(&dir, Some(10)).unwrap();
        let (a, b, c) = (RunKey(1), RunKey(2), RunKey(3));
        store.insert(a, b"aaaa", 0, 1).unwrap(); // 4 bytes
        store.insert(b, b"bbbb", 0, 1).unwrap(); // 8 total
                                                 // Touch `a` so `b` becomes the LRU victim.
        store.record_hit(a, 1).unwrap();
        store.insert(c, b"cccc", 0, 1).unwrap(); // 12 > 10 → evict b
        assert!(store.total_bytes() <= 10, "budget is a hard invariant");
        assert!(store.contains(a) && store.contains(c));
        assert!(!store.contains(b), "LRU object evicted");
        assert!(store.get(b).is_none());
        assert!(!store.object_path(b).exists(), "evicted file removed");
        assert_eq!(store.evictions(), 1);
        drop(store);
        // Replay reconstructs the post-eviction index exactly.
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.keys(), vec![a, c]);
        assert_eq!(store.total_bytes(), 8);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hit_records_preserve_recency_across_reopen() {
        let dir = temp_dir("recency");
        let (a, b) = (RunKey(1), RunKey(2));
        {
            let store = Store::open(&dir).unwrap();
            store.insert(a, b"aaaa", 0, 1).unwrap();
            store.insert(b, b"bbbb", 0, 1).unwrap();
            store.record_hit(a, 1).unwrap();
            assert_eq!(store.keys_by_recency(), vec![b, a]);
        }
        // Reopen with a budget that forces one eviction on the next
        // insert: the replayed hit must protect `a`.
        let store = Store::open_with_budget(&dir, Some(10)).unwrap();
        assert_eq!(store.keys_by_recency(), vec![b, a]);
        store.insert(RunKey(3), b"cccc", 0, 1).unwrap();
        assert!(store.contains(a), "hit-promoted object survives");
        assert!(!store.contains(b), "stale object evicted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_is_replay_equivalent() {
        let dir = temp_dir("compact");
        let store = Store::open(&dir).unwrap();
        let keys: Vec<RunKey> = (1..=4).map(RunKey).collect();
        for (i, &k) in keys.iter().enumerate() {
            store
                .insert(k, format!("payload-{i}").as_bytes(), i as u64, 1)
                .unwrap();
        }
        // Interleave hits so recency order differs from insert order.
        store.record_hit(keys[0], 1).unwrap();
        store.record_hit(keys[2], 1).unwrap();
        let recency = store.keys_by_recency();
        let payloads: Vec<Vec<u8>> = keys.iter().map(|&k| store.get(k).unwrap()).collect();
        // Drop an orphan file the index does not name.
        fs::write(object_path_in(&dir, RunKey(0x999)), b"orphan").unwrap();

        let stats = store.compact().unwrap();
        assert_eq!(stats.records_before, 6);
        assert_eq!(stats.records_after, 4);
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(stats.orphans_removed, 1);

        // Same index, same payloads, same recency — before and after
        // reopen.
        assert_eq!(store.keys_by_recency(), recency);
        for (k, p) in keys.iter().zip(&payloads) {
            assert_eq!(&store.get(*k).unwrap(), p);
        }
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.keys_by_recency(), recency);
        for (k, p) in keys.iter().zip(&payloads) {
            assert_eq!(&store.get(*k).unwrap(), p);
        }
        // The compacted journal holds exactly one miss per live key.
        let records = replay_journal(&store.journal_path()).unwrap();
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.is_miss()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hex_roundtrip() {
        let key = RunKey(0x0123_4567_89ab_cdef);
        assert_eq!(key.hex(), "0123456789abcdef");
        assert_eq!(RunKey::from_hex(&key.hex()), Some(key));
        assert_eq!(RunKey::from_hex("xyz"), None);
        assert_eq!(RunKey::from_hex("0123"), None);
    }
}
