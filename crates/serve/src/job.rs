//! Job specifications, the canonical run-key schema, and job execution.
//!
//! A [`JobSpec`] is everything the daemon needs to (re)produce a result:
//! either one scenario run or one experiment sweep. Its [`JobSpec::key`]
//! folds every ingredient that can change a single output bit into one
//! FNV-1a fingerprint — `(topology, fault set, adversary family + params,
//! rule, seed, engine kind, RunConfig)` for scenarios, the resolved
//! experiment-id list for sweeps — via the workspace's canonical
//! [`iabc_graph::fingerprint`] hasher. Because every engine is bit-for-bit
//! deterministic at any job count, equal keys imply byte-identical
//! payloads, which is the entire cache-correctness argument.

use crate::json::Json;
use crate::store::RunKey;
use crate::ServeError;
use iabc_analysis::experiments::ExperimentResult;
use iabc_analysis::sweep::is_known_experiment_id;
use iabc_analysis::table::Table;
use iabc_baselines::{DolevMidpoint, DolevSelectMean, Wmsr};
use iabc_core::quantized::{QuantizedTrimmedMean, Rounding};
use iabc_core::rules::{Mean, TrimmedMean, TrimmedMidpoint, UpdateRule};
use iabc_graph::fingerprint::Fnv64;
use iabc_graph::{fingerprint, parse, CompiledTopology, NodeSet};
use iabc_sim::adversary::{
    Adversary, ConformingAdversary, ConstantAdversary, CrashAdversary, EchoAdversary,
    ExtremesAdversary, FlipFlopAdversary, NaNAdversary, PolarizingAdversary, PullAdversary,
    RandomAdversary,
};
use iabc_sim::async_engine::{ImmediateScheduler, MaxDelayScheduler, RandomScheduler, Scheduler};
use iabc_sim::wire::{encode_outcome, hash_run_config};
use iabc_sim::{RunConfig, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Version tag folded into every key, bumped when the key schema or any
/// payload encoding changes so stale stores can never alias fresh runs.
pub const KEY_SCHEMA_VERSION: u32 = 1;

/// How a scenario's inputs are obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum InputSpec {
    /// Explicit per-node values.
    Explicit(Vec<f64>),
    /// `StdRng::seed_from_u64(seed)` uniform draws from `[0, 100)` — the
    /// same derivation `iabc simulate` uses.
    Seeded(u64),
}

/// Which engine executes a scenario job. The engine kind has been part of
/// the key schema since PR 7 (`"synchronous"` was hard-wired); this enum
/// fills the slot without moving any existing key.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum EngineSpec {
    /// The synchronous round engine (the default).
    #[default]
    Synchronous,
    /// The §7 partially-asynchronous engine: per-edge mailboxes with
    /// message delays `< bound` chosen by a named scheduler.
    DelayBounded {
        /// The delay bound `B` (every delay is `< B`).
        bound: usize,
        /// Scheduler name: `immediate`, `max`, or `random`.
        scheduler: String,
        /// Seed for the `random` scheduler (ignored by the others but
        /// still folded into the key — over-splitting is always safe).
        sched_seed: u64,
    },
}

/// Resolves a delay-bounded scheduler name for job execution. The
/// `targeted` scheduler is deliberately not supported here: its victim
/// set would have to travel in the job, and no experiment regenerates
/// through it.
pub fn engine_scheduler_by_name(name: &str, seed: u64) -> Result<Box<dyn Scheduler>, ServeError> {
    Ok(match name {
        "immediate" => Box::new(ImmediateScheduler),
        "max" => Box::new(MaxDelayScheduler),
        "random" => Box::new(RandomScheduler::new(seed)),
        other => {
            return Err(ServeError::Job(format!(
                "unknown scheduler {other:?} (try immediate, max, random)"
            )))
        }
    })
}

/// One scenario run: a chosen engine on a parsed edge-list graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The topology, as `iabc_graph::parse` edge-list text.
    pub graph: String,
    /// Indices of the Byzantine nodes.
    pub faulty: Vec<usize>,
    /// The fault bound `f` the update rule trims for.
    pub f: usize,
    /// Rule name (`trimmed-mean`, `mean`, `midpoint`, `w-msr`,
    /// `dolev-midpoint`, `dolev-select-mean`, `quantized`).
    pub rule: String,
    /// Quantum for the `quantized` rule (ignored otherwise).
    pub quantum: Option<f64>,
    /// Adversary family name (the `iabc simulate --adversary` names).
    pub adversary: String,
    /// Seed for seeded adversaries (`random`) and seeded inputs.
    pub seed: u64,
    /// Input derivation.
    pub inputs: InputSpec,
    /// Convergence threshold.
    pub epsilon: f64,
    /// Round cap.
    pub max_rounds: usize,
    /// Which engine runs the scenario.
    pub engine: EngineSpec,
}

/// A submittable job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// One synchronous-engine scenario run.
    Scenario(ScenarioSpec),
    /// An experiment sweep over the given ids (empty = all of E1–E12).
    Sweep {
        /// Requested experiment ids (case-insensitive).
        ids: Vec<String>,
    },
}

impl ScenarioSpec {
    fn resolve_inputs(&self, n: usize) -> Result<Vec<f64>, ServeError> {
        match &self.inputs {
            InputSpec::Explicit(values) => {
                if values.len() != n {
                    return Err(ServeError::Job(format!(
                        "{} inputs for {n} nodes",
                        values.len()
                    )));
                }
                Ok(values.clone())
            }
            InputSpec::Seeded(seed) => {
                let mut rng = StdRng::seed_from_u64(*seed);
                Ok((0..n).map(|_| rng.random_range(0.0..100.0)).collect())
            }
        }
    }

    fn resolve_rule(&self) -> Result<Box<dyn UpdateRule>, ServeError> {
        rule_by_name(&self.rule, self.f, self.quantum)
    }

    /// Folds every output-determining ingredient into `h`. The schema is
    /// the ISSUE-specified tuple; inputs are folded as resolved bit
    /// patterns so explicit and seeded derivations can never alias.
    fn hash(&self, h: &mut Fnv64) -> Result<(), ServeError> {
        let g = parse::parse_edge_list(&self.graph)
            .map_err(|e| ServeError::Job(format!("bad graph: {e}")))?;
        let n = g.node_count();
        let faults = NodeSet::from_indices(n, self.faulty.iter().copied());
        let topo = CompiledTopology::compile(&g, &faults);
        h.write_str("scenario");
        h.write_u64(fingerprint::topology(&topo));
        h.write_u64(fingerprint::fault_set(&faults));
        h.write_str(&self.adversary);
        h.write_u64(self.seed);
        h.write_str(&self.rule);
        h.write_usize(self.f);
        h.write_u64(self.quantum.unwrap_or(0.0).to_bits());
        // Engine kind: the synchronous string is unchanged from PR 7, so
        // every pre-existing key still addresses the same object.
        match &self.engine {
            EngineSpec::Synchronous => {
                h.write_str("synchronous");
            }
            EngineSpec::DelayBounded {
                bound,
                scheduler,
                sched_seed,
            } => {
                h.write_str("delay-bounded");
                h.write_usize(*bound);
                h.write_str(scheduler);
                h.write_u64(*sched_seed);
            }
        }
        hash_run_config(h, &self.run_config());
        let inputs = self.resolve_inputs(n)?;
        h.write_usize(inputs.len());
        for v in inputs {
            h.write_f64_bits(v);
        }
        Ok(())
    }

    fn run_config(&self) -> RunConfig {
        RunConfig {
            record_states: false,
            epsilon: self.epsilon,
            max_rounds: self.max_rounds,
        }
    }

    /// Runs the scenario and returns the `IABCOUT1` payload bytes.
    pub fn execute(&self) -> Result<Vec<u8>, ServeError> {
        let g = parse::parse_edge_list(&self.graph)
            .map_err(|e| ServeError::Job(format!("bad graph: {e}")))?;
        let n = g.node_count();
        for &node in &self.faulty {
            if node >= n {
                return Err(ServeError::Job(format!("faulty node {node} >= n = {n}")));
            }
        }
        let faults = NodeSet::from_indices(n, self.faulty.iter().copied());
        let inputs = self.resolve_inputs(n)?;
        let rule = self.resolve_rule()?;
        let adversary = adversary_by_name(&self.adversary, self.seed)?;
        let scenario = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults)
            .rule(rule.as_ref())
            .adversary(adversary);
        match &self.engine {
            EngineSpec::Synchronous => {
                let mut sim = scenario
                    .synchronous()
                    .map_err(|e| ServeError::Job(e.to_string()))?;
                let outcome = sim
                    .run(&self.run_config())
                    .map_err(|e| ServeError::Job(e.to_string()))?;
                Ok(encode_outcome(&outcome, sim.states()))
            }
            EngineSpec::DelayBounded {
                bound,
                scheduler,
                sched_seed,
            } => {
                let scheduler = engine_scheduler_by_name(scheduler, *sched_seed)?;
                let mut sim = scenario
                    .delay_bounded(scheduler, *bound)
                    .map_err(|e| ServeError::Job(e.to_string()))?;
                let outcome = sim
                    .run(&self.run_config())
                    .map_err(|e| ServeError::Job(e.to_string()))?;
                Ok(encode_outcome(&outcome, sim.states()))
            }
        }
    }
}

impl JobSpec {
    /// The job's content address under the canonical key schema.
    pub fn key(&self) -> Result<RunKey, ServeError> {
        let mut h = Fnv64::new();
        h.write_u32(KEY_SCHEMA_VERSION);
        match self {
            JobSpec::Scenario(spec) => spec.hash(&mut h)?,
            JobSpec::Sweep { ids } => {
                h.write_str("sweep-experiments");
                for id in resolve_experiment_ids(ids)? {
                    h.write_str(&id);
                }
            }
        }
        Ok(RunKey(h.finish()))
    }

    /// Renders to the wire JSON (`job` member of a submit request).
    pub fn to_json(&self) -> Json {
        match self {
            JobSpec::Sweep { ids } => Json::obj([
                ("kind", Json::Str("sweep".into())),
                (
                    "ids",
                    Json::Arr(ids.iter().map(|id| Json::Str(id.clone())).collect()),
                ),
            ]),
            JobSpec::Scenario(spec) => {
                let mut pairs = vec![
                    ("kind", Json::Str("scenario".into())),
                    ("graph", Json::Str(spec.graph.clone())),
                    (
                        "faulty",
                        Json::Arr(spec.faulty.iter().map(|&v| Json::Num(v as f64)).collect()),
                    ),
                    ("f", Json::Num(spec.f as f64)),
                    ("rule", Json::Str(spec.rule.clone())),
                    ("adversary", Json::Str(spec.adversary.clone())),
                    ("seed", Json::u64(spec.seed)),
                    ("epsilon", Json::Num(spec.epsilon)),
                    ("max_rounds", Json::Num(spec.max_rounds as f64)),
                ];
                if let Some(q) = spec.quantum {
                    pairs.push(("quantum", Json::Num(q)));
                }
                // Synchronous jobs omit the engine fields entirely, so
                // PR 7 clients and stored request logs stay readable.
                if let EngineSpec::DelayBounded {
                    bound,
                    scheduler,
                    sched_seed,
                } = &spec.engine
                {
                    pairs.push(("engine", Json::Str("delay-bounded".into())));
                    pairs.push(("delay_bound", Json::Num(*bound as f64)));
                    pairs.push(("scheduler", Json::Str(scheduler.clone())));
                    pairs.push(("sched_seed", Json::u64(*sched_seed)));
                }
                match &spec.inputs {
                    InputSpec::Explicit(values) => pairs.push((
                        "inputs",
                        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect()),
                    )),
                    InputSpec::Seeded(seed) => pairs.push(("input_seed", Json::u64(*seed))),
                }
                Json::obj(pairs)
            }
        }
    }

    /// Parses the wire JSON form.
    pub fn from_json(json: &Json) -> Result<JobSpec, ServeError> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::Protocol("job missing \"kind\"".into()))?;
        match kind {
            "sweep" => {
                let ids = match json.get("ids") {
                    None | Some(Json::Null) => Vec::new(),
                    Some(v) => v
                        .as_arr()
                        .ok_or_else(|| ServeError::Protocol("\"ids\" must be an array".into()))?
                        .iter()
                        .map(|id| {
                            id.as_str()
                                .map(str::to_string)
                                .ok_or_else(|| ServeError::Protocol("non-string id".into()))
                        })
                        .collect::<Result<_, _>>()?,
                };
                Ok(JobSpec::Sweep { ids })
            }
            "scenario" => {
                let str_field = |name: &str| -> Result<String, ServeError> {
                    json.get(name)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or_else(|| ServeError::Protocol(format!("scenario missing \"{name}\"")))
                };
                let inputs = if let Some(values) = json.get("inputs") {
                    InputSpec::Explicit(
                        values
                            .as_arr()
                            .ok_or_else(|| {
                                ServeError::Protocol("\"inputs\" must be an array".into())
                            })?
                            .iter()
                            .map(|v| {
                                v.as_f64()
                                    .ok_or_else(|| ServeError::Protocol("non-numeric input".into()))
                            })
                            .collect::<Result<_, _>>()?,
                    )
                } else {
                    InputSpec::Seeded(json.get("input_seed").and_then(Json::as_u64).unwrap_or(0))
                };
                let engine = match json.get("engine").and_then(Json::as_str) {
                    None | Some("synchronous") => EngineSpec::Synchronous,
                    Some("delay-bounded") => EngineSpec::DelayBounded {
                        bound: json
                            .get("delay_bound")
                            .and_then(Json::as_usize)
                            .ok_or_else(|| {
                                ServeError::Protocol(
                                    "delay-bounded engine needs \"delay_bound\"".into(),
                                )
                            })?,
                        scheduler: json
                            .get("scheduler")
                            .and_then(Json::as_str)
                            .unwrap_or("max")
                            .to_string(),
                        sched_seed: json.get("sched_seed").and_then(Json::as_u64).unwrap_or(0),
                    },
                    Some(other) => {
                        return Err(ServeError::Protocol(format!(
                            "unknown engine {other:?} (try synchronous, delay-bounded)"
                        )))
                    }
                };
                Ok(JobSpec::Scenario(ScenarioSpec {
                    graph: str_field("graph")?,
                    faulty: json
                        .get("faulty")
                        .and_then(Json::as_arr)
                        .unwrap_or(&[])
                        .iter()
                        .map(|v| {
                            v.as_usize()
                                .ok_or_else(|| ServeError::Protocol("bad faulty index".into()))
                        })
                        .collect::<Result<_, _>>()?,
                    f: json
                        .get("f")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| ServeError::Protocol("scenario missing \"f\"".into()))?,
                    rule: str_field("rule")?,
                    quantum: json.get("quantum").and_then(Json::as_f64),
                    adversary: str_field("adversary")?,
                    seed: json.get("seed").and_then(Json::as_u64).unwrap_or(0),
                    inputs,
                    epsilon: json.get("epsilon").and_then(Json::as_f64).unwrap_or(1e-6),
                    max_rounds: json
                        .get("max_rounds")
                        .and_then(Json::as_usize)
                        .unwrap_or(10_000),
                    engine,
                }))
            }
            other => Err(ServeError::Protocol(format!("unknown job kind {other:?}"))),
        }
    }
}

/// Validates and canonicalizes a requested experiment-id list: ids are
/// upper-cased and kept in the caller's order (the sweep runner itself
/// reorders to paper order; the *request* order is part of the key only
/// through this canonical form, so `e1,e2` and `E2,E1` share a key).
pub fn resolve_experiment_ids(ids: &[String]) -> Result<Vec<String>, ServeError> {
    let mut resolved: Vec<String> = Vec::new();
    for id in ids {
        if !is_known_experiment_id(id) {
            return Err(ServeError::Job(format!(
                "unknown experiment id {id:?} (valid: E1..E12, X1..X13)"
            )));
        }
        let canon = id.to_ascii_uppercase();
        if !resolved.contains(&canon) {
            resolved.push(canon);
        }
    }
    // Registry order (E1–E12 then X1–X13); for all-E lists this is the
    // same numeric order PR 7 hashed, so existing sweep keys are stable.
    resolved
        .sort_by_key(|id| iabc_analysis::sweep::experiment_id_position(id).unwrap_or(usize::MAX));
    Ok(resolved)
}

/// The run key of one experiment *cell* (the in-process memo path for
/// `iabc sweep experiments --store`). Shares [`KEY_SCHEMA_VERSION`] with
/// job-level keys but a distinct domain tag.
pub fn experiment_cell_key(label: &str) -> RunKey {
    let mut h = Fnv64::new();
    h.write_u32(KEY_SCHEMA_VERSION);
    h.write_str("experiment-cell");
    h.write_str(label);
    RunKey(h.finish())
}

/// Resolves an adversary name exactly as `iabc simulate` does.
pub fn adversary_by_name(name: &str, seed: u64) -> Result<Box<dyn Adversary>, ServeError> {
    Ok(match name {
        "conforming" => Box::new(ConformingAdversary::new()),
        "constant" => Box::new(ConstantAdversary::new(1e9)),
        "random" => Box::new(RandomAdversary::new(-1e6, 1e6, seed)),
        "extremes" => Box::new(ExtremesAdversary::new(1e6)),
        "pull-low" => Box::new(PullAdversary::new(false)),
        "pull-high" => Box::new(PullAdversary::new(true)),
        "crash" => Box::new(CrashAdversary::new(2)),
        "flip-flop" => Box::new(FlipFlopAdversary::new(1e6)),
        "polarizing" => Box::new(PolarizingAdversary::new()),
        "echo" => Box::new(EchoAdversary::new()),
        "nan" => Box::new(NaNAdversary::new()),
        other => {
            return Err(ServeError::Job(format!(
                "unknown adversary {other:?} (try conforming, constant, random, extremes, \
                 pull-low, pull-high, crash, flip-flop, polarizing, echo, nan)"
            )))
        }
    })
}

/// Resolves a rule name exactly as `iabc simulate` does (the `quantized`
/// rule takes its quantum from the spec instead of a CLI flag).
pub fn rule_by_name(
    name: &str,
    f: usize,
    quantum: Option<f64>,
) -> Result<Box<dyn UpdateRule>, ServeError> {
    Ok(match name {
        "trimmed-mean" => Box::new(TrimmedMean::new(f)),
        "mean" => Box::new(Mean::new()),
        "midpoint" => Box::new(TrimmedMidpoint::new(f)),
        "w-msr" => Box::new(Wmsr::new(f)),
        "dolev-midpoint" => Box::new(DolevMidpoint::new(f)),
        "dolev-select-mean" => Box::new(DolevSelectMean::new(f)),
        "quantized" => {
            let quantum =
                quantum.ok_or_else(|| ServeError::Job("quantized rule needs a quantum".into()))?;
            Box::new(
                QuantizedTrimmedMean::new(f, quantum, Rounding::Nearest)
                    .map_err(|e| ServeError::Job(e.to_string()))?,
            )
        }
        other => {
            return Err(ServeError::Job(format!(
                "unknown rule {other:?} (try trimmed-mean, mean, midpoint, w-msr, \
                 dolev-midpoint, dolev-select-mean, quantized)"
            )))
        }
    })
}

// ---------------------------------------------------------------------------
// Experiment payload encoding (`IABCEXP1`)
// ---------------------------------------------------------------------------

const EXP_MAGIC: &[u8; 8] = b"IABCEXP1";

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_strs(buf: &mut Vec<u8>, items: &[String]) {
    buf.extend_from_slice(&(items.len() as u32).to_le_bytes());
    for s in items {
        put_str(buf, s);
    }
}

/// Serializes one [`ExperimentResult`] losslessly (id, title, verdict,
/// notes, artifacts, table headers + rows).
pub fn encode_experiment(result: &ExperimentResult) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(EXP_MAGIC);
    put_str(&mut buf, &result.id);
    put_str(&mut buf, &result.title);
    buf.push(u8::from(result.pass));
    put_strs(&mut buf, &result.notes);
    buf.extend_from_slice(&(result.artifacts.len() as u32).to_le_bytes());
    for (name, content) in &result.artifacts {
        put_str(&mut buf, name);
        put_str(&mut buf, content);
    }
    put_strs(&mut buf, result.table.headers());
    buf.extend_from_slice(&(result.table.rows().len() as u32).to_le_bytes());
    for row in result.table.rows() {
        put_strs(&mut buf, row);
    }
    buf
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, ServeError> {
    if buf.len() < 4 {
        return Err(ServeError::Job("experiment payload truncated".into()));
    }
    let (head, tail) = buf.split_at(4);
    *buf = tail;
    Ok(u32::from_le_bytes(head.try_into().unwrap()))
}

fn get_str(buf: &mut &[u8]) -> Result<String, ServeError> {
    let len = get_u32(buf)? as usize;
    if buf.len() < len {
        return Err(ServeError::Job("experiment payload truncated".into()));
    }
    let (head, tail) = buf.split_at(len);
    *buf = tail;
    String::from_utf8(head.to_vec())
        .map_err(|_| ServeError::Job("experiment payload not UTF-8".into()))
}

fn get_strs(buf: &mut &[u8]) -> Result<Vec<String>, ServeError> {
    let count = get_u32(buf)? as usize;
    (0..count).map(|_| get_str(buf)).collect()
}

/// Inverse of [`encode_experiment`].
pub fn decode_experiment(mut buf: &[u8]) -> Result<ExperimentResult, ServeError> {
    if buf.len() < 8 || &buf[..8] != EXP_MAGIC {
        return Err(ServeError::Job("bad experiment payload magic".into()));
    }
    buf = &buf[8..];
    let id = get_str(&mut buf)?;
    let title = get_str(&mut buf)?;
    if buf.is_empty() {
        return Err(ServeError::Job("experiment payload truncated".into()));
    }
    let pass = buf[0] != 0;
    buf = &buf[1..];
    let notes = get_strs(&mut buf)?;
    let artifact_count = get_u32(&mut buf)? as usize;
    let mut artifacts = Vec::with_capacity(artifact_count);
    for _ in 0..artifact_count {
        let name = get_str(&mut buf)?;
        let content = get_str(&mut buf)?;
        artifacts.push((name, content));
    }
    let headers = get_strs(&mut buf)?;
    let row_count = get_u32(&mut buf)? as usize;
    let mut table = Table::new(headers);
    for _ in 0..row_count {
        table.row(get_strs(&mut buf)?);
    }
    Ok(ExperimentResult {
        id,
        title,
        table,
        notes,
        artifacts,
        pass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_scenario() -> ScenarioSpec {
        ScenarioSpec {
            graph: "3\n0 1\n1 0\n0 2\n2 0\n1 2\n2 1\n".into(),
            faulty: vec![2],
            f: 0,
            rule: "mean".into(),
            quantum: None,
            adversary: "constant".into(),
            seed: 7,
            inputs: InputSpec::Seeded(7),
            epsilon: 1e-6,
            max_rounds: 100,
            engine: EngineSpec::Synchronous,
        }
    }

    fn delay_bounded(scheduler: &str, bound: usize, sched_seed: u64) -> EngineSpec {
        EngineSpec::DelayBounded {
            bound,
            scheduler: scheduler.into(),
            sched_seed,
        }
    }

    #[test]
    fn job_json_roundtrips() {
        let jobs = [
            JobSpec::Sweep {
                ids: vec!["E1".into(), "E3".into()],
            },
            JobSpec::Scenario(sample_scenario()),
            JobSpec::Scenario(ScenarioSpec {
                inputs: InputSpec::Explicit(vec![1.0, 2.5, 3.75]),
                quantum: Some(0.5),
                rule: "quantized".into(),
                ..sample_scenario()
            }),
            JobSpec::Scenario(ScenarioSpec {
                engine: delay_bounded("random", 3, 11),
                ..sample_scenario()
            }),
        ];
        for job in jobs {
            let back =
                JobSpec::from_json(&crate::json::parse(&job.to_json().render()).unwrap()).unwrap();
            assert_eq!(back, job);
            assert_eq!(back.key().unwrap(), job.key().unwrap());
        }
    }

    #[test]
    fn keys_separate_every_ingredient() {
        let base = sample_scenario();
        let base_key = JobSpec::Scenario(base.clone()).key().unwrap();
        let variants = [
            ScenarioSpec {
                faulty: vec![1],
                ..base.clone()
            },
            ScenarioSpec {
                rule: "trimmed-mean".into(),
                f: 1,
                ..base.clone()
            },
            ScenarioSpec {
                adversary: "extremes".into(),
                ..base.clone()
            },
            ScenarioSpec {
                seed: 8,
                inputs: InputSpec::Seeded(8),
                ..base.clone()
            },
            ScenarioSpec {
                epsilon: 1e-7,
                ..base.clone()
            },
            ScenarioSpec {
                max_rounds: 99,
                ..base.clone()
            },
            ScenarioSpec {
                graph: "3\n0 1\n1 0\n0 2\n2 0\n".into(),
                ..base.clone()
            },
            ScenarioSpec {
                engine: delay_bounded("max", 2, 0),
                ..base.clone()
            },
        ];
        for variant in variants {
            assert_ne!(
                JobSpec::Scenario(variant.clone()).key().unwrap(),
                base_key,
                "ingredient change must change the key: {variant:?}"
            );
        }
    }

    /// Single-ingredient non-collision for the delay-bounded engine
    /// fields: changing the bound, the scheduler, or the scheduler seed
    /// alone must move the key.
    #[test]
    fn delay_bounded_keys_separate_every_engine_field() {
        let spec_with = |engine: EngineSpec| {
            JobSpec::Scenario(ScenarioSpec {
                engine,
                ..sample_scenario()
            })
        };
        let base = spec_with(delay_bounded("random", 2, 5)).key().unwrap();
        let variants = [
            delay_bounded("random", 3, 5), // bound
            delay_bounded("max", 2, 5),    // scheduler
            delay_bounded("immediate", 2, 5),
            delay_bounded("random", 2, 6), // sched_seed
            EngineSpec::Synchronous,       // engine kind itself
        ];
        let mut keys = vec![base];
        for engine in variants {
            let key = spec_with(engine.clone()).key().unwrap();
            assert!(
                !keys.contains(&key),
                "engine field change must change the key: {engine:?}"
            );
            keys.push(key);
        }
    }

    #[test]
    fn delay_bounded_execution_is_deterministic() {
        let spec = ScenarioSpec {
            engine: delay_bounded("random", 3, 11),
            ..sample_scenario()
        };
        let a = spec.execute().unwrap();
        let b = spec.execute().unwrap();
        assert_eq!(a, b, "same spec must produce identical payload bytes");
        let decoded = iabc_sim::wire::decode_outcome(&a).unwrap();
        assert_eq!(decoded.final_states.len(), 3);
        // And the payload differs from the synchronous engine's under the
        // same otherwise-identical spec (distinct keys, distinct bytes).
        let sync = sample_scenario().execute().unwrap();
        assert_ne!(a, sync, "engines must not alias payloads");
        assert!(ScenarioSpec {
            engine: delay_bounded("targeted", 2, 0),
            ..sample_scenario()
        }
        .execute()
        .is_err());
    }

    #[test]
    fn sweep_ids_canonicalize() {
        let a = JobSpec::Sweep {
            ids: vec!["e3".into(), "E1".into()],
        };
        let b = JobSpec::Sweep {
            ids: vec!["E1".into(), "e3".into(), "E3".into()],
        };
        assert_eq!(a.key().unwrap(), b.key().unwrap());
        let c = JobSpec::Sweep {
            ids: vec!["E1".into()],
        };
        assert_ne!(a.key().unwrap(), c.key().unwrap());
        assert!(JobSpec::Sweep {
            ids: vec!["E99".into()]
        }
        .key()
        .is_err());
        // Extension ids are first-class and canonicalize after E's.
        assert_eq!(
            resolve_experiment_ids(&["x2".into(), "E10".into(), "X2".into()]).unwrap(),
            vec!["E10".to_string(), "X2".to_string()]
        );
        let d = JobSpec::Sweep {
            ids: vec!["X2".into(), "e10".into()],
        };
        let e = JobSpec::Sweep {
            ids: vec!["E10".into(), "x2".into()],
        };
        assert_eq!(d.key().unwrap(), e.key().unwrap());
    }

    #[test]
    fn scenario_execution_is_deterministic() {
        let spec = sample_scenario();
        let a = spec.execute().unwrap();
        let b = spec.execute().unwrap();
        assert_eq!(a, b, "same spec must produce identical payload bytes");
        let decoded = iabc_sim::wire::decode_outcome(&a).unwrap();
        assert_eq!(decoded.final_states.len(), 3);
    }

    #[test]
    fn experiment_payload_roundtrips() {
        let mut table = Table::new(["n", "f", "pass"]);
        table.row(["7", "2", "true"]);
        table.row(["9", "2", "true"]);
        let result = ExperimentResult {
            id: "E6".into(),
            title: "core networks".into(),
            table,
            notes: vec!["note one".into(), "note two".into()],
            artifacts: vec![("fig.dot".into(), "digraph{}".into())],
            pass: true,
        };
        let back = decode_experiment(&encode_experiment(&result)).unwrap();
        assert_eq!(back.id, result.id);
        assert_eq!(back.title, result.title);
        assert_eq!(back.pass, result.pass);
        assert_eq!(back.notes, result.notes);
        assert_eq!(back.artifacts, result.artifacts);
        assert_eq!(back.table.to_string(), result.table.to_string());
        assert!(decode_experiment(b"IABCEXP1trunc").is_err());
        assert!(decode_experiment(b"WRONGMAG").is_err());
    }
}
