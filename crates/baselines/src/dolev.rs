//! Dolev et al. full-exchange approximate agreement rules (the paper's
//! \[5\]).
//!
//! The 1986 algorithm assumes a **complete** network: each round every node
//! collects one value from every process (including itself), *reduces* the
//! multiset by discarding the `f` smallest and `f` largest entries, and
//! applies an averaging function to the survivors. Two classical choices:
//!
//! * **midpoint** — `(min + max) / 2` of the reduced multiset; halves the
//!   diameter every round on a complete graph (`c = 2` convergence);
//! * **select-mean** — the mean of every `(f+1)`-th element of the reduced
//!   multiset, the rate-optimal function of the original paper
//!   (`c = ⌈(n − 2f)/f⌉`-fold convergence per round).
//!
//! Contrast with the paper's Algorithm 1 ([`iabc_core::rules::TrimmedMean`]):
//! Algorithm 1 trims the *received* vector only and always averages its own
//! value back in — that difference is what lets it work on incomplete
//! graphs. The Dolev rules here treat `own ∪ received` as one multiset,
//! exactly as in the original complete-graph setting. On non-complete
//! graphs they carry **no** correctness guarantee (experiment X5 shows them
//! failing where Algorithm 1 succeeds).

use std::fmt;

use iabc_core::rules::{sort_total, UpdateRule};
use iabc_core::RuleError;

fn reduced(own: f64, received: &mut [f64], f: usize) -> Result<Vec<f64>, RuleError> {
    if !own.is_finite() {
        return Err(RuleError::NonFiniteInput { value: own });
    }
    if let Some(&bad) = received.iter().find(|v| !v.is_finite()) {
        return Err(RuleError::NonFiniteInput { value: bad });
    }
    // Full-exchange multiset: own value participates like any other.
    let mut multiset = Vec::with_capacity(received.len() + 1);
    multiset.push(own);
    multiset.extend_from_slice(received);
    if multiset.len() < 2 * f + 1 {
        return Err(RuleError::InsufficientValues {
            needed: 2 * f + 1,
            got: multiset.len(),
        });
    }
    sort_total(&mut multiset);
    multiset.drain(..f);
    multiset.truncate(multiset.len() - f);
    Ok(multiset)
}

/// Dolev et al. **midpoint** rule: `(min + max) / 2` of the reduced
/// (own ∪ received, trim `f` per side) multiset.
///
/// # Examples
///
/// ```
/// use iabc_baselines::DolevMidpoint;
/// use iabc_core::rules::UpdateRule;
///
/// let rule = DolevMidpoint::new(1);
/// let mut received = vec![0.0, 2.0, 10.0, -50.0];
/// // Multiset {-50, 0, 1, 2, 10} reduces to {0, 1, 2}; midpoint 1.0.
/// let v = rule.update(1.0, &mut received)?;
/// assert!((v - 1.0).abs() < 1e-12);
/// # Ok::<(), iabc_core::RuleError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DolevMidpoint {
    f: usize,
}

impl DolevMidpoint {
    /// Creates the rule for fault bound `f`.
    pub const fn new(f: usize) -> Self {
        DolevMidpoint { f }
    }

    /// The fault bound this rule reduces against.
    pub const fn f(&self) -> usize {
        self.f
    }
}

impl UpdateRule for DolevMidpoint {
    fn update(&self, own: f64, received: &mut [f64]) -> Result<f64, RuleError> {
        let survivors = reduced(own, received, self.f)?;
        let lo = *survivors.first().expect("reduced multiset non-empty");
        let hi = *survivors.last().expect("reduced multiset non-empty");
        Ok((lo + hi) / 2.0)
    }

    fn min_weight(&self, _in_degree: usize) -> Option<f64> {
        // Midpoint is not a positive-weight average of all survivors; the
        // Lemma 5 machinery does not apply.
        None
    }

    fn name(&self) -> &'static str {
        "dolev-midpoint"
    }
}

impl fmt::Display for DolevMidpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DolevMidpoint(f={})", self.f)
    }
}

/// Dolev et al. **select-mean** rule: the mean of every `f`-th element
/// (indices `0, f, 2f, ...`) of the reduced multiset — the synchronous
/// averaging function `mean ∘ select_f ∘ reduce^f` of the original paper,
/// with `⌈(n − 2f)/f⌉`-fold convergence per round on complete graphs.
/// (`f = 0` degenerates to the plain mean of all values.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DolevSelectMean {
    f: usize,
}

impl DolevSelectMean {
    /// Creates the rule for fault bound `f`.
    pub const fn new(f: usize) -> Self {
        DolevSelectMean { f }
    }

    /// The fault bound this rule reduces against.
    pub const fn f(&self) -> usize {
        self.f
    }
}

impl UpdateRule for DolevSelectMean {
    fn update(&self, own: f64, received: &mut [f64]) -> Result<f64, RuleError> {
        let survivors = reduced(own, received, self.f)?;
        let step = self.f.max(1);
        let selected: Vec<f64> = survivors.iter().copied().step_by(step).collect();
        debug_assert!(!selected.is_empty());
        Ok(selected.iter().sum::<f64>() / selected.len() as f64)
    }

    fn min_weight(&self, _in_degree: usize) -> Option<f64> {
        None
    }

    fn name(&self) -> &'static str {
        "dolev-select-mean"
    }
}

impl fmt::Display for DolevSelectMean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DolevSelectMean(f={})", self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_trims_both_tails_of_full_multiset() {
        let survivors = reduced(1.0, &mut [0.0, 2.0, 10.0, -50.0], 1).unwrap();
        assert_eq!(survivors, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn reduce_rejects_short_input() {
        let err = reduced(0.0, &mut [1.0], 1).unwrap_err();
        assert!(matches!(
            err,
            RuleError::InsufficientValues { needed: 3, got: 2 }
        ));
    }

    #[test]
    fn reduce_rejects_non_finite() {
        assert!(reduced(f64::NAN, &mut [0.0, 1.0, 2.0], 1).is_err());
        assert!(reduced(0.0, &mut [f64::INFINITY, 1.0, 2.0], 1).is_err());
    }

    #[test]
    fn midpoint_is_center_of_reduced_range() {
        let rule = DolevMidpoint::new(1);
        let v = rule
            .update(0.0, &mut [1.0, 2.0, 3.0, 100.0, -100.0])
            .unwrap();
        // Multiset {-100, 0, 1, 2, 3, 100} -> {0, 1, 2, 3}; midpoint 1.5.
        assert!((v - 1.5).abs() < 1e-12);
    }

    #[test]
    fn midpoint_f0_is_plain_midrange() {
        let rule = DolevMidpoint::new(0);
        let v = rule.update(5.0, &mut [1.0, 9.0]).unwrap();
        assert!((v - 5.0).abs() < 1e-12);
    }

    #[test]
    fn select_mean_samples_every_f_th() {
        let rule = DolevSelectMean::new(2);
        // Multiset {0..8} reduced (f=2) -> {2,3,4,5,6}; select idx 0,2,4 ->
        // {2,4,6}; mean 4.
        let mut received: Vec<f64> = (0..8).map(f64::from).collect();
        let v = rule.update(8.0, &mut received).unwrap();
        assert!((v - 4.0).abs() < 1e-12);

        // f = 1 selects every element of the reduced multiset.
        let rule = DolevSelectMean::new(1);
        let v = rule.update(8.0, &mut [0.0, 1.0, 2.0, 3.0]).unwrap();
        assert!((v - 2.0).abs() < 1e-12); // {1, 2, 3} mean
    }

    #[test]
    fn select_mean_f0_is_mean_of_everything() {
        let rule = DolevSelectMean::new(0);
        let v = rule.update(4.0, &mut [0.0, 2.0]).unwrap();
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rules_are_permutation_invariant() {
        let rule = DolevSelectMean::new(1);
        let a = rule.update(3.0, &mut [5.0, 1.0, 4.0, 2.0]).unwrap();
        let b = rule.update(3.0, &mut [1.0, 2.0, 4.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DolevMidpoint::new(2).name(), "dolev-midpoint");
        assert_eq!(DolevSelectMean::new(2).name(), "dolev-select-mean");
        assert_eq!(DolevMidpoint::new(2).to_string(), "DolevMidpoint(f=2)");
    }

    #[test]
    fn outputs_stay_in_input_hull() {
        // Validity at the single-step level: with at most f = 2 outliers,
        // the output lies within the remaining values' hull.
        let rule = DolevMidpoint::new(2);
        let mut received = vec![10.0, 11.0, 12.0, 13.0, 1e9, -1e9, 12.5];
        let v = rule.update(11.5, &mut received).unwrap();
        assert!((10.0..=13.0).contains(&v));

        let rule = DolevSelectMean::new(2);
        let mut received = vec![10.0, 11.0, 12.0, 13.0, 1e9, -1e9, 12.5];
        let v = rule.update(11.5, &mut received).unwrap();
        assert!((10.0..=13.0).contains(&v));
    }
}
