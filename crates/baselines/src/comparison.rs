//! Head-to-head comparison harness: run several update rules on the same
//! workload (graph, inputs, fault set, adversary) and report convergence.
//!
//! Used by experiment X5 and the `baseline_faceoff` example to reproduce
//! the qualitative claims of the paper's related-work section: the Dolev
//! rules win on complete graphs (bigger per-round contraction) but carry no
//! guarantee off the complete topology, where Algorithm 1 keeps converging.
//!
//! Every contender — Algorithm 1, W-MSR, both Dolev rules — is driven
//! through the **same** [`iabc_sim::Engine`] entrypoint:
//! [`Faceoff::engine`] builds the rule's engine via
//! [`iabc_sim::Scenario`], and [`Faceoff::run`] executes it with the
//! shared [`iabc_sim::Engine::run`] driver. A baseline rule's "engine
//! implementation" is exactly that scenario-built engine.

use iabc_core::rules::UpdateRule;
use iabc_graph::{Digraph, NodeSet};
use iabc_sim::adversary::Adversary;
use iabc_sim::{Engine, RunConfig, Scenario, SimError, Termination};

/// A single rule's result on a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleResult {
    /// `UpdateRule::name()` of the contender.
    pub rule: &'static str,
    /// Whether the honest range reached ε within the round budget.
    pub converged: bool,
    /// Why the run ended; `None` when the rule errored mid-run (e.g.
    /// in-degree too small for its trimming) and was reported rather than
    /// aborted.
    pub termination: Option<Termination>,
    /// Rounds executed (equals the budget when the cap fired; `0` when the
    /// rule errored).
    pub rounds: usize,
    /// Final honest range `U − µ`.
    pub final_range: f64,
    /// Whether validity (Equation 1) held throughout.
    pub valid: bool,
}

/// A reproducible workload: everything but the rule under test.
///
/// `adversary_factory` is called once per contender so each run gets a
/// fresh adversary with identical behaviour (adversaries are stateful).
pub struct Faceoff<'a> {
    /// The network.
    pub graph: &'a Digraph,
    /// Initial states, one per node.
    pub inputs: &'a [f64],
    /// The Byzantine set.
    pub fault_set: NodeSet,
    /// Builds a fresh adversary per contender.
    pub adversary_factory: &'a dyn Fn() -> Box<dyn Adversary>,
    /// Engine configuration (ε, round budget).
    pub config: RunConfig,
}

impl std::fmt::Debug for Faceoff<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Faceoff")
            .field("graph", &self.graph)
            .field("fault_set", &self.fault_set)
            .field("epsilon", &self.config.epsilon)
            .field("max_rounds", &self.config.max_rounds)
            .finish_non_exhaustive()
    }
}

impl Faceoff<'_> {
    /// Builds the boxed [`Engine`] that runs `rule` on this workload — the
    /// rule's engine implementation, type-erased so heterogeneous
    /// contenders share one code path.
    ///
    /// # Errors
    ///
    /// Propagates scenario/constructor validation errors.
    pub fn engine<'b>(
        &'b self,
        rule: &'b dyn UpdateRule,
    ) -> Result<Box<dyn Engine + 'b>, SimError> {
        Scenario::on(self.graph)
            .inputs(self.inputs)
            .faults(self.fault_set.clone())
            .rule(rule)
            .adversary((self.adversary_factory)())
            .boxed_synchronous()
    }

    /// Runs one contender through the shared [`Engine::run`] driver.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (bad inputs, rule failures mid-run).
    pub fn run(&self, rule: &dyn UpdateRule) -> Result<RuleResult, SimError> {
        let mut engine = self.engine(rule)?;
        let outcome = engine.run(&self.config)?;
        Ok(RuleResult {
            rule: rule.name(),
            converged: outcome.converged,
            termination: Some(outcome.termination),
            rounds: outcome.rounds,
            final_range: outcome.final_range,
            valid: outcome.validity.is_valid(),
        })
    }

    /// Runs every contender; a rule that errors mid-run (e.g. in-degree too
    /// small for its trimming) is reported as non-converged with
    /// `rounds = 0` rather than aborting the tournament.
    pub fn run_all(&self, rules: &[&dyn UpdateRule]) -> Vec<RuleResult> {
        rules
            .iter()
            .map(|rule| {
                self.run(*rule).unwrap_or(RuleResult {
                    rule: rule.name(),
                    converged: false,
                    termination: None,
                    rounds: 0,
                    final_range: f64::INFINITY,
                    valid: false,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DolevMidpoint, DolevSelectMean, Wmsr};
    use iabc_core::rules::TrimmedMean;
    use iabc_graph::generators;
    use iabc_sim::adversary::{ConstantAdversary, ExtremesAdversary};

    fn inputs(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn all_rules_converge_on_complete_graph() {
        let g = generators::complete(7);
        let ins = inputs(7);
        let faults = NodeSet::from_indices(7, [5, 6]);
        let faceoff = Faceoff {
            graph: &g,
            inputs: &ins,
            fault_set: faults,
            adversary_factory: &|| Box::new(ExtremesAdversary::new(100.0)),
            config: RunConfig::default(),
        };
        let a1 = TrimmedMean::new(2);
        let mid = DolevMidpoint::new(2);
        let sel = DolevSelectMean::new(2);
        let wmsr = Wmsr::new(2);
        let results = faceoff.run_all(&[&a1, &mid, &sel, &wmsr]);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.converged, "{} did not converge: {r:?}", r.rule);
            assert!(r.valid, "{} violated validity", r.rule);
        }
    }

    #[test]
    fn dolev_midpoint_contracts_faster_than_algorithm1_on_k7() {
        let g = generators::complete(7);
        let ins = inputs(7);
        let faults = NodeSet::from_indices(7, [6]);
        let faceoff = Faceoff {
            graph: &g,
            inputs: &ins,
            fault_set: faults,
            adversary_factory: &|| Box::new(ConstantAdversary::new(50.0)),
            config: RunConfig::default(),
        };
        let a1 = faceoff.run(&TrimmedMean::new(1)).unwrap();
        let mid = faceoff.run(&DolevMidpoint::new(1)).unwrap();
        assert!(a1.converged && mid.converged);
        assert!(
            mid.rounds <= a1.rounds,
            "midpoint ({}) should converge at least as fast as Algorithm 1 ({})",
            mid.rounds,
            a1.rounds
        );
    }

    #[test]
    fn baseline_engines_step_like_any_engine() {
        // The W-MSR and Dolev baselines are first-class `Engine`s: steppable,
        // inspectable, and drivable by the shared driver.
        let g = generators::complete(7);
        let ins = inputs(7);
        let faceoff = Faceoff {
            graph: &g,
            inputs: &ins,
            fault_set: NodeSet::from_indices(7, [5, 6]),
            adversary_factory: &|| Box::new(ExtremesAdversary::new(100.0)),
            config: RunConfig::default(),
        };
        let wmsr = Wmsr::new(2);
        let dolev = DolevMidpoint::new(2);
        for rule in [&wmsr as &dyn UpdateRule, &dolev] {
            let mut e = faceoff.engine(rule).unwrap();
            e.step().unwrap();
            assert_eq!(e.round(), 1);
            assert_eq!(e.states().len(), 7);
            let out = e.run(&RunConfig::default()).unwrap();
            assert_eq!(out.termination, Termination::Converged);
        }
    }

    #[test]
    fn failing_rule_is_reported_not_fatal() {
        // Path graph: in-degree 1 < 2f, TrimmedMean(1) errors at round 1.
        let g = generators::path(4);
        let ins = inputs(4);
        let faceoff = Faceoff {
            graph: &g,
            inputs: &ins,
            fault_set: NodeSet::with_universe(4),
            adversary_factory: &|| Box::new(ConstantAdversary::new(0.0)),
            config: RunConfig {
                max_rounds: 10,
                ..RunConfig::default()
            },
        };
        let a1 = TrimmedMean::new(1);
        let results = faceoff.run_all(&[&a1]);
        assert_eq!(results.len(), 1);
        assert!(!results[0].converged);
        assert_eq!(results[0].rounds, 0);
        assert_eq!(
            results[0].termination, None,
            "an errored rule must not masquerade as a capped run"
        );
    }

    #[test]
    fn debug_impl_mentions_config() {
        let g = generators::complete(4);
        let ins = inputs(4);
        let faceoff = Faceoff {
            graph: &g,
            inputs: &ins,
            fault_set: NodeSet::with_universe(4),
            adversary_factory: &|| Box::new(ConstantAdversary::new(0.0)),
            config: RunConfig::default(),
        };
        let dbg = format!("{faceoff:?}");
        assert!(dbg.contains("epsilon"));
    }
}
