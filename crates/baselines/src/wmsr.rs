//! The W-MSR update rule (LeBlanc–Zhang–Koutsoukos–Sundaram; the paper's
//! \[11\]/\[17\]).
//!
//! W-MSR (*Weighted Mean-Subsequence-Reduced*) trims **relative to the
//! node's own state**: among received values strictly greater than the own
//! state, remove the `f` largest (or all of them, if fewer than `f`);
//! symmetrically for values strictly smaller. The survivors — which always
//! include the node's own value — are averaged with equal weights.
//!
//! The contrast with the paper's Algorithm 1
//! ([`iabc_core::rules::TrimmedMean`]) is subtle but real:
//!
//! * Algorithm 1 removes exactly `f` from each end of the received vector,
//!   *unconditionally* — even if those extremes are honest;
//! * W-MSR only removes values more extreme than its own state, so when all
//!   received values sit on one side of the own state it can keep up to
//!   `|N⁻| − f` of them, discarding less information.
//!
//! Both are convex combinations of in-hull values (validity by the same
//! Lemma 3/4 bracketing argument), and both guarantee each surviving honest
//! value weight at least `1 / (|N⁻| + 1)`; the experiment suite measures
//! the convergence difference empirically (X5).

use std::fmt;

use iabc_core::rules::{average_with_own, sort_total, UpdateRule};
use iabc_core::RuleError;

/// The W-MSR rule with parameter `f`.
///
/// # Examples
///
/// ```
/// use iabc_baselines::Wmsr;
/// use iabc_core::rules::UpdateRule;
///
/// let rule = Wmsr::new(1);
/// // All received values are above own = 0: only the single largest (7) is
/// // removed; {1, 2} survive along with own.
/// let v = rule.update(0.0, &mut [1.0, 2.0, 7.0])?;
/// assert!((v - 1.0).abs() < 1e-12); // (0 + 1 + 2) / 3
/// # Ok::<(), iabc_core::RuleError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wmsr {
    f: usize,
}

impl Wmsr {
    /// Creates the rule for fault bound `f`.
    pub const fn new(f: usize) -> Self {
        Wmsr { f }
    }

    /// The fault bound this rule trims against.
    pub const fn f(&self) -> usize {
        self.f
    }
}

impl UpdateRule for Wmsr {
    fn update(&self, own: f64, received: &mut [f64]) -> Result<f64, RuleError> {
        if !own.is_finite() {
            return Err(RuleError::NonFiniteInput { value: own });
        }
        if let Some(&bad) = received.iter().find(|v| !v.is_finite()) {
            return Err(RuleError::NonFiniteInput { value: bad });
        }
        sort_total(received);
        // Values strictly below / strictly above the own state.
        let below = received.partition_point(|&v| v < own);
        let above = received.len() - received.partition_point(|&v| v <= own);
        let drop_low = below.min(self.f);
        let drop_high = above.min(self.f);
        let survivors = &received[drop_low..received.len() - drop_high];
        Ok(average_with_own(own, survivors))
    }

    fn min_weight(&self, in_degree: usize) -> Option<f64> {
        // At most 2f values are ever dropped, but the surviving count can be
        // as high as in_degree (one-sided case); the guaranteed per-value
        // weight is therefore 1 / (in_degree + 1).
        Some(1.0 / (in_degree as f64 + 1.0))
    }

    fn name(&self) -> &'static str {
        "w-msr"
    }
}

impl fmt::Display for Wmsr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Wmsr(f={})", self.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iabc_core::rules::{Mean, TrimmedMean};

    #[test]
    fn trims_only_values_more_extreme_than_own() {
        let rule = Wmsr::new(1);
        // Own 5; below: {1}, above: {8, 9}. Drop min(1,1)=1 low and 1 high.
        let v = rule.update(5.0, &mut [1.0, 8.0, 9.0]).unwrap();
        assert!((v - (5.0 + 8.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn keeps_everything_when_nothing_is_extreme() {
        let rule = Wmsr::new(2);
        // All received equal own: nothing strictly above/below, keep all.
        let v = rule.update(3.0, &mut [3.0, 3.0, 3.0]).unwrap();
        assert!((v - 3.0).abs() < 1e-12);
    }

    #[test]
    fn one_sided_input_drops_only_f() {
        let rule = Wmsr::new(1);
        // Everything above own: drop only the largest, keep the other three.
        let v = rule.update(0.0, &mut [10.0, 20.0, 30.0, 40.0]).unwrap();
        assert!((v - (0.0 + 10.0 + 20.0 + 30.0) / 4.0).abs() < 1e-12);
        // Algorithm 1 on the same input also trims the *smallest* (10),
        // keeping {20, 30}: the rules genuinely differ.
        let a1 = TrimmedMean::new(1)
            .update(0.0, &mut [10.0, 20.0, 30.0, 40.0])
            .unwrap();
        assert!((a1 - (0.0 + 20.0 + 30.0) / 3.0).abs() < 1e-12);
        assert_ne!(v, a1);
    }

    #[test]
    fn f_zero_equals_mean() {
        let wmsr = Wmsr::new(0);
        let mean = Mean::new();
        let mut a = vec![1.0, 4.0, -2.0];
        let mut b = a.clone();
        assert_eq!(
            wmsr.update(0.5, &mut a).unwrap(),
            mean.update(0.5, &mut b).unwrap()
        );
    }

    #[test]
    fn short_input_is_not_an_error() {
        // Unlike Algorithm 1, W-MSR never *requires* 2f received values: it
        // drops at most what exists. (Its correctness needs robustness, but
        // the rule itself is total.)
        let rule = Wmsr::new(2);
        let v = rule.update(1.0, &mut [5.0]).unwrap();
        // 5 > own, dropped (min(1, f)=1): survivor set empty, only own left.
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_finite() {
        let rule = Wmsr::new(1);
        assert!(rule.update(f64::NAN, &mut [0.0]).is_err());
        assert!(rule.update(0.0, &mut [f64::NEG_INFINITY]).is_err());
    }

    #[test]
    fn output_lies_in_own_union_received_hull() {
        let rule = Wmsr::new(2);
        let mut vals = vec![-4.0, 10.0, 3.0, 3.5, -1e9, 1e9];
        let v = rule.update(2.0, &mut vals).unwrap();
        assert!((-4.0..=10.0).contains(&v));
    }

    #[test]
    fn equal_ties_at_own_value_are_kept() {
        let rule = Wmsr::new(1);
        // Values equal to own are neither above nor below: all kept.
        let v = rule.update(2.0, &mut [2.0, 2.0, 5.0]).unwrap();
        // 5 dropped (above, f=1); survivors {2, 2} + own.
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_weight_accounts_for_one_sided_survival() {
        let rule = Wmsr::new(1);
        assert_eq!(rule.min_weight(4), Some(0.2));
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Wmsr::new(3).name(), "w-msr");
        assert_eq!(Wmsr::new(3).to_string(), "Wmsr(f=3)");
    }
}
