//! Baseline resilient-consensus algorithms the paper builds on or is
//! compared against by the follow-on literature.
//!
//! The paper's Algorithm 1 descends from two families this crate makes
//! concrete so that experiments can compare them under identical engines,
//! adversaries, and workloads:
//!
//! * [`dolev`] — the classical Dolev–Lynch–Pinter–Stark–Weihl (J. ACM 1986,
//!   the paper's \[5\]) *full-exchange* rules for **complete** graphs:
//!   reduce the received multiset by trimming `f` from each end, then apply
//!   an averaging function (midpoint, or the select-mean that samples every
//!   `f`-th survivor).
//! * [`wmsr`] — the W-MSR rule of LeBlanc–Zhang–Koutsoukos–Sundaram (the
//!   paper's \[11\]/\[17\]): trim only values *more extreme than the node's
//!   own state* (up to `f` on each side), then average the survivors.
//!
//! All baselines implement [`iabc_core::rules::UpdateRule`], so they plug
//! into [`iabc_sim`] unchanged; [`comparison`] runs the head-to-head
//! experiments.
//!
//! # Example
//!
//! ```
//! use iabc_baselines::wmsr::Wmsr;
//! use iabc_core::rules::UpdateRule;
//!
//! let rule = Wmsr::new(1);
//! // Own value 5; the outlier 100 is more extreme than own and trimmed,
//! // but 4 and 6 bracket own and survive.
//! let mut received = vec![4.0, 6.0, 100.0, 0.0];
//! let v = rule.update(5.0, &mut received)?;
//! assert!((v - 5.0).abs() < 1e-12); // (4 + 5 + 6) / 3
//! # Ok::<(), iabc_core::RuleError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comparison;
pub mod dolev;
pub mod wmsr;

pub use dolev::{DolevMidpoint, DolevSelectMean};
pub use wmsr::Wmsr;

#[cfg(test)]
mod tests {
    use iabc_core::rules::UpdateRule;

    #[test]
    fn baselines_are_object_safe_rules() {
        let rules: Vec<Box<dyn UpdateRule>> = vec![
            Box::new(crate::DolevMidpoint::new(1)),
            Box::new(crate::DolevSelectMean::new(1)),
            Box::new(crate::Wmsr::new(1)),
        ];
        assert_eq!(rules.len(), 3);
    }
}
