//! Baseline faceoff: Algorithm 1 vs the rules it descends from.
//!
//! ```text
//! cargo run --example baseline_faceoff
//! ```
//!
//! Runs the paper's Algorithm 1 (trimmed mean), the classical Dolev et al.
//! full-exchange rules \[5\], and W-MSR \[11\]/\[17\] on identical workloads:
//! same graph, same inputs, same colluding adversary. Reproduces the
//! qualitative picture from the related-work discussion:
//!
//! * on **complete** graphs all four converge — the Dolev midpoint is the
//!   per-round champion (it halves the range every round);
//! * on **sparse** Theorem 1 graphs, only Algorithm 1 carries a guarantee;
//!   the baselines run as heuristics.

use iabc::baselines::comparison::Faceoff;
use iabc::baselines::{DolevMidpoint, DolevSelectMean, Wmsr};
use iabc::core::rules::{TrimmedMean, UpdateRule};
use iabc::core::theorem1;
use iabc::graph::{generators, NodeSet};
use iabc::sim::adversary::{Adversary, PolarizingAdversary};
use iabc::sim::SimConfig;

fn run_workload(
    label: &str,
    graph: &iabc::graph::Digraph,
    f: usize,
    faulty: &[usize],
    adversary: fn() -> Box<dyn Adversary>,
) {
    let n = graph.node_count();
    assert!(theorem1::check(graph, f).is_satisfied());
    let inputs: Vec<f64> = (0..n).map(|i| i as f64 * 10.0).collect();
    let faceoff = Faceoff {
        graph,
        inputs: &inputs,
        fault_set: NodeSet::from_indices(n, faulty.iter().copied()),
        adversary_factory: &adversary,
        config: SimConfig {
            record_states: false,
            epsilon: 1e-9,
            max_rounds: 50_000,
        },
    };
    let a1 = TrimmedMean::new(f);
    let mid = DolevMidpoint::new(f);
    let sel = DolevSelectMean::new(f);
    let wmsr = Wmsr::new(f);
    let rules: Vec<&dyn UpdateRule> = vec![&a1, &mid, &sel, &wmsr];

    println!("== {label} (f = {f}, faulty = {faulty:?}, polarizing adversary)");
    println!(
        "   {:<18} {:>9} {:>7} {:>12} {:>6}",
        "rule", "converged", "rounds", "final range", "valid"
    );
    for r in faceoff.run_all(&rules) {
        println!(
            "   {:<18} {:>9} {:>7} {:>12.2e} {:>6}",
            r.rule, r.converged, r.rounds, r.final_range, r.valid
        );
    }
    println!();
}

fn main() {
    // The classical setting: complete graph, n > 3f.
    run_workload("complete K7", &generators::complete(7), 2, &[5, 6], || {
        Box::new(PolarizingAdversary::new())
    });

    // A graph the Dolev algorithm was never designed for: the sparse §6.3
    // chord network that satisfies Theorem 1 at f = 1.
    run_workload("chord(5, 3)", &generators::chord(5, 3), 1, &[4], || {
        Box::new(PolarizingAdversary::new())
    });

    // The §6.1 core network at its minimum size.
    run_workload(
        "core network (7, 2)",
        &generators::core_network(7, 2),
        2,
        &[0, 3],
        || Box::new(PolarizingAdversary::new()),
    );

    println!("Only trimmed-mean (Algorithm 1) is *guaranteed* beyond complete graphs;");
    println!("the baselines run there as heuristics and are reported for comparison.");
}
