//! §6.2 / Figure 3: connectivity is not enough.
//!
//! ```text
//! cargo run --example hypercube_cut
//! ```
//!
//! The d-dimensional hypercube has vertex connectivity d — plenty by the
//! classic `> 2f` connectivity standard — yet it fails the Theorem 1
//! condition for every `f ≥ 1`: cut the cube along any dimension and each
//! node keeps exactly **one** cross edge, so neither half can ever gather
//! the `f + 1` corroborating in-links the `⇒` relation demands. This
//! example verifies the connectivity claim with Menger's theorem, exhibits
//! the Figure 3 witness, and renders it as Graphviz DOT.

use iabc::analysis::experiments::dimension_cut_witness;
use iabc::core::{theorem1, Threshold};
use iabc::graph::dot::{to_dot, DotGroup};
use iabc::graph::{algorithms, generators};

fn main() {
    for d in 3..=5u32 {
        let g = generators::hypercube(d);
        let n = 1usize << d;

        // Connectivity d, verified via max-flow (full check up to d = 4).
        let conn = if d <= 4 {
            algorithms::vertex_connectivity(&g)
        } else {
            algorithms::vertex_disjoint_paths(
                &g,
                iabc::graph::NodeId::new(0),
                iabc::graph::NodeId::new(n - 1),
            )
        };
        println!("d = {d}: n = {n}, vertex connectivity = {conn}");

        // Every dimension cut is a Theorem 1 witness for f = 1.
        for bit in 0..d {
            let w = dimension_cut_witness(d, bit);
            assert!(
                w.verify(&g, 1, Threshold::synchronous(1)),
                "dimension {bit} cut must violate the condition"
            );
        }
        println!("  all {d} dimension cuts verify as Theorem 1 violations (f = 1)");

        // The exact checker agrees where it is feasible.
        if d <= 4 {
            assert!(!theorem1::check(&g, 1).is_satisfied());
            println!("  exact checker: violated");
        }
    }

    // Render Figure 3: the 3-cube with halves {0,1,2,3} and {4,5,6,7}.
    let g = generators::hypercube(3);
    let w = dimension_cut_witness(3, 2);
    let dot = to_dot(
        &g,
        "figure3",
        &[
            DotGroup::new("L", "lightblue", w.left.clone()),
            DotGroup::new("R", "lightgreen", w.right.clone()),
        ],
    );
    println!("\nFigure 3 as DOT (render with `dot -Tpng`):\n{dot}");
}
