//! The protocol as real concurrent processes — no simulator in sight.
//!
//! ```text
//! cargo run --example threaded_deployment
//! ```
//!
//! Spawns one OS thread per node with a crossbeam channel per directed
//! edge, and runs three deployments:
//!
//! 1. a fault-free core network contracting to agreement;
//! 2. the same network with two Byzantine threads lying per-edge
//!    (the deployable `InboxExtremist` strategy) — absorbed;
//! 3. the Theorem 1 impossibility *live*: on chord(7,5) the split-brain
//!    threads freeze the honest groups at their inputs forever.
//!
//! The round structure is emergent: every node sends one message per
//! out-edge then blocks on one message per in-edge; there is no barrier,
//! no shared clock, no global state anywhere.

use iabc::core::theorem1;
use iabc::graph::{generators, NodeSet};
use iabc::runtime::{run_threaded, InboxExtremist, SplitBrainLiar};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Fault-free: nine threads agree.
    let g = generators::core_network(9, 2);
    let inputs: Vec<f64> = (0..9).map(|i| i as f64 * 10.0).collect();
    let report = run_threaded(&g, &inputs, &NodeSet::with_universe(9), 2, 150, |_| {
        unreachable!("no faulty nodes")
    })?;
    println!(
        "fault-free core network: 9 threads, 150 rounds -> range {:.2e}",
        report.honest_range()
    );

    // 2. Two Byzantine threads attack; the trimming absorbs them.
    let faults = NodeSet::from_indices(9, [3, 7]);
    let report = run_threaded(&g, &inputs, &faults, 2, 150, |_| {
        Box::new(InboxExtremist { delta: 1e9 })
    })?;
    println!(
        "under 2 inbox-extremist threads:        -> range {:.2e}, states in [{:.2}, {:.2}]",
        report.honest_range(),
        report
            .honest_states()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min),
        report
            .honest_states()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max),
    );

    // 3. The necessity proof, live: chord(7,5) fails Theorem 1 at f = 2,
    //    and the split-brain threads keep L at 0 and R at 1 forever.
    let bad = generators::chord(7, 5);
    assert!(!theorem1::check(&bad, 2).is_satisfied());
    let left = NodeSet::from_indices(7, [0, 2]);
    let right = NodeSet::from_indices(7, [1, 3, 4]);
    let mut inputs = [0.0f64; 7];
    for i in right.iter() {
        inputs[i.index()] = 1.0;
    }
    let (l, r) = (left.clone(), right.clone());
    let report = run_threaded(
        &bad,
        &inputs,
        &NodeSet::from_indices(7, [5, 6]),
        2,
        100,
        move |_| {
            Box::new(SplitBrainLiar {
                left: l.clone(),
                right: r.clone(),
                m_minus: -0.5,
                m_plus: 1.5,
                mid: 0.5,
            })
        },
    )?;
    println!(
        "chord(7,5) under split-brain threads:   -> range {:.2} after 100 rounds (frozen: \
         L at 0, R at 1 — Theorem 1's impossibility, live)",
        report.honest_range()
    );
    assert_eq!(report.honest_range(), 1.0);
    Ok(())
}
