//! The paper's §6.3 chord-network study, end to end.
//!
//! ```text
//! cargo run --example chord_counterexample
//! ```
//!
//! * `chord(7, 5)` with `f = 2` **violates** Theorem 1 — we reproduce the
//!   paper's exact witness (`F = {5,6}, L = {0,2}, R = {1,3,4}`) and then
//!   *execute* the impossibility: the proof's adversary freezes the two
//!   sides one unit apart forever.
//! * `chord(5, 3)` with `f = 1` **satisfies** the condition — the same
//!   attack shape fails and Algorithm 1 converges.

use iabc::core::rules::TrimmedMean;
use iabc::core::{theorem1, Threshold, Witness};
use iabc::graph::{generators, NodeSet};
use iabc::sim::adversary::{PullAdversary, SplitBrainAdversary};
use iabc::sim::Scenario;
use iabc::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The violated instance: f = 2, n = 7 ---------------------------
    let g = generators::chord(7, 5);
    println!("chord(7, 5): every node hears its 5 predecessors; f = 2");

    // The paper's hand-built witness, verified mechanically:
    let paper_witness = Witness {
        fault_set: NodeSet::from_indices(7, [5, 6]),
        left: NodeSet::from_indices(7, [0, 2]),
        center: NodeSet::with_universe(7),
        right: NodeSet::from_indices(7, [1, 3, 4]),
    };
    assert!(paper_witness.verify(&g, 2, Threshold::synchronous(2)));
    println!("paper witness verifies: {paper_witness}");

    // The checker finds one too (possibly a different, equally valid one):
    let found = theorem1::find_violation(&g, 2).expect("condition is violated");
    println!("checker witness:        {found}");

    // Execute the impossibility: L starts at 0, R at 1, C in between; the
    // faulty nodes run the proof adversary. Nothing ever moves.
    let (m, m_cap) = (0.0, 1.0);
    let mut inputs = vec![0.5; 7];
    for v in found.left.iter() {
        inputs[v.index()] = m;
    }
    for v in found.right.iter() {
        inputs[v.index()] = m_cap;
    }
    let rule = TrimmedMean::new(2);
    let adv = SplitBrainAdversary::from_witness(&found, m, m_cap, 0.5);
    let mut sim = Scenario::on(&g)
        .inputs(&inputs)
        .faults(found.fault_set.clone())
        .rule(&rule)
        .adversary(Box::new(adv))
        .synchronous()?;
    for _ in 0..500 {
        sim.step()?;
    }
    println!(
        "after 500 rounds the honest range is still {:.1} — consensus is impossible here",
        sim.honest_range()
    );
    assert!(sim.honest_range() >= 1.0);

    // --- The satisfied instance: f = 1, n = 5 --------------------------
    let g = generators::chord(5, 3);
    println!(
        "\nchord(5, 3): f = 1 — condition {}",
        theorem1::check(&g, 1)
    );
    let inputs = [0.0, 1.0, 0.25, 0.75, 0.5];
    let faults = NodeSet::from_indices(5, [4]);
    let rule = TrimmedMean::new(1);
    let out = Scenario::on(&g)
        .inputs(&inputs)
        .faults(faults)
        .rule(&rule)
        .adversary(Box::new(PullAdversary::new(false)))
        .synchronous()?
        .run(&SimConfig::default())?;
    println!(
        "with one stealthy Byzantine node: converged = {} in {} rounds (validity {})",
        out.converged,
        out.rounds,
        if out.validity.is_valid() {
            "ok"
        } else {
            "violated"
        }
    );
    assert!(out.converged && out.validity.is_valid());
    Ok(())
}
