//! Convergence, visually: log-scale charts of the honest range per round.
//!
//! ```text
//! cargo run --example convergence_plot
//! ```
//!
//! Theorem 3 says the honest range `U[t] − µ[t]` contracts to zero; on a
//! log scale a geometric contraction is a straight line. This example runs
//! Algorithm 1 on a §6.1 core network under three adversaries and renders
//! the traces as ASCII charts — each attack changes the slope of the line,
//! none changes its sign. (On this dense workload the out-of-hull
//! "extremes" attack is the slowest: its planted outliers force the
//! trimming to discard honest extremes every round.)

use iabc::analysis::plot::{log_chart, log_sparkline};
use iabc::core::rules::TrimmedMean;
use iabc::core::theorem1;
use iabc::graph::{generators, NodeSet};
use iabc::sim::adversary::{
    Adversary, ConformingAdversary, ExtremesAdversary, PolarizingAdversary,
};
use iabc::sim::Scenario;
use iabc::sim::SimConfig;

fn trace_ranges(adversary: Box<dyn Adversary>) -> (String, Vec<f64>) {
    let g = generators::core_network(9, 2);
    assert!(theorem1::check(&g, 2).is_satisfied());
    let inputs: Vec<f64> = (0..9).map(|i| (i as f64) * 12.5).collect();
    let faults = NodeSet::from_indices(9, [0, 4]);
    let rule = TrimmedMean::new(2);
    let name = adversary.name().to_string();
    let out = Scenario::on(&g)
        .inputs(&inputs)
        .faults(faults)
        .rule(&rule)
        .adversary(adversary)
        .synchronous()
        .and_then(|mut sim| {
            sim.run(&SimConfig {
                record_states: false,
                epsilon: 1e-9,
                max_rounds: 500,
            })
        })
        .expect("core network run succeeds");
    assert!(out.converged && out.validity.is_valid());
    (name, out.trace.ranges())
}

fn main() {
    println!("core network (9, f = 2), Algorithm 1, honest range per round (log scale)\n");
    let runs: Vec<(String, Vec<f64>)> = vec![
        trace_ranges(Box::new(ConformingAdversary::new())),
        trace_ranges(Box::new(ExtremesAdversary::new(1e6))),
        trace_ranges(Box::new(PolarizingAdversary::new())),
    ];

    for (name, ranges) in &runs {
        println!("adversary: {name}  ({} rounds to 1e-9)", ranges.len() - 1);
        print!("{}", log_chart(ranges, 64, 8));
        println!();
    }

    println!("side-by-side sparklines (same y-scaling per line):");
    for (name, ranges) in &runs {
        println!("  {:<12} {}", name, log_sparkline(ranges));
    }
    println!();
    println!("Reading: straight line = geometric contraction (Lemma 5). Adversaries");
    println!("change the slope — never the sign: convergence survives every strategy.");
}
