//! Quickstart: check a network's fault tolerance, then run consensus on it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the full API surface once: build a graph, check the Theorem 1
//! condition (and see the witness when it fails), compute Algorithm 1's
//! contraction parameter, run the simulation under an attack, and inspect
//! the trace.

use iabc::core::alpha::{algorithm1_alpha, iteration_bound};
use iabc::core::rules::TrimmedMean;
use iabc::core::theorem1;
use iabc::graph::{generators, NodeSet};
use iabc::sim::adversary::ExtremesAdversary;
use iabc::sim::Scenario;
use iabc::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f = 2;

    // 1. A network: the paper's §6.1 "core network" — a clique of 2f+1
    //    nodes that every other node is bidirectionally attached to.
    let g = generators::core_network(9, f);
    println!("network: {g} (core network, f = {f})");

    // 2. Is iterative Byzantine consensus even possible here? Theorem 1
    //    gives the exact answer.
    let report = theorem1::check(&g, f);
    println!("theorem 1 condition: {report}");
    assert!(report.is_satisfied());

    // For contrast: the same check on a graph that fails, with the witness
    // partition explaining *why* it fails.
    let bad = generators::chord(7, 5);
    println!(
        "chord(7,5) with f = 2: {}",
        theorem1::check(&bad, 2) // prints the violating F/L/C/R partition
    );

    // 3. Algorithm 1's contraction parameter alpha = min_i a_i and the
    //    (very conservative) Lemma 5 round bound.
    let alpha = algorithm1_alpha(&g, f)?;
    let bound = iteration_bound(&g, f, 40.0, 1e-6)?;
    println!("alpha = {alpha:.4}; Lemma 5 worst-case round bound for range 40 -> 1e-6: {bound}");

    // 4. Run it: seven honest sensors with readings in [10, 50], two
    //    Byzantine nodes screaming +/- 1e6 at everyone.
    let inputs = [10.0, 50.0, 30.0, 20.0, 40.0, 25.0, 35.0, 0.0, 0.0];
    let faults = NodeSet::from_indices(9, [7, 8]);
    let rule = TrimmedMean::new(f);
    let out = Scenario::on(&g)
        .inputs(&inputs)
        .faults(faults)
        .rule(&rule)
        .adversary(Box::new(ExtremesAdversary::new(1e6)))
        .synchronous()
        .and_then(|mut sim| sim.run(&SimConfig::default()))?;

    println!(
        "converged: {} in {} rounds; final range {:.2e}; validity: {}",
        out.converged,
        out.rounds,
        out.final_range,
        if out.validity.is_valid() {
            "ok"
        } else {
            "VIOLATED"
        }
    );
    let agreed = out.trace.last().expect("nonempty trace").states[0];
    println!("agreed value: {agreed:.4} (inside the honest hull [10, 50])");
    assert!((10.0..=50.0).contains(&agreed));

    // 5. The trace gives per-round U[t] and mu[t] for plotting.
    print!("range per round:");
    for r in out.trace.records().iter().take(8) {
        print!(" {:.3}", r.range());
    }
    println!(" ...");
    Ok(())
}
