//! Adversary structures: what changes when you know *where* faults live.
//!
//! ```text
//! cargo run --example structured_faults
//! ```
//!
//! The paper's `f`-total model says "any `f` nodes might be faulty". Real
//! deployments often know more — faults correlate with racks, power rails,
//! or firmware versions. The generalized fault model
//! (`iabc::core::fault_model`) takes an explicit *adversary structure*
//! (the feasible fault sets) and re-derives the paper's condition with
//! coverage semantics.
//!
//! The headline: the §6.3 counterexample chord(7, 5) is **impossible**
//! under "any 2 of 7 may fail", yet **possible** once the fault domain is
//! pinned to a single known rack `{5, 6}` — the Theorem 1 proof's scenario
//! ambiguity ("is it F or my other neighbours lying?") collapses when the
//! structure rules one scenario out. The example shows the catch — the
//! paper's structure-*oblivious* Algorithm 1 cannot cash in that
//! possibility — and then cashes it in with the structure-aware rule
//! (`ModelTrimmedMean`): same graph, same adversary, convergence.

use iabc::core::fault_model::{check_model, AdversaryStructure, FaultModel, ModelTrimmedMean};
use iabc::core::rules::TrimmedMean;
use iabc::graph::{generators, NodeSet};
use iabc::sim::adversary::SplitBrainAdversary;
use iabc::sim::Scenario;
use iabc::sim::SimConfig;

fn verdict(satisfied: bool) -> &'static str {
    if satisfied {
        "possible"
    } else {
        "IMPOSSIBLE"
    }
}

fn main() {
    let g = generators::chord(7, 5);
    println!("chord(7, 5) — the paper's §6.3 network, in-degree 5 everywhere\n");

    // The paper's model, three ways.
    let total = FaultModel::Total(2);
    let uniform = FaultModel::Structure(AdversaryStructure::uniform(7, 2));
    println!(
        "  any 2 nodes faulty (f-total)         : {}",
        verdict(check_model(&g, &total).is_satisfied())
    );
    println!(
        "  same, as an explicit structure       : {}",
        verdict(check_model(&g, &uniform).is_satisfied())
    );

    // Structures with located faults.
    let rack =
        AdversaryStructure::new(7, vec![NodeSet::from_indices(7, [5, 6])]).expect("universe 7");
    println!(
        "  one known rack {{5, 6}}                : {}",
        verdict(check_model(&g, &FaultModel::Structure(rack)).is_satisfied())
    );
    let two_racks = AdversaryStructure::new(
        7,
        vec![
            NodeSet::from_indices(7, [5, 6]),
            NodeSet::from_indices(7, [0, 1]),
        ],
    )
    .expect("universe 7");
    let two_racks_model = FaultModel::Structure(two_racks);
    println!(
        "  two possible racks {{5,6}} / {{0,1}}     : {}",
        verdict(check_model(&g, &two_racks_model).is_satisfied())
    );

    // Per-node trim budgets under the structure.
    println!("\nper-node trim budgets under the two-rack structure (max faulty in-neighbours):");
    for v in g.nodes() {
        print!(
            "  node {}: {}",
            v.index(),
            two_racks_model.max_faulty_in_neighbors(&g, v)
        );
    }
    println!();

    // The gap: the oblivious Algorithm 1 is still freezable inside the
    // rack structure, because it does not use the structure. The paper's
    // literal §6.3 witness has F = {5, 6} — exactly the rack — so the
    // split-brain adversary built from it is feasible under the structure.
    println!("\nthe catch — structure-oblivious Algorithm 1 vs the rack adversary:");
    let w = iabc::core::Witness {
        fault_set: NodeSet::from_indices(7, [5, 6]),
        left: NodeSet::from_indices(7, [0, 2]),
        center: NodeSet::with_universe(7),
        right: NodeSet::from_indices(7, [1, 3, 4]),
    };
    assert!(w.verify(&g, 2, iabc::core::Threshold::synchronous(2)));
    let mut inputs = vec![0.5; 7];
    for v in w.left.iter() {
        inputs[v.index()] = 0.0;
    }
    for v in w.right.iter() {
        inputs[v.index()] = 1.0;
    }
    let rule = TrimmedMean::new(2);
    let adversary = SplitBrainAdversary::from_witness(&w, 0.0, 1.0, 0.5);
    let mut sim = Scenario::on(&g)
        .inputs(&inputs)
        .faults(w.fault_set.clone())
        .rule(&rule)
        .adversary(Box::new(adversary))
        .synchronous()
        .expect("valid simulation");
    for _ in 0..100 {
        sim.step().expect("step");
    }
    println!(
        "  after 100 rounds the honest range is still {:.2} — frozen.",
        sim.honest_range()
    );

    // The payoff: the structure-aware rule, same adversary, converges.
    println!("\nthe payoff — structure-aware ModelTrimmedMean vs the same adversary:");
    let rack =
        AdversaryStructure::new(7, vec![NodeSet::from_indices(7, [5, 6])]).expect("universe 7");
    let aware = ModelTrimmedMean::new(FaultModel::Structure(rack));
    let adversary = SplitBrainAdversary::from_witness(&w, 0.0, 1.0, 0.5);
    let mut sim = Scenario::on(&g)
        .inputs(&inputs)
        .faults(w.fault_set.clone())
        .adversary(Box::new(adversary))
        .model_aware(&aware)
        .expect("valid simulation");
    let out = sim.run(&SimConfig::default()).expect("run succeeds");
    println!(
        "  converged = {} in {} rounds, final range {:.2e}, valid = {}",
        out.converged,
        out.rounds,
        out.final_range,
        out.validity.is_valid()
    );
    assert!(out.converged && out.validity.is_valid());
    println!(
        "  Trimming the maximal COVERABLE prefix (senders that could all be faulty\n   \
         in some feasible world) instead of a blanket f from each end keeps the\n   \
         honest cross-partition edges alive — fault-location knowledge, cashed in."
    );
}
