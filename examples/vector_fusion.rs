//! 2-D sensor fusion with Byzantine sensors — and the box/hull boundary.
//!
//! ```text
//! cargo run --example vector_fusion
//! ```
//!
//! Seven stations estimate a beacon's position; two are compromised. Each
//! round the stations exchange estimates and apply Algorithm 1
//! **coordinate-wise** (`iabc::sim::vector`). Two things happen:
//!
//! 1. Under an extremes attack on each axis, the honest estimates converge
//!    inside the axis-aligned bounding box of the honest inputs — the
//!    scalar Theorem 2/3 guarantees, inherited per coordinate.
//! 2. Against the corner-pull attack on diagonal inputs, the stations
//!    still agree and still stay inside the box — but the agreed point is
//!    visibly **off the convex hull** of the honest inputs. Coordinate-wise
//!    lifting cannot promise more; closing this gap is exactly the
//!    follow-up vector-consensus problem (Vaidya–Garg, PODC 2013).

use iabc::core::rules::TrimmedMean;
use iabc::graph::{generators, NodeId, NodeSet};
use iabc::sim::adversary::ExtremesAdversary;
use iabc::sim::vector::{CoordinateWise, CornerPullAdversary, VectorSimConfig};
use iabc::sim::Scenario;

fn main() {
    let g = generators::complete(7);
    let faults = NodeSet::from_indices(7, [5, 6]);
    let rule = TrimmedMean::new(2);

    // Scene 1: honest positions scattered around (2, 12).
    let inputs: Vec<Vec<f64>> = vec![
        vec![0.0, 10.0],
        vec![1.0, 11.0],
        vec![2.0, 12.0],
        vec![3.0, 13.0],
        vec![4.0, 14.0],
        vec![0.0, 0.0], // compromised — initial values irrelevant
        vec![0.0, 0.0],
    ];
    println!("scene 1 — extremes attack on both axes (honest box: [0,4] x [10,14])");
    let adversary = CoordinateWise::new(vec![
        Box::new(ExtremesAdversary::new(1e6)),
        Box::new(ExtremesAdversary::new(1e6)),
    ]);
    let mut sim = Scenario::on(&g)
        .inputs(&inputs.concat())
        .faults(faults.clone())
        .rule(&rule)
        .vector_adversary(Box::new(adversary))
        .vector(2)
        .expect("valid simulation");
    let out = sim.run(&VectorSimConfig::default()).expect("run");
    let p = sim.state_of(NodeId::new(0));
    println!(
        "  converged = {} in {} rounds, box validity = {}",
        out.converged, out.rounds, out.box_validity
    );
    println!(
        "  fused position: ({:.4}, {:.4}) — inside the box\n",
        p[0], p[1]
    );
    assert!(out.converged && out.box_validity);
    assert!((0.0..=4.0).contains(&p[0]) && (10.0..=14.0).contains(&p[1]));

    // Scene 2: honest positions ON the diagonal y = x; the convex hull of
    // the honest inputs is the diagonal segment itself.
    println!("scene 2 — corner-pull attack, honest inputs on the diagonal y = x");
    let diagonal: Vec<Vec<f64>> = (0..7)
        .map(|i| {
            let x = if i >= 5 { 2.0 } else { i as f64 };
            vec![x, x]
        })
        .collect();
    let mut sim = Scenario::on(&g)
        .inputs(&diagonal.concat())
        .faults(faults)
        .rule(&rule)
        .vector_adversary(Box::new(CornerPullAdversary::new()))
        .vector(2)
        .expect("valid simulation");
    let out = sim.run(&VectorSimConfig::default()).expect("run");
    let p = sim.state_of(NodeId::new(0));
    println!(
        "  converged = {} in {} rounds, box validity = {}",
        out.converged, out.rounds, out.box_validity
    );
    println!("  fused position: ({:.4}, {:.4})", p[0], p[1]);
    println!(
        "  distance off the hull diagonal: {:.4}  <-- box-valid, hull-INVALID",
        (p[0] - p[1]).abs()
    );
    assert!(out.converged && out.box_validity);
    assert!(
        (p[0] - p[1]).abs() > 0.5,
        "the corner-pull attack should steer agreement off the diagonal"
    );
    println!(
        "\nThe agreed point is outside the convex hull of the honest inputs even though\n\
         every coordinate obeyed its scalar validity bound. That is the precise boundary\n\
         of coordinate-wise lifting — scalar IABC per axis — documented in iabc::sim::vector."
    );
}
