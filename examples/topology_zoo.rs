//! Topology zoo: which networks tolerate Byzantine faults iteratively?
//!
//! ```text
//! cargo run --example topology_zoo
//! ```
//!
//! Walks a panel of classic topologies and, for each, reports the structural
//! numbers a designer would reach for first (connectivity, degrees) next to
//! the quantity that actually decides the question — the paper's Theorem 1
//! condition. The punchline reproduces §6.2: *connectivity does not
//! characterize iterative consensus* (the hypercube has connectivity `d` and
//! still fails for every `f ≥ 1`), while §6.1's core network and grown
//! graphs pass by construction.

use iabc::core::construction::{grow_satisfying, Attachment};
use iabc::core::{robustness, theorem1};
use iabc::graph::{generators, metrics, Digraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2012);
    let panel: Vec<(&str, Digraph, usize)> = vec![
        ("complete K7", generators::complete(7), 2),
        ("core network (7, f=2)", generators::core_network(7, 2), 2),
        ("chord (5, succ=3)", generators::chord(5, 3), 1),
        ("chord (7, succ=5)", generators::chord(7, 5), 2),
        ("hypercube d=3", generators::hypercube(3), 1),
        ("hypercube d=4", generators::hypercube(4), 1),
        ("wheel n=8", generators::wheel(8), 1),
        ("torus 3x3", generators::grid(3, 3, true), 1),
        ("de Bruijn B(2,3)", generators::de_bruijn(2, 3), 1),
        ("binary tree depth 2", generators::balanced_tree(2, 2), 1),
        (
            "grown uniform n=9",
            grow_satisfying(9, 1, Attachment::Uniform, &mut rng),
            1,
        ),
        (
            "small world n=12 k=2",
            generators::watts_strogatz(12, 2, 0.2, &mut rng),
            1,
        ),
    ];

    println!(
        "{:<24} {:>2} {:>3} {:>5} {:>6} {:>6}  {:<10} why",
        "topology", "f", "n", "edges", "conn.", "min-in", "theorem 1"
    );
    println!("{}", "-".repeat(88));
    for (name, g, f) in panel {
        let p = metrics::profile(&g);
        let report = theorem1::check(&g, f);
        let why = if report.is_satisfied() {
            if robustness::is_robust(&g, 2 * f + 1, 1) {
                "(2f+1)-robust".to_string()
            } else {
                "condition holds (not (2f+1)-robust)".to_string()
            }
        } else if p.degrees.min_in < 2 * f + 1 {
            format!("some in-degree {} < 2f+1", p.degrees.min_in)
        } else {
            report
                .witness()
                .map(|w| format!("witness L={} R={}", w.left, w.right))
                .unwrap_or_default()
        };
        println!(
            "{:<24} {:>2} {:>3} {:>5} {:>6} {:>6}  {:<10} {}",
            name,
            f,
            p.nodes,
            p.edges,
            p.vertex_connectivity.unwrap_or(0),
            p.degrees.min_in,
            if report.is_satisfied() {
                "SATISFIED"
            } else {
                "violated"
            },
            why
        );
    }

    println!();
    println!("§6.2 takeaway: hypercubes have connectivity d >= 2f+1 yet still fail —");
    println!("raw connectivity (enough for *non-iterative* consensus) does not decide");
    println!("the iterative problem; the Theorem 1 partition condition does.");
}
