//! §7: consensus without a synchronized clock.
//!
//! ```text
//! cargo run --example async_consensus
//! ```
//!
//! Two asynchronous regimes:
//!
//! * **Bounded delay** (partial asynchrony): messages arrive at most `B - 1`
//!   ticks late. Algorithm 1 keeps working on condition-satisfying graphs;
//!   we run worst-case (max-delay) and random schedules.
//! * **Total asynchrony**: faulty senders may stay silent forever, so each
//!   node proceeds with `|N⁻| − f` values and trims `f` from each end.
//!   That costs more redundancy — `n > 5f` and in-degree `≥ 3f + 1` — and
//!   we demonstrate both sides of the threshold.

use iabc::core::async_condition;
use iabc::core::rules::TrimmedMean;
use iabc::graph::{generators, NodeSet};
use iabc::sim::adversary::{ConstantAdversary, ExtremesAdversary};
use iabc::sim::async_engine::{MaxDelayScheduler, RandomScheduler};
use iabc::sim::{RunConfig, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Bounded delay on K6 with f = 1 --------------------------------
    let g = generators::complete(6);
    let inputs = [3.0, 7.0, 5.0, 4.0, 6.0, 0.0];
    let faults = NodeSet::from_indices(6, [5]);
    let rule = TrimmedMean::new(1);
    println!("partially asynchronous (bounded delay), K6, f = 1:");
    for b in [1usize, 3, 6] {
        let mut worst = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults.clone())
            .rule(&rule)
            .adversary(Box::new(ExtremesAdversary::new(1e3)))
            .delay_bounded(Box::new(MaxDelayScheduler), b)?;
        let w = worst.run(&RunConfig::bounded(1e-6, 50_000))?;
        let mut random = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults.clone())
            .rule(&rule)
            .adversary(Box::new(ExtremesAdversary::new(1e3)))
            .delay_bounded(Box::new(RandomScheduler::new(9)), b)?;
        let r = random.run(&RunConfig::bounded(1e-6, 50_000))?;
        println!(
            "  B = {b}: max-delay schedule -> {} ticks; random schedule -> {} ticks",
            w.rounds, r.rounds
        );
        assert!(w.converged && r.converged);
    }

    // --- Total asynchrony: the n > 5f / in-degree 3f + 1 wall ----------
    println!("\ntotally asynchronous (withhold + trim 2f):");
    for (n, f) in [(11usize, 2usize), (7, 2)] {
        let g = generators::complete(n);
        let cond = async_condition::check(&g, f);
        let mut inputs: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let faulty: Vec<usize> = (n - f..n).collect();
        for &i in &faulty {
            inputs[i] = 0.0;
        }
        let faults = NodeSet::from_indices(n, faulty);
        let mut sim = Scenario::on(&g)
            .inputs(&inputs)
            .faults(faults)
            .adversary(Box::new(ConstantAdversary::new(1e9)))
            .withholding(f)?;
        let out = sim.run(&RunConfig::bounded(1e-6, 20_000))?;
        println!(
            "  K{n}, f = {f}: condition {} -> converged = {} (range {:.2e} after {} rounds)",
            if cond.is_satisfied() {
                "satisfied"
            } else {
                "violated "
            },
            out.converged,
            out.final_range,
            out.rounds,
        );
        // n > 5f converges; n = 7 <= 5f+... K7 has in-degree 6 = 3f: frozen.
        assert_eq!(out.converged, n > 5 * f);
    }
    println!("\nthe 2f+1-threshold condition is exactly what separates the two runs");
    Ok(())
}
