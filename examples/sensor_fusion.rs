//! Resilient sensor fusion — the kind of deployment the IABC literature
//! motivates: a field of sensors must agree on a temperature estimate while
//! some are compromised, and the radio topology is *directed* (asymmetric
//! transmit power), so complete-graph algorithms don't apply.
//!
//! ```text
//! cargo run --example sensor_fusion
//! ```
//!
//! The example designs the network with the Theorem 1 checker in the loop:
//! start from a sparse random deployment, verify it cannot tolerate f = 1,
//! patch it into a core network, and then fuse readings under three
//! different attacks.

use iabc::core::rules::TrimmedMean;
use iabc::core::theorem1;
use iabc::graph::{generators, NodeSet};
use iabc::sim::adversary::{Adversary, ConstantAdversary, PullAdversary, RandomAdversary};
use iabc::sim::{Scenario, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10;
    let f = 1;
    let mut rng = StdRng::seed_from_u64(42);

    // A sparse directed deployment: each sensor hears only 3 random others.
    let sparse = generators::random_k_in_regular(n, 3, &mut rng);
    let report = theorem1::check(&sparse, f);
    println!("sparse deployment (in-degree 3): {report}");

    // Design with the checker in the loop: upgrade to the §6.1 core-network
    // pattern (a 2f+1 clique of "anchor" sensors everyone exchanges with).
    let fused = generators::core_network(n, f);
    assert!(theorem1::check(&fused, f).is_satisfied());
    println!(
        "core-network deployment: satisfied (anchors = nodes 0..{})",
        2 * f + 1
    );

    // Ground truth 21.5 °C, honest readings with ±0.5 °C noise; node 9 is
    // compromised.
    let truth = 21.5;
    let mut readings: Vec<f64> = (0..n)
        .map(|_| truth + rng.random_range(-0.5..0.5))
        .collect();
    readings[9] = 0.0; // the compromised sensor's "input" is irrelevant
    let faults = NodeSet::from_indices(n, [9]);
    let rule = TrimmedMean::new(f);

    let attacks: Vec<(&str, Box<dyn Adversary>)> = vec![
        ("stuck-at-zero", Box::new(ConstantAdversary::new(0.0))),
        (
            "random noise",
            Box::new(RandomAdversary::new(-40.0, 85.0, 7)),
        ),
        ("stealthy pull-down", Box::new(PullAdversary::new(false))),
    ];

    for (name, adversary) in attacks {
        let out = Scenario::on(&fused)
            .inputs(&readings)
            .faults(faults.clone())
            .rule(&rule)
            .adversary(adversary)
            .synchronous()?
            .run(&SimConfig::default())?;
        let fusedv = out.trace.last().expect("nonempty trace").states[0];
        println!(
            "attack {name:>18}: fused = {fusedv:.3} °C in {} rounds (|error| = {:.3}, validity {})",
            out.rounds,
            (fusedv - truth).abs(),
            if out.validity.is_valid() {
                "ok"
            } else {
                "VIOLATED"
            }
        );
        assert!(out.converged && out.validity.is_valid());
        // The fused estimate can never leave the honest reading hull.
        let lo = readings[..9].iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = readings[..9]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((lo..=hi).contains(&fusedv));
    }
    println!("all attacks absorbed; estimates stayed within the honest reading hull");
    Ok(())
}
