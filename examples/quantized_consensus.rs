//! Fixed-point consensus: Algorithm 1 when values live on a lattice.
//!
//! ```text
//! cargo run --example quantized_consensus
//! ```
//!
//! Embedded deployments exchange 16- or 32-bit fixed-point numbers, not
//! exact reals. This example runs the quantized Algorithm 1
//! (`iabc::core::quantized`) on K7 with two Byzantine nodes across three
//! lattice resolutions and shows the two halves of the story:
//!
//! * validity is **exact** on the lattice (states never leave the honest
//!   input hull), and
//! * convergence stops at the **quantization floor**: the honest range
//!   lands at or below one quantum instead of contracting to zero.

use iabc::core::quantized::{quantize_inputs, QuantizedTrimmedMean, Rounding};
use iabc::graph::{generators, NodeSet};
use iabc::sim::adversary::ExtremesAdversary;
use iabc::sim::Scenario;
use iabc::sim::SimConfig;

fn main() {
    let g = generators::complete(7);
    let faults = NodeSet::from_indices(7, [5, 6]);
    // Deliberately awkward sensor readings (≈√2, ≈e, ≈π) that no quantum
    // divides exactly.
    #[allow(clippy::approx_constant)]
    let raw_inputs = [0.03, 1.41, 2.72, 3.14, 4.0, 2.0, 2.0];
    println!("K7, f = 2, extremes adversary; raw inputs {raw_inputs:?}\n");
    println!(
        "{:>12} {:>9} {:>8} {:>14} {:>9}",
        "quantum", "rounding", "rounds", "final range", "valid"
    );

    for &quantum in &[0.25, 1.0 / 16.0, 1.0 / 256.0] {
        for rounding in [Rounding::Nearest, Rounding::Floor] {
            let rule = QuantizedTrimmedMean::new(2, quantum, rounding).expect("positive quantum");
            let inputs = quantize_inputs(&raw_inputs, quantum, rounding);
            let out = Scenario::on(&g)
                .inputs(&inputs)
                .faults(faults.clone())
                .rule(&rule)
                .adversary(Box::new(ExtremesAdversary::new(1e6)))
                .synchronous()
                .and_then(|mut sim| {
                    sim.run(&SimConfig {
                        epsilon: quantum, // the provable floor
                        max_rounds: 2_000,
                        record_states: false,
                    })
                })
                .expect("run succeeds");
            assert!(out.validity.is_valid(), "lattice validity is exact");
            assert!(
                out.final_range <= quantum + 1e-12,
                "range {} did not reach the floor {quantum}",
                out.final_range
            );
            println!(
                "{:>12} {:>9} {:>8} {:>14.6} {:>9}",
                format!("{quantum}"),
                rounding.to_string(),
                out.rounds,
                out.final_range,
                out.validity.is_valid()
            );
        }
    }

    println!(
        "\nEvery run stops with the honest range at (or below) one quantum — the\n\
         quantization floor — while validity holds exactly on the lattice."
    );
}
