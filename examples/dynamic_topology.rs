//! Consensus over a churning network: freeze, repair, and edge fade.
//!
//! ```text
//! cargo run --example dynamic_topology
//! ```
//!
//! The paper fixes one graph for the whole run; this example exercises the
//! time-varying extension (`iabc::sim::dynamic`) in three acts:
//!
//! 1. **Freeze** — the §6.3 chord(7, 5) network violates Theorem 1 at
//!    `f = 2`; the proof's split-brain adversary pins the two witness
//!    sides at 0 and 1 forever.
//! 2. **Repair** — at round 40 the operator upgrades the overlay to K7
//!    (a `SwitchOnceSchedule`): the identical adversary immediately loses
//!    and the run converges.
//! 3. **Edge fade** — a K8 deployment where every round drops 30% of its
//!    links at random, but never below the in-degree floor `2f`: validity
//!    holds in every round and convergence survives the churn.

use iabc::core::rules::TrimmedMean;
use iabc::core::theorem1;
use iabc::graph::{generators, NodeSet};
use iabc::sim::adversary::{ExtremesAdversary, SplitBrainAdversary};
use iabc::sim::dynamic::{sample_edge_drops, SwitchOnceSchedule, TopologySchedule};
use iabc::sim::Scenario;
use iabc::sim::SimConfig;

fn main() {
    // Act 1 + 2: freeze on the violating graph, then repair to K7.
    let bad = generators::chord(7, 5);
    let witness = theorem1::find_violation(&bad, 2).expect("chord(7,5) violates Theorem 1 at f=2");
    println!("chord(7,5) violates Theorem 1 at f = 2; witness: {witness}");

    let schedule =
        SwitchOnceSchedule::new(bad, generators::complete(7), 40).expect("same node count");
    let mut inputs = vec![0.5; 7];
    for v in witness.left.iter() {
        inputs[v.index()] = 0.0;
    }
    for v in witness.right.iter() {
        inputs[v.index()] = 1.0;
    }
    let rule = TrimmedMean::new(2);
    let adversary = SplitBrainAdversary::from_witness(&witness, 0.0, 1.0, 0.5);
    let mut sim = Scenario::on(schedule.graph_at(1))
        .inputs(&inputs)
        .faults(witness.fault_set.clone())
        .rule(&rule)
        .adversary(Box::new(adversary))
        .dynamic(&schedule)
        .expect("valid simulation");

    for round in 1..=40 {
        sim.step().expect("step");
        if round % 10 == 0 {
            println!(
                "round {round:>3}: honest range = {:.3} (frozen)",
                sim.honest_range()
            );
        }
    }
    assert!(
        sim.honest_range() >= 1.0,
        "must be frozen before the repair"
    );

    println!("round  40: switching topology chord(7,5) -> K7 (the repair)");
    let out = sim.run(&SimConfig::default()).expect("post-repair run");
    println!(
        "repair outcome: converged = {}, rounds total = {}, final range = {:.2e}, valid = {}",
        out.converged,
        out.rounds,
        out.final_range,
        out.validity.is_valid()
    );
    assert!(out.converged && out.validity.is_valid());

    // Act 3: edge fade under the validity floor.
    println!("\nK8 with 30% per-round edge fade (floor: in-degree >= 2f = 4):");
    let base = generators::complete(8);
    let schedule = sample_edge_drops(&base, 0.3, 4, 2024, 64).expect("floor is satisfiable");
    let min_deg = schedule
        .distinct_graphs()
        .iter()
        .map(|g| g.min_in_degree())
        .min()
        .expect("non-empty schedule");
    println!(
        "sampled {} round-graphs; minimum in-degree seen: {min_deg} (base: {})",
        schedule.len(),
        base.min_in_degree()
    );

    let inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 0.0];
    let faults = NodeSet::from_indices(8, [6, 7]);
    let mut sim = Scenario::on(schedule.graph_at(1))
        .inputs(&inputs)
        .faults(faults)
        .rule(&rule)
        .adversary(Box::new(ExtremesAdversary::new(1e5)))
        .dynamic(&schedule)
        .expect("valid simulation");
    let out = sim.run(&SimConfig::default()).expect("faded run");
    println!(
        "edge-fade outcome: converged = {} in {} rounds, valid = {}",
        out.converged,
        out.rounds,
        out.validity.is_valid()
    );
    assert!(out.converged && out.validity.is_valid());
}
