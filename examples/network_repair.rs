//! Witness-driven network repair: turning the checker's counterexamples
//! into a topology-design loop.
//!
//! ```text
//! cargo run --example network_repair
//! ```
//!
//! Start from topologies the paper proves insufficient (the §6.3 chord
//! network at f = 2, the §6.2 hypercube at f = 1), let the checker's
//! witness point at the starved partition, patch exactly that, and repeat
//! until Theorem 1 holds. Then run Algorithm 1 on the repaired network to
//! confirm the fix is real, and show the frozen execution on the original
//! for contrast.

use iabc::core::repair::suggest_edges;
use iabc::core::rules::TrimmedMean;
use iabc::core::theorem1;
use iabc::graph::{generators, Digraph, NodeSet};
use iabc::sim::adversary::{ExtremesAdversary, SplitBrainAdversary};
use iabc::sim::Scenario;
use iabc::sim::SimConfig;

fn repair_and_verify(name: &str, g: &Digraph, f: usize) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "== {name} (n = {}, m = {}, f = {f})",
        g.node_count(),
        g.edge_count()
    );
    let before = theorem1::check(g, f);
    println!("   before: {before}");

    // Show the impossibility is real: freeze the original via the witness.
    if let Some(w) = before.witness() {
        let n = g.node_count();
        let mut inputs = vec![0.5; n];
        for v in w.left.iter() {
            inputs[v.index()] = 0.0;
        }
        for v in w.right.iter() {
            inputs[v.index()] = 1.0;
        }
        let rule = TrimmedMean::new(f);
        let adv = SplitBrainAdversary::from_witness(w, 0.0, 1.0, 0.25);
        let mut sim = Scenario::on(g)
            .inputs(&inputs)
            .faults(w.fault_set.clone())
            .rule(&rule)
            .adversary(Box::new(adv))
            .synchronous()?;
        for _ in 0..100 {
            sim.step()?;
        }
        println!(
            "   original under attack: range still {:.2} after 100 rounds",
            sim.honest_range()
        );
    }

    // Repair.
    let repair = suggest_edges(g, f)?;
    println!(
        "   repair: added {} edge(s): {:?}",
        repair.added.len(),
        repair
            .added
            .iter()
            .map(|(u, v)| (u.index(), v.index()))
            .collect::<Vec<_>>()
    );
    assert!(theorem1::check(&repair.graph, f).is_satisfied());

    // Confirm with an actual adversarial run on the repaired network.
    let n = repair.graph.node_count();
    let inputs: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
    let faults = NodeSet::from_indices(n, (n - f..n).collect::<Vec<_>>());
    let rule = TrimmedMean::new(f);
    let out = Scenario::on(&repair.graph)
        .inputs(&inputs)
        .faults(faults)
        .rule(&rule)
        .adversary(Box::new(ExtremesAdversary::new(1e6)))
        .synchronous()?
        .run(&SimConfig::default())?;
    println!(
        "   repaired under attack: converged = {} in {} rounds (validity {})\n",
        out.converged,
        out.rounds,
        if out.validity.is_valid() {
            "ok"
        } else {
            "violated"
        }
    );
    assert!(out.converged && out.validity.is_valid());
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    repair_and_verify(
        "chord(7, 5), f = 2  [§6.3 counterexample]",
        &generators::chord(7, 5),
        2,
    )?;
    repair_and_verify(
        "hypercube(3), f = 1 [§6.2 / Figure 3]",
        &generators::hypercube(3),
        1,
    )?;
    repair_and_verify(
        "bridged_cliques(4, 1), f = 1",
        &generators::bridged_cliques(4, 1),
        1,
    )?;
    println!("every failing topology was patched into a working one by its own witnesses");
    Ok(())
}
