//! Offline stand-in for `criterion`: a small wall-clock benchmark harness
//! exposing the API subset the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `criterion_group!`, `criterion_main!`).
//!
//! Each `bench_function` runs a short warmup, then `sample_size` timed
//! iterations, and prints min/median/mean per-iteration wall time. No
//! statistics beyond that — enough to compare variants on the same host
//! (e.g. the serial vs parallel sweep bench), not a criterion replacement.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver; hands out [`BenchmarkGroup`]s.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        println!("\ngroup {name}");
        BenchmarkGroup { sample_size: 10 }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(id, 10, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks one function under this group's configuration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: impl Display, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    let mut sorted = b.samples.clone();
    sorted.sort_unstable();
    if sorted.is_empty() {
        println!("  {id}: no samples recorded");
        return;
    }
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "  {id}: min {} / median {} / mean {} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Controls how `iter_batched` amortizes setup (accepted for API
/// compatibility; batching is always per-iteration here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collects timed iterations of the benchmarked routine.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` for `sample_size` iterations after a short warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            std::hint::black_box(out);
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..2 {
            std::hint::black_box(routine(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            std::hint::black_box(out);
        }
    }
}

/// Defines a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(5);
        let mut count = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.finish();
        // 2 warmup + 5 timed iterations.
        assert_eq!(count, 7);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut setups = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 12);
    }
}
