//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment has no network access and no registry cache, so
//! this vendored crate implements exactly the surface the workspace uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), [`SeedableRng`],
//! [`Rng::random_range`] / [`Rng::random_bool`], [`seq::SliceRandom`] and
//! [`seq::IteratorRandom`]. Streams are deterministic per seed, which is
//! all the workspace relies on; no claim of statistical equivalence with
//! upstream `rand` is made.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::random_range` can sample from: half-open and inclusive
/// ranges of the primitive numeric types.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = unit_f64(rng) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Uniform draw from `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let x = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&x));
            let w = rng.random_range(3usize..=3);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
