//! Sequence helpers: in-place shuffling and sampling without replacement.

use crate::{RngCore, SampleRange};

/// Extension trait for slices: Fisher–Yates shuffle.
pub trait SliceRandom {
    /// Shuffles the slice in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_from(rng);
            self.swap(i, j);
        }
    }
}

/// Extension trait for iterators: uniform sampling without replacement.
pub trait IteratorRandom: Iterator + Sized {
    /// Picks up to `amount` distinct elements uniformly at random
    /// (reservoir sampling).
    fn choose_multiple<R: RngCore + ?Sized>(self, rng: &mut R, amount: usize) -> Vec<Self::Item> {
        let mut reservoir: Vec<Self::Item> = Vec::with_capacity(amount);
        for (i, item) in self.enumerate() {
            if reservoir.len() < amount {
                reservoir.push(item);
            } else {
                let j = (0..=i).sample_from(rng);
                if j < amount {
                    reservoir[j] = item;
                }
            }
        }
        reservoir
    }

    /// Picks one element uniformly at random, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(self, rng: &mut R) -> Option<Self::Item> {
        self.choose_multiple(rng, 1).pop()
    }
}

impl<I: Iterator + Sized> IteratorRandom for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let picked = (0..100).choose_multiple(&mut rng, 10);
        assert_eq!(picked.len(), 10);
        let mut unique = picked.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 10);

        // Requesting more than available yields everything.
        let all = (0..3).choose_multiple(&mut rng, 10);
        assert_eq!(all.len(), 3);
    }
}
