//! Offline stand-in for `serde`: re-exports the no-op derive macros so
//! `use serde::{Deserialize, Serialize}` plus `#[derive(...)]` compiles
//! without network access. Real serialization can be restored by swapping
//! this vendored crate for upstream serde once a registry is available.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
