//! Offline no-op stand-ins for serde's derive macros.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` (plus the
//! `#[serde(...)]` helper attribute) as forward-looking annotations; nothing
//! consumes the generated impls yet. These derives therefore accept the
//! attribute and expand to nothing, which keeps the annotated code compiling
//! without the real serde dependency.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts `#[serde(...)]` helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
