//! Offline stand-in for the `crossbeam` crate. The workspace only uses
//! unbounded MPSC channels (`crossbeam::channel::{unbounded, Sender,
//! Receiver}`), which `std::sync::mpsc` covers directly.

#![warn(missing_docs)]

/// A handle for spawning threads inside a [`scope`] (crossbeam-utils
/// style: the spawn closure receives the scope again for nested spawns).
#[derive(Debug, Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives this scope.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a scope whose threads are all joined before `scope`
/// returns (backed by `std::thread::scope`). A panicking child propagates
/// as a panic rather than an `Err`, which the workspace's `.expect(...)`
/// call sites treat identically.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Multi-producer channels (the `crossbeam-channel` subset the workspace
/// uses), backed by `std::sync::mpsc`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, SendError, Sender};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = super::unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }
    }
}
