//! Collection strategies: vectors and sets of strategy-generated elements.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` with size drawn from `size` (bounded
/// retries; the set may come up short when the element space is small).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 10 + 20 {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_in_band() {
        let mut rng = StdRng::seed_from_u64(11);
        let strat = vec(0u8..10, 3..6);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_hits_target_when_space_allows() {
        let mut rng = StdRng::seed_from_u64(12);
        let strat = btree_set(0usize..1000, 5..=5);
        let s = strat.sample(&mut rng);
        assert_eq!(s.len(), 5);
    }
}
