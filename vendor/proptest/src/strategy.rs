//! The [`Strategy`] trait and combinators: how test inputs are generated.

use rand::rngs::StdRng;
use rand::SampleRange;

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for core::ops::Range<T>
where
    T: Clone,
    core::ops::Range<T>: SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.clone().sample_from(rng)
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: Clone,
    core::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        self.clone().sample_from(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_map_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = (0usize..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
