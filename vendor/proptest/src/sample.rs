//! Sampling strategies over explicit value lists.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy choosing uniformly among the given options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].clone()
    }
}
