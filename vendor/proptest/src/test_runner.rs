//! Test-runner configuration and deterministic per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Derives the RNG for one case of one property test: FNV-1a over the
/// test path, mixed with the case index. Deterministic across runs and
/// thread counts.
pub fn case_rng(test_path: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_path.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}
