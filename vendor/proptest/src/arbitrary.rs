//! The [`Arbitrary`] trait and [`any`]: canonical strategies per type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Types with a canonical generation strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
