//! Offline stand-in for `proptest`: a miniature property-testing harness
//! implementing the API subset the workspace's test suite uses.
//!
//! Supported surface: the [`proptest!`] macro (with `#![proptest_config]`,
//! plain and `mut` bindings), range strategies, `prop_map`,
//! [`collection::vec`] / [`collection::btree_set`], [`arbitrary::any`],
//! [`sample::select`], `prop_assert!` / `prop_assert_eq!` /
//! `prop_assert_ne!` / `prop_assume!`, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream: cases are drawn from a deterministic
//! per-test RNG (seeded from the test path and case index), failures are
//! reported via plain `assert!` without shrinking, and `prop_assume!`
//! skips to the next case rather than recording rejections.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Turns `fn name(x in strategy, ...) { body }` items into `#[test]`
/// functions that run `body` over `config.cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each property fn in turn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __proptest_rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __outcome: ::core::result::Result<
                    (),
                    ::std::boxed::Box<dyn ::std::error::Error>,
                > = (|| {
                    $crate::__proptest_case!{ __proptest_rng; $body; $($args)* }
                })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("case {} of {} failed: {e}", __case, stringify!($name));
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Internal: binds each `name in strategy` argument, then runs the body.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident; $body:block; ) => {
        $body
        ::core::result::Result::Ok(())
    };
    ($rng:ident; $body:block; mut $name:ident in $strat:expr, $($rest:tt)*) => {
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_case!{ $rng; $body; $($rest)* }
    };
    ($rng:ident; $body:block; mut $name:ident in $strat:expr) => {
        let mut $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $body
        ::core::result::Result::Ok(())
    };
    ($rng:ident; $body:block; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_case!{ $rng; $body; $($rest)* }
    };
    ($rng:ident; $body:block; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $body
        ::core::result::Result::Ok(())
    };
}

/// Asserts a condition for the current case (plain `assert!` here — no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the rest of the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}
