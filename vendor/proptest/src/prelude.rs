//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate as prop;
pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The harness binds plain and `mut` arguments and honors
        /// assumptions.
        #[test]
        fn harness_smoke(
            a in 0usize..10,
            mut v in prop::collection::vec(any::<bool>(), 2..5),
            pick in prop::sample::select(vec![1i32, 3, 5]),
        ) {
            prop_assume!(a != 9);
            v.push(true);
            prop_assert!(a < 9);
            prop_assert!(v.len() >= 3);
            prop_assert_eq!(pick % 2, 1);
            prop_assert_ne!(pick, 2);
        }
    }
}
